"""CLI for the determinism linter and flow checker.

Usage::

    python -m repro.analysis src/                       # lint a tree
    python -m repro.analysis --format json src/         # JSON to stdout
    python -m repro.analysis --json-report out.json src/  # CI artifact
    python -m repro.analysis --flowcheck src/           # + figure flows
    python -m repro.analysis --select RPR001,RPR002 src/
    python -m repro.analysis --list-rules

Exit status: 0 when clean (no unsuppressed findings, no flow issues),
1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis import flowcheck
from repro.analysis.linter import (
    Linter,
    registered_rules,
    render_text,
    report_dict,
    unsuppressed,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="determinism lint + static flow-graph checks",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout report format (default: text)",
    )
    parser.add_argument(
        "--json-report", metavar="PATH",
        help="also write the full JSON report (lint + flowcheck) to PATH",
    )
    parser.add_argument(
        "--flowcheck", action="store_true",
        help="additionally check the repo's figure flows structurally",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _emit(text: str) -> None:
    sys.stdout.write(text)
    if not text.endswith("\n"):
        sys.stdout.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        lines = [
            f"{cls.code}  {cls.name}: {cls.description}"
            for cls in registered_rules()
        ]
        _emit("\n".join(lines))
        return 0

    if not options.paths:
        parser.error("no paths given (or use --list-rules)")

    select: Optional[List[str]] = None
    if options.select:
        select = [code for code in options.select.split(",") if code.strip()]
    try:
        linter = Linter(select=select)
    except ValueError as exc:
        parser.error(str(exc))

    findings = linter.lint_paths(options.paths)
    report = report_dict(findings, options.paths)

    checked = []
    if options.flowcheck:
        checked = [
            (flow, flowcheck.check_flow(flow, spec))
            for flow, spec in flowcheck.figure_flows()
        ]
        report["flowcheck"] = flowcheck.issues_dict(checked)

    if options.format == "json":
        _emit(json.dumps(report, indent=2, sort_keys=True))
    else:
        _emit(render_text(findings, show_suppressed=options.show_suppressed))
        for flow, issues in checked:
            _emit(f"flowcheck {flow.name}: " + (
                "ok" if not issues else f"{len(issues)} issue(s)"
            ))
            for issue in issues:
                _emit("  " + issue.render())

    if options.json_report:
        with open(options.json_report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    failed = bool(unsuppressed(findings)) or any(
        issues for _, issues in checked
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
