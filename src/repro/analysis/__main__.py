"""CLI for the determinism linter, deep analysis, and flow checker.

Usage::

    python -m repro.analysis src/                       # lint a tree
    python -m repro.analysis --format json src/         # JSON to stdout
    python -m repro.analysis --json-report out.json src/  # CI artifact
    python -m repro.analysis --flowcheck src/           # + figure flows
    python -m repro.analysis --select RPR001,RPR002 src/
    python -m repro.analysis --deep src/                # + RPR1xx rules
    python -m repro.analysis --deep --baseline analysis-baseline.json src/
    python -m repro.analysis --deep --write-baseline analysis-baseline.json src/
    python -m repro.analysis --list-rules

The deep pass builds the whole-program call graph and effect summaries
and runs the interprocedural rules (RPR101-104) alongside the module
rules.  ``--baseline`` checks findings against a committed ratchet file
(fails on *new* findings or *stale* entries); ``--write-baseline``
regenerates it.

Exit status: 0 when clean (no unsuppressed findings — or, with
``--baseline``, no new/stale entries — and no flow issues), 1 otherwise,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis import flowcheck
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.deep import DeepLinter
from repro.analysis.linter import (
    Linter,
    program_rules,
    registered_rules,
    render_text,
    report_dict,
    unsuppressed,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="determinism lint + static flow-graph checks",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout report format (default: text)",
    )
    parser.add_argument(
        "--json-report", metavar="PATH",
        help="also write the full JSON report (lint + flowcheck) to PATH",
    )
    parser.add_argument(
        "--flowcheck", action="store_true",
        help="additionally check the repo's figure flows structurally",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="whole-program pass: call graph, effect summaries, RPR1xx rules",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="ratchet file: fail only on findings not in it (or stale entries)",
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH",
        help="record current unsuppressed findings as the new baseline and exit",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _emit(text: str) -> None:
    sys.stdout.write(text)
    if not text.endswith("\n"):
        sys.stdout.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        deep_codes = {cls.code for cls in program_rules()}
        lines = [
            f"{cls.code}  {cls.name}: {cls.description}"
            + ("  [--deep]" if cls.code in deep_codes else "")
            for cls in registered_rules()
        ]
        _emit("\n".join(lines))
        return 0

    if not options.paths:
        parser.error("no paths given (or use --list-rules)")
    if options.baseline and options.write_baseline:
        parser.error("--baseline and --write-baseline are mutually exclusive")

    select: Optional[List[str]] = None
    if options.select is not None:
        select = [code for code in options.select.split(",")]

    analysis = None
    try:
        if options.deep:
            deep_linter = DeepLinter(select=select)
            findings, analysis = deep_linter.lint_paths(options.paths)
        else:
            linter = Linter(select=select)
            if select is not None and not linter.rules:
                # The selection validated against the registry but only
                # matched deep rules: without --deep it would lint
                # nothing and exit 0 — the silent-pass failure mode.
                parser.error(
                    f"--select {options.select} matches only whole-program "
                    "rules; add --deep to run them"
                )
            findings = linter.lint_paths(options.paths)
    except ValueError as exc:
        parser.error(str(exc))

    report = report_dict(findings, options.paths)
    if analysis is not None:
        report["deep"] = analysis.stats()

    if options.write_baseline:
        entries = write_baseline(findings, options.write_baseline)
        _emit(
            f"wrote {options.write_baseline}: {sum(entries.values())} "
            f"finding(s) across {len(entries)} key(s)"
        )
        return 0

    ratchet = None
    if options.baseline:
        try:
            entries = load_baseline(options.baseline)
        except FileNotFoundError:
            parser.error(
                f"baseline file not found: {options.baseline} "
                "(generate it with --write-baseline)"
            )
        except ValueError as exc:
            parser.error(str(exc))
        ratchet = apply_baseline(findings, entries)
        report["baseline"] = dict(ratchet.to_dict(), path=options.baseline)

    checked = []
    if options.flowcheck:
        checked = [
            (flow, flowcheck.check_flow(flow, spec))
            for flow, spec in flowcheck.figure_flows()
        ]
        report["flowcheck"] = flowcheck.issues_dict(checked)

    if options.format == "json":
        _emit(json.dumps(report, indent=2, sort_keys=True))
    else:
        _emit(render_text(findings, show_suppressed=options.show_suppressed))
        if ratchet is not None:
            _emit(
                f"baseline {options.baseline}: {ratchet.matched} matched, "
                f"{len(ratchet.new)} new, {len(ratchet.stale)} stale"
            )
            for finding in ratchet.new:
                _emit("  new: " + finding.render())
            for key, (baselined, seen) in sorted(ratchet.stale.items()):
                _emit(
                    f"  stale: {key} (baselined {baselined}, seen {seen}) "
                    "— regenerate with --write-baseline"
                )
        for flow, issues in checked:
            _emit(f"flowcheck {flow.name}: " + (
                "ok" if not issues else f"{len(issues)} issue(s)"
            ))
            for issue in issues:
                _emit("  " + issue.render())

    if options.json_report:
        with open(options.json_report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if ratchet is not None:
        failed = not ratchet.ok
    else:
        failed = bool(unsuppressed(findings))
    failed = failed or any(issues for _, issues in checked)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
