"""Findings baseline + ratchet: suppression debt can only shrink.

A fresh interprocedural pass over a grown codebase may surface findings
that predate it.  Failing CI on all of them at once blocks unrelated
work; silently ignoring them lets new debt hide among the old.  The
ratchet threads that needle the way large linters (and mypy's
``--any-exprs-report`` cousins) do:

* ``--write-baseline`` records every current unsuppressed finding in a
  committed JSON file, keyed by *stable identity* — rule code, file
  path, and message, never line numbers, so reformatting does not churn
  the baseline;
* ``--baseline`` re-runs the pass and fails only on **new** findings
  (anything beyond the baselined count for its key) or on **stale**
  entries (a baselined finding that no longer occurs — the fix must be
  accompanied by regenerating the baseline, so the recorded debt always
  matches reality and can only go down).

Suppressed findings (noqa / allowlist) never enter the baseline; they
are already visibly accounted at their site.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.analysis.linter import Finding

BASELINE_VERSION = 1


def finding_key(finding: Finding) -> str:
    """Stable identity: code, normalized path, message — no line/col."""
    path = finding.path.replace("\\", "/")
    return f"{finding.code}::{path}::{finding.message}"


def _flagged_counts(findings: Iterable[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        if finding.suppressed:
            continue
        key = finding_key(finding)
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(
    findings: Iterable[Finding], path: Union[str, Path]
) -> Dict[str, int]:
    """Record current unsuppressed findings; returns the entries."""
    entries = _flagged_counts(findings)
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return entries


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Load a baseline file; raises ValueError on malformed content."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a version-{BASELINE_VERSION} analysis baseline"
        )
    entries = data.get("entries")
    if not isinstance(entries, dict) or not all(
        isinstance(k, str) and isinstance(v, int) for k, v in entries.items()
    ):
        raise ValueError(f"{path}: malformed baseline entries")
    return dict(entries)


@dataclass
class RatchetResult:
    """Outcome of checking findings against a baseline."""

    #: Findings beyond the baselined count for their key — CI failures.
    new: List[Finding] = field(default_factory=list)
    #: key -> (baselined, seen) where seen < baselined — also failures:
    #: the fix landed but the baseline was not regenerated.
    stale: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Findings absorbed by the baseline.
    matched: int = 0

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale

    def to_dict(self) -> Dict[str, object]:
        return {
            "new": [finding.to_dict() for finding in self.new],
            "stale": [
                {"key": key, "baselined": baselined, "seen": seen}
                for key, (baselined, seen) in sorted(self.stale.items())
            ],
            "matched": self.matched,
            "ok": self.ok,
        }


def apply_baseline(
    findings: Iterable[Finding], entries: Dict[str, int]
) -> RatchetResult:
    """Split unsuppressed findings into baselined vs new; detect stale."""
    result = RatchetResult()
    grouped: Dict[str, List[Finding]] = {}
    for finding in findings:
        if finding.suppressed:
            continue
        grouped.setdefault(finding_key(finding), []).append(finding)
    for key in sorted(set(grouped) | set(entries)):
        seen = sorted(
            grouped.get(key, []), key=lambda f: (f.path, f.line, f.col)
        )
        allowed = entries.get(key, 0)
        result.matched += min(len(seen), allowed)
        if len(seen) > allowed:
            result.new.extend(seen[allowed:])
        elif len(seen) < allowed:
            result.stale[key] = (allowed, len(seen))
    result.new.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result


__all__ = [
    "BASELINE_VERSION",
    "RatchetResult",
    "apply_baseline",
    "finding_key",
    "load_baseline",
    "write_baseline",
]
