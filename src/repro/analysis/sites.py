"""Shared site tables: calls that touch entropy, clocks, environment,
or OS handles.

Both the per-module rules (RPR001/RPR002) and the whole-program effect
pass (:mod:`repro.analysis.effects`) classify the same call sites; this
module is the single place those tables live so the two layers cannot
drift.  It deliberately imports nothing from the rest of the analysis
package — it sits below :mod:`repro.analysis.linter` in the layering.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Constructors that are safe *when given arguments* (a seed / bit
#: generator); calling them with no arguments seeds from OS entropy.
SEEDED_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
    "random.Random",
}

#: Never acceptable: OS-entropy sources with no seeding story at all.
ENTROPY_SOURCES = {
    "random.SystemRandom",
    "os.urandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
    "uuid.uuid4",
}

#: Any other call on these modules draws from the process-global stream.
GLOBAL_STREAM_PREFIXES = ("random.", "numpy.random.")

WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
}

#: Argless calls on these resolve "now" from the host clock.
DATETIME_NOW_CALLS = {
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: The one sanctioned wall-clock site: ``wall_time=time.time()`` inside
#: ``Telemetry.emit`` (repro/core/telemetry.py) — the single field the
#: canonical log strips.
SANCTIONED_SITES: Tuple[Tuple[str, str], ...] = (
    ("repro/core/telemetry.py", "time.time"),
)

#: Host-environment reads that make behaviour machine-dependent.
ENV_READ_CALLS = {"os.getenv"}
ENV_OBJECTS = ("os.environ",)

#: Calls whose result is an OS-level handle.  A handle held in a closure
#: cell or module global cannot cross a process boundary (pickling fails
#: or, worse for locks, each child silently gets a fresh one).
HANDLE_CONSTRUCTORS: Dict[str, str] = {
    "open": "file",
    "io.open": "file",
    "gzip.open": "file",
    "bz2.open": "file",
    "lzma.open": "file",
    "tempfile.TemporaryFile": "file",
    "tempfile.NamedTemporaryFile": "file",
    "sqlite3.connect": "sqlite",
    "sqlite3.Connection": "sqlite",
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "lock",
    "threading.Semaphore": "lock",
    "threading.BoundedSemaphore": "lock",
    "threading.Event": "lock",
    "multiprocessing.Lock": "lock",
    "multiprocessing.RLock": "lock",
}

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "insert",
    "remove",
    "pop",
    "popitem",
    "popleft",
    "clear",
    "add",
    "discard",
    "update",
    "setdefault",
    "sort",
    "reverse",
    "write",
    "writelines",
}

__all__ = [
    "DATETIME_NOW_CALLS",
    "ENTROPY_SOURCES",
    "ENV_OBJECTS",
    "ENV_READ_CALLS",
    "GLOBAL_STREAM_PREFIXES",
    "HANDLE_CONSTRUCTORS",
    "MUTATOR_METHODS",
    "SANCTIONED_SITES",
    "SEEDED_CONSTRUCTORS",
    "WALL_CLOCK_CALLS",
]
