"""Interprocedural effect inference over the whole-program call graph.

For every function in a :class:`~repro.analysis.callgraph.Program` this
pass extracts the *local* effects its body performs, then runs a
worklist fixpoint propagating effect sets backwards over call edges, so
``summary(f)`` is the closure of everything ``f`` can reach.  Effect
kinds:

=================  ======================================================
``rng``            a draw from OS entropy or the process-global
                   ``random``/``numpy.random`` stream (seeded, locally
                   held generators are invisible — by design)
``wall_clock``     host-clock read outside the sanctioned telemetry
                   ``wall_time`` site
``config_read``    attribute read off a pipeline config object
                   (``config.x`` / ``cfg.x`` / ``self.config.x``);
                   ``Effect.param`` carries the attribute name
``env_read``       ``os.environ`` / ``os.getenv`` access
``global_mutation``   store into / in-place mutation of a module-level
                   binding
``closure_mutation``  store into / in-place mutation of an enclosing
                   function's local (a closure cell)
``handle_capture``    a closure- or module-level name bound to an OS
                   handle (open file, sqlite connection, lock) read by
                   this function; ``Effect.param`` is the handle kind
``telemetry``      a ``*.emit(...)`` telemetry emission
``fault_state``    fault-injector state touched (``*.faults``, a
                   ``FaultInjector`` method, or a captured injector)
=================  ======================================================

Effects carry their origin site (function, file, line), and the fixpoint
records *one* witness callee per inherited effect so findings can print
a call chain from a binding site down to the offending line.

The module also hosts the ``cache_params`` coverage analyser used by
RPR101: given the declared cache-params expression it computes which
config attributes the declaration folds into the cache key —
``repr(config)`` / ``str(config)`` style folds cover everything,
``dataclasses.replace(config, a=..., b=...)`` covers everything *except*
the overridden fields, ``config.attr`` covers that one attribute, and
calls into local fingerprint helpers are resolved through the program
index so the repo's ``_cache_fingerprint(config)`` idiom analyses
precisely.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Program,
    _walk_scope,
)
from repro.analysis.sites import (
    DATETIME_NOW_CALLS,
    ENTROPY_SOURCES,
    ENV_OBJECTS,
    ENV_READ_CALLS,
    GLOBAL_STREAM_PREFIXES,
    HANDLE_CONSTRUCTORS,
    MUTATOR_METHODS,
    SANCTIONED_SITES,
    SEEDED_CONSTRUCTORS,
    WALL_CLOCK_CALLS,
)

#: Names under which pipeline code conventionally holds its config.
CONFIG_NAMES = ("config", "cfg")

#: Names under which pipeline code conventionally holds a fault injector.
_INJECTOR_NAMES = ("injector", "fault_injector", "faults")

_FAULT_INJECTOR_CLS = "repro.core.faults.FaultInjector"


@dataclass(frozen=True, order=True)
class Effect:
    """One observable effect, anchored at the line that performs it."""

    kind: str
    detail: str
    qualname: str
    path: str
    line: int
    #: Kind-specific payload: the config attribute for ``config_read``,
    #: the handle kind for ``handle_capture``.
    param: str = ""


def _is_sanctioned_clock(module: ModuleInfo, name: str) -> bool:
    path = str(module.path).replace("\\", "/")
    return any(
        path.endswith(suffix) and name == call
        for suffix, call in SANCTIONED_SITES
    )


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _fn_body(info: FunctionInfo) -> List[ast.stmt]:
    body = info.node.body
    if isinstance(body, list):
        return body
    return [ast.Expr(body)]


class _LocalExtractor:
    """Extract one function's own effects (no propagation)."""

    def __init__(self, program: Program, info: FunctionInfo):
        self.program = program
        self.info = info
        self.module = info.module
        self.effects: Set[Effect] = set()
        #: Local name -> handle kind, for capture analysis downstream.
        self.handle_bindings: Dict[str, str] = {}

    # -- scope classification ----------------------------------------------
    def _classify(self, name: str) -> Optional[str]:
        """``"global"`` / ``"closure"`` / None (local or unknown)."""
        info = self.info
        if name in info.declared_global:
            return "global"
        if name in info.declared_nonlocal:
            return "closure"
        if name in info.local_names:
            return None
        if name in info.enclosing_names:
            return "closure"
        if name in self.module.module_globals:
            return "global"
        return None

    def _emit(self, kind: str, detail: str, node: ast.AST, param: str = "") -> None:
        self.effects.add(
            Effect(
                kind=kind,
                detail=detail,
                qualname=self.info.qualname,
                path=str(self.module.path),
                line=getattr(node, "lineno", self.info.lineno),
                param=param,
            )
        )

    # -- the walk ----------------------------------------------------------
    def run(self) -> None:
        if self.info.class_qualname == _FAULT_INJECTOR_CLS:
            # Injector methods *are* the fault state: anything that can
            # reach them transitively touches it.
            self._emit("fault_state", "FaultInjector method", self.info.node)
        for node in _walk_scope(_fn_body(self.info)):
            if isinstance(node, ast.Call):
                self._scan_call(node)
            elif isinstance(node, ast.Attribute):
                self._scan_attribute(node)
            elif isinstance(node, ast.Name):
                self._scan_name(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._scan_store(node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._scan_store_target(target, node, op="del")
            elif isinstance(node, ast.withitem):
                self._scan_withitem(node)

    def _resolve(self, func: ast.AST) -> Optional[str]:
        dotted = self.module.imports.resolve(func)
        if dotted is not None:
            return dotted
        if isinstance(func, ast.Name):
            return func.id
        return None

    def _scan_call(self, node: ast.Call) -> None:
        name = self._resolve(node.func)
        if name is not None:
            self._scan_named_call(node, name)
        # Mutating method call on a non-local receiver.
        if isinstance(node.func, ast.Attribute) and node.func.attr in MUTATOR_METHODS:
            root = _root_name(node.func.value)
            if root is not None and root not in ("self", "cls"):
                scope = self._classify(root)
                if scope is not None:
                    self._emit(
                        f"{scope}_mutation",
                        f"{root}.{node.func.attr}(...)",
                        node,
                        param=root,
                    )
        # Telemetry emission.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "emit":
            self._emit("telemetry", "telemetry emit", node)
        # Fault-injector touch via a conventionally named receiver.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "fire":
            root = _root_name(node.func.value)
            if root in _INJECTOR_NAMES:
                self._emit("fault_state", f"{root}.fire(...)", node, param=root or "")
        # Handle construction bound to a local (for capture analysis).
        if name in HANDLE_CONSTRUCTORS:
            self._bind_handles_from_call(node, HANDLE_CONSTRUCTORS[name])

    def _scan_named_call(self, node: ast.Call, name: str) -> None:
        if name in ENTROPY_SOURCES:
            self._emit("rng", f"{name}() draws OS entropy", node)
        elif name in SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                self._emit("rng", f"{name}() constructed without a seed", node)
        elif name.startswith(GLOBAL_STREAM_PREFIXES):
            self._emit("rng", f"{name}() draws the process-global stream", node)
        elif name in WALL_CLOCK_CALLS:
            if not _is_sanctioned_clock(self.module, name):
                self._emit("wall_clock", f"{name}() reads the host clock", node)
        elif name in DATETIME_NOW_CALLS and not node.args and not node.keywords:
            self._emit("wall_clock", f"{name}() reads the host clock", node)
        elif name in ENV_READ_CALLS or name.startswith(ENV_OBJECTS):
            self._emit("env_read", f"{name}(...)", node)

    def _scan_attribute(self, node: ast.Attribute) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        value = node.value
        # config.attr / cfg.attr
        if isinstance(value, ast.Name) and value.id in CONFIG_NAMES:
            self._emit(
                "config_read",
                f"{value.id}.{node.attr}",
                node,
                param=node.attr,
            )
            return
        # self.config.attr / obj.cfg.attr
        if (
            isinstance(value, ast.Attribute)
            and value.attr in CONFIG_NAMES
        ):
            self._emit(
                "config_read",
                f"{_root_name(value) or '?'}.{value.attr}.{node.attr}",
                node,
                param=node.attr,
            )
            return
        # engine.faults / self.faults
        if node.attr == "faults":
            self._emit("fault_state", f"{_root_name(node) or '?'}.faults", node)
        # os.environ[...] style chains resolve at the Call/Subscript level;
        # a bare ``os.environ`` read still counts.
        dotted = self.module.imports.resolve(node)
        if dotted is not None and dotted.startswith(ENV_OBJECTS):
            self._emit("env_read", dotted, node)

    def _scan_name(self, node: ast.Name) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        if node.id in _INJECTOR_NAMES and self._classify(node.id) is not None:
            self._emit("fault_state", f"captured injector {node.id!r}", node)

    # -- stores ------------------------------------------------------------
    def _scan_store(self, node: ast.stmt) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            self._scan_store_target(target, node)
        # Track local handle bindings: ``f = open(...)``.
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            name = self._resolve(node.value.func)
            if name in HANDLE_CONSTRUCTORS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.handle_bindings[target.id] = HANDLE_CONSTRUCTORS[name]

    def _scan_store_target(
        self, target: ast.AST, node: ast.stmt, op: str = "="
    ) -> None:
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                self._scan_store_target(elt, node, op)
            return
        if isinstance(target, ast.Name):
            # Rebinding a plain local is not an effect; rebinding through
            # ``global``/``nonlocal`` is.
            if target.id in self.info.declared_global:
                self._emit("global_mutation", f"{target.id} {op}", node,
                           param=target.id)
            elif target.id in self.info.declared_nonlocal:
                self._emit("closure_mutation", f"{target.id} {op}", node,
                           param=target.id)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target)
            if root is None or root in ("self", "cls"):
                return
            scope = self._classify(root)
            if scope is not None:
                suffix = "[...]" if isinstance(target, ast.Subscript) else (
                    f".{target.attr}"
                )
                self._emit(
                    f"{scope}_mutation",
                    f"{root}{suffix} {op}",
                    node,
                    param=root,
                )

    def _scan_withitem(self, node: ast.withitem) -> None:
        if not isinstance(node.context_expr, ast.Call):
            return
        name = self._resolve(node.context_expr.func)
        if name in HANDLE_CONSTRUCTORS and isinstance(
            node.optional_vars, ast.Name
        ):
            self.handle_bindings[node.optional_vars.id] = HANDLE_CONSTRUCTORS[name]

    def _bind_handles_from_call(self, node: ast.Call, kind: str) -> None:
        # ``with``/``=`` forms are handled at their statements; nothing to
        # bind for a bare call expression.
        del node, kind


def _module_handle_bindings(module: ModuleInfo) -> Dict[str, str]:
    """Module-level names bound to handle constructors."""
    bindings: Dict[str, str] = {}
    for node in _walk_scope(module.source.tree.body):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            dotted = module.imports.resolve(node.value.func)
            if dotted is None and isinstance(node.value.func, ast.Name):
                dotted = node.value.func.id
            if dotted in HANDLE_CONSTRUCTORS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings[target.id] = HANDLE_CONSTRUCTORS[dotted]
    return bindings


class EffectMap:
    """Local and transitive effect sets for every program function."""

    def __init__(self, program: Program):
        self.program = program
        self.local: Dict[str, FrozenSet[Effect]] = {}
        self.summary: Dict[str, FrozenSet[Effect]] = {}
        #: (qualname, inherited effect) -> witness callee it came through.
        self._via: Dict[Tuple[str, Effect], str] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def compute(cls, program: Program) -> "EffectMap":
        em = cls(program)
        handle_locals: Dict[str, Dict[str, str]] = {}
        module_handles: Dict[str, Dict[str, str]] = {
            name: _module_handle_bindings(mod)
            for name, mod in program.modules.items()
        }
        locals_: Dict[str, Set[Effect]] = {}
        for info in program.iter_functions():
            extractor = _LocalExtractor(program, info)
            extractor.run()
            locals_[info.qualname] = extractor.effects
            handle_locals[info.qualname] = extractor.handle_bindings
        # Capture pass: reads of handle-bound names from outer scopes.
        for info in program.iter_functions():
            em._add_handle_captures(
                info, locals_[info.qualname], handle_locals,
                module_handles.get(info.module.name, {}),
            )
        em.local = {q: frozenset(effects) for q, effects in locals_.items()}
        em._propagate()
        return em

    def _add_handle_captures(
        self,
        info: FunctionInfo,
        effects: Set[Effect],
        handle_locals: Dict[str, Dict[str, str]],
        module_handles: Dict[str, str],
    ) -> None:
        # Handle names visible from enclosing function scopes.
        outer: Dict[str, Tuple[str, str]] = {}  # name -> (kind, scope)
        for name, kind in module_handles.items():
            outer[name] = (kind, "module")
        parent = info.parent_qualname
        chain: List[str] = []
        while parent is not None:
            chain.append(parent)
            parent_info = self.program.functions.get(parent)
            parent = parent_info.parent_qualname if parent_info else None
        for ancestor in reversed(chain):
            for name, kind in handle_locals.get(ancestor, {}).items():
                outer[name] = (kind, "closure")
        if not outer:
            return
        own_handles = handle_locals.get(info.qualname, {})
        for node in _walk_scope(_fn_body(info)):
            if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
                continue
            name = node.id
            if name in info.local_names or name in own_handles:
                continue
            if name in outer:
                kind, scope = outer[name]
                effects.add(
                    Effect(
                        kind="handle_capture",
                        detail=f"captures {scope}-level {kind} handle {name!r}",
                        qualname=info.qualname,
                        path=str(info.module.path),
                        line=node.lineno,
                        param=kind,
                    )
                )

    def _propagate(self) -> None:
        summary: Dict[str, Set[Effect]] = {
            q: set(effects) for q, effects in self.local.items()
        }
        qualnames = sorted(summary)
        changed = True
        while changed:
            changed = False
            for q in qualnames:
                mine = summary[q]
                for callee in sorted(self.program.callees(q)):
                    if callee == q:
                        continue
                    theirs = summary.get(callee)
                    if not theirs:
                        continue
                    for effect in theirs:
                        if effect not in mine:
                            mine.add(effect)
                            self._via.setdefault((q, effect), callee)
                            changed = True
        self.summary = {q: frozenset(effects) for q, effects in summary.items()}

    # -- queries -----------------------------------------------------------
    def effects_of(self, qualname: str, kinds: Optional[Sequence[str]] = None
                   ) -> List[Effect]:
        effects = self.summary.get(qualname, frozenset())
        if kinds is not None:
            effects = frozenset(e for e in effects if e.kind in kinds)
        return sorted(effects)

    def config_reads(self, qualname: str) -> Dict[str, Effect]:
        """Config attribute -> one witness read, over the closure."""
        reads: Dict[str, Effect] = {}
        for effect in self.effects_of(qualname, kinds=("config_read",)):
            reads.setdefault(effect.param, effect)
        return reads

    def chain(self, qualname: str, effect: Effect, limit: int = 12) -> List[str]:
        """Call chain from ``qualname`` down to the effect's origin."""
        path = [qualname]
        seen = {qualname}
        current = qualname
        while effect not in self.local.get(current, frozenset()):
            step = self._via.get((current, effect))
            if step is None or step in seen or len(path) >= limit:
                break
            path.append(step)
            seen.add(step)
            current = step
        return path


# -- cache_params coverage -------------------------------------------------
_REPLACE_FNS = {"dataclasses.replace", "replace"}
_FOLD_FNS = {
    "repr",
    "str",
    "format",
    "hash",
    "vars",
    "asdict",
    "astuple",
    "dataclasses.asdict",
    "dataclasses.astuple",
    "json.dumps",
}


@dataclass
class Coverage:
    """Which config attributes a ``cache_params`` declaration folds in.

    ``folds`` holds one entry per whole-config fold, each the set of
    attribute names that fold *excludes* (``replace(config, a=...)``
    excludes ``a``); ``named`` holds individually folded attributes.
    """

    folds: List[FrozenSet[str]] = field(default_factory=list)
    named: Set[str] = field(default_factory=set)

    def covers(self, attr: str) -> bool:
        if attr in self.named:
            return True
        return any(attr not in excluded for excluded in self.folds)

    @property
    def folds_everything(self) -> bool:
        return any(not excluded for excluded in self.folds)

    def excluded_everywhere(self) -> Set[str]:
        """Attributes excluded by *every* fold (i.e. never covered by a
        fold) — the interesting set to report."""
        if not self.folds:
            return set()
        result = set(self.folds[0])
        for excluded in self.folds[1:]:
            result &= set(excluded)
        return result


def analyze_cache_params(
    expr: Optional[ast.expr],
    module: ModuleInfo,
    program: Program,
) -> Coverage:
    """Coverage of a declared ``cache_params`` expression.

    Resolves calls to module-local fingerprint helpers through the
    program index (depth-limited), so the repo's
    ``cache_params=_cache_fingerprint(config)`` idiom analyses down to
    the ``repr(replace(config, workers=1, ...))`` inside the helper.
    """
    coverage = Coverage()
    if expr is not None:
        _cover(expr, module, program, coverage, depth=0, seen=set())
    return coverage


def _cover(
    node: ast.AST,
    module: ModuleInfo,
    program: Program,
    cov: Coverage,
    depth: int,
    seen: Set[str],
) -> None:
    if isinstance(node, ast.Call):
        dotted = module.imports.resolve(node.func)
        bare = node.func.id if isinstance(node.func, ast.Name) else None
        name = dotted or bare
        if name in _REPLACE_FNS and node.args:
            if _is_config_name(node.args[0]):
                cov.folds.append(
                    frozenset(kw.arg for kw in node.keywords if kw.arg)
                )
                for arg in node.args[1:]:
                    _cover(arg, module, program, cov, depth, seen)
                return
        target = None
        if bare is not None and bare in module.functions_by_name:
            target = module.functions_by_name[bare]
        elif dotted is not None and dotted in program.functions:
            target = dotted
        if target is not None and name not in _FOLD_FNS:
            if target not in seen and depth < 4:
                seen.add(target)
                info = program.functions[target]
                for ret in _return_exprs(info):
                    _cover(ret, info.module, program, cov, depth + 1, seen)
            # Arguments are *not* folded by passing them to a helper —
            # only what the helper returns is.  Still descend into
            # non-config args (nested fingerprint dicts etc.).
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if not _is_config_name(arg):
                    _cover(arg, module, program, cov, depth, seen)
            return
        # Builtin fold (repr/str/asdict/...) or an unresolvable call:
        # descend generically — a bare config name inside counts as a
        # whole-config fold.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            _cover(arg, module, program, cov, depth, seen)
        return
    if isinstance(node, ast.Attribute):
        chain_root = node
        attrs: List[str] = []
        while isinstance(chain_root, ast.Attribute):
            attrs.append(chain_root.attr)
            chain_root = chain_root.value
        if isinstance(chain_root, ast.Name) and chain_root.id in CONFIG_NAMES:
            cov.named.add(attrs[-1])  # the first attribute off the config
            return
        _cover(node.value, module, program, cov, depth, seen)
        return
    if isinstance(node, ast.Name):
        if node.id in CONFIG_NAMES:
            cov.folds.append(frozenset())
        return
    for child in ast.iter_child_nodes(node):
        _cover(child, module, program, cov, depth, seen)


def _is_config_name(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in CONFIG_NAMES


def _return_exprs(info: FunctionInfo) -> Iterator[ast.expr]:
    if isinstance(info.node, ast.Lambda):
        yield info.node.body
        return
    for node in _walk_scope(info.node.body):
        if isinstance(node, ast.Return) and node.value is not None:
            yield node.value


__all__ = [
    "CONFIG_NAMES",
    "Coverage",
    "Effect",
    "EffectMap",
    "analyze_cache_params",
]
