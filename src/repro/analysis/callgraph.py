"""Whole-program call graph: the skeleton of interprocedural analysis.

The per-module rules (RPR001–005) see one file at a time, so they cannot
see a config read buried in a helper called by a cached transform, or
mutable state captured into a ``map_shards`` worker — exactly the bug
classes PR 3 and PR 6 fixed by hand.  This module builds the structure
those deep rules (RPR101–104, :mod:`repro.analysis.rules`) reason over:

* a **module index** over a package tree (dotted names recovered from
  ``__init__.py`` chains, so ``src/repro/core/engine.py`` is
  ``repro.core.engine``), with each module's
  :class:`~repro.analysis.linter.ImportMap` extended to resolve
  *relative* imports;
* a **function index** keyed by dotted qualname
  (``repro.core.engine.Engine.map_shards``,
  ``pkg.mod.outer.<locals>.inner`` for closures), recording lexical
  scope facts the effect pass needs — local/enclosing names,
  ``global``/``nonlocal`` declarations, generator-ness;
* **call edges** resolved through import aliases, module-level names,
  ``self``/``cls`` method dispatch (following known base classes),
  locally-constructed instances (``lane = ShippingLane(...)`` makes
  ``lane.ship()`` resolve), ``functools.partial``, and *references* —
  a known function passed as an argument (a stage transform, a shard
  callable, a callback) contributes an edge even though the call happens
  elsewhere, which is what makes effect propagation sound for
  callable-passing code;
* **binding sites**: where callables meet the cache or the shard pool —
  ``flow.stage(name, fn, cache_params=...)`` / ``Stage(...)``
  registrations, ``transforms={...}`` dictionaries handed to the
  single-construction-site flow builders, ``ctx.map_shards(fn, ...)``
  fan-outs (with or without shard-cache keys), and
  ``ShardPool(...).map(fn, ...)``.

Resolution is deliberately *under*-approximate where Python is dynamic
(no tracking through containers, attributes of unknown objects, or
``getattr``): an unresolved call contributes no edge rather than a
spurious one, so deep findings stay actionable.  The one deliberate
over-approximation is the reference edge — passing a function somewhere
counts as potentially calling it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.linter import ImportMap, ModuleSource

#: Canonical names the binding scanner keys on.
STAGE_CTOR = "repro.core.dataflow.Stage"
MAP_SHARDS_FN = "repro.core.shards.map_shards"
SHARD_POOL_CLS = "repro.core.shards.ShardPool"
PARTIAL_FNS = {"functools.partial", "partial"}


# -- indexed entities ------------------------------------------------------
@dataclass
class ModuleInfo:
    """One parsed module and its name-resolution context."""

    name: str
    path: Path
    source: ModuleSource
    is_package: bool
    imports: ImportMap
    #: Names assigned at module body level (mutation targets for effects).
    module_globals: Set[str] = field(default_factory=set)
    #: Module-level function name -> qualname.
    functions_by_name: Dict[str, str] = field(default_factory=dict)
    #: Module-level class name -> qualname.
    classes_by_name: Dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One function/method/lambda, with the scope facts effects need."""

    qualname: str
    module: ModuleInfo
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
    lineno: int
    #: Qualname of the class this is a method of, or None.
    class_qualname: Optional[str] = None
    #: Qualname of the enclosing function for closures, or None.
    parent_qualname: Optional[str] = None
    #: Parameter and locally-bound names (including nested def names).
    local_names: Set[str] = field(default_factory=set)
    #: Names visible from enclosing *function* scopes (closure candidates).
    enclosing_names: Set[str] = field(default_factory=set)
    declared_global: Set[str] = field(default_factory=set)
    declared_nonlocal: Set[str] = field(default_factory=set)
    is_generator: bool = False

    @property
    def is_nested(self) -> bool:
        return self.parent_qualname is not None

    @property
    def display_name(self) -> str:
        return self.qualname


@dataclass
class ClassInfo:
    qualname: str
    module: ModuleInfo
    node: ast.ClassDef
    #: Base-class expressions resolved to dotted names where possible.
    bases: List[str] = field(default_factory=list)
    #: Method name -> qualname.
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass
class CacheBinding:
    """A callable whose result the stage/shard cache may replay.

    ``kind`` is ``"stage"`` for ``flow.stage``/``Stage``/``transforms=``
    registrations and ``"shard"`` for ``map_shards(..., cache_keys=...)``
    fan-outs.  ``cache_expr`` is the declared ``cache_params`` expression
    (None when omitted), anchored in ``module`` at ``node`` for findings
    and noqa.
    """

    kind: str
    label: str
    fn_qualname: str
    module: ModuleInfo
    node: ast.AST
    cache_expr: Optional[ast.expr] = None
    declared: bool = False
    caller_qualname: Optional[str] = None


@dataclass
class ShardBinding:
    """A callable handed to the shard pool (may cross a process boundary)."""

    fn_qualname: str
    module: ModuleInfo
    node: ast.AST
    via: str  # "map_shards" | "ShardPool.map"
    cached: bool = False
    cache_expr: Optional[ast.expr] = None
    caller_qualname: Optional[str] = None


# -- module discovery ------------------------------------------------------
def source_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Files and (recursively, sorted) directories — lint_paths' order."""
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    return files


def module_identity(path: Path) -> Tuple[str, bool]:
    """Dotted module name and package-ness recovered from the filesystem.

    Walks up through directories containing ``__init__.py`` so files under
    an installed-layout tree get their import names; a bare file outside
    any package is just its stem.
    """
    path = path.resolve()
    is_package = path.name == "__init__.py"
    parts: List[str] = [] if is_package else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.append(directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    if not parts:  # a bare __init__.py outside any package
        parts = [path.parent.name]
    return ".".join(reversed(parts)), is_package


# -- the program -----------------------------------------------------------
class Program:
    """The whole-program index: modules, functions, classes, call edges,
    and cache/shard binding sites."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> callee qualnames (calls and references).
        self.edges: Dict[str, Set[str]] = {}
        self.cache_bindings: List[CacheBinding] = []
        self.shard_bindings: List[ShardBinding] = []
        #: Files that failed to parse: path -> error message.
        self.parse_errors: Dict[str, str] = {}
        self._info_by_node: Dict[ast.AST, FunctionInfo] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def build(cls, paths: Sequence[Union[str, Path]]) -> "Program":
        program = cls()
        for path in source_files(paths):
            program._index_module(path)
        for module in program.modules.values():
            _BodyWalker(program, module).walk_module()
        return program

    def _index_module(self, path: Path) -> None:
        try:
            source = ModuleSource.read(path)
        except SyntaxError as exc:
            self.parse_errors[str(path)] = str(exc.msg)
            return
        name, is_package = module_identity(path)
        if name in self.modules:
            # Two files mapping to one dotted name (shadowed trees): keep
            # the first, deterministic by the sorted file walk.
            return
        module = ModuleInfo(
            name=name,
            path=path,
            source=source,
            is_package=is_package,
            imports=ImportMap(source.tree, module_name=name, is_package=is_package),
        )
        self.modules[name] = module
        _Indexer(self, module).index()

    # -- lookups -----------------------------------------------------------
    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def lookup_method(self, class_qualname: str, method: str) -> Optional[str]:
        """Resolve ``method`` on a class, following known base classes."""
        seen: Set[str] = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.bases)
        return None

    def transitive_callees(self, qualname: str) -> Set[str]:
        """Closure of :attr:`edges` from one root (root excluded)."""
        seen: Set[str] = set()
        queue = list(self.callees(qualname))
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.callees(current))
        return seen

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]


# -- pass 1: indexing ------------------------------------------------------
def _local_names(node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]) -> Set[str]:
    """Parameter names plus every name the body binds (nested defs count,
    their bodies do not)."""
    names: Set[str] = set()
    args = node.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    body = node.body if isinstance(node.body, list) else [ast.Expr(node.body)]
    for child in _walk_scope(body):
        if isinstance(child, ast.Name) and isinstance(child.ctx, (ast.Store, ast.Del)):
            names.add(child.id)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(child.name)
        elif isinstance(child, ast.Import):
            for alias in child.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(child, ast.ImportFrom):
            for alias in child.names:
                names.add(alias.asname or alias.name)
        elif isinstance(child, ast.ExceptHandler) and child.name:
            names.add(child.name)
        elif isinstance(child, (ast.Global, ast.Nonlocal)):
            names.update(child.names)
    return names


def _walk_scope(body: Sequence[ast.AST]) -> Iterator[ast.AST]:
    """Walk statements/expressions without descending into nested
    function/class *bodies* (their headers — decorators, defaults,
    bases — still belong to the enclosing scope)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(node.decorator_list)
            stack.extend(node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        if isinstance(node, ast.Lambda):
            stack.extend(node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        if isinstance(node, ast.ClassDef):
            stack.extend(node.decorator_list)
            stack.extend(node.bases)
            stack.extend(k.value for k in node.keywords)
            continue
        stack.extend(ast.iter_child_nodes(node))


def _scope_is_generator(node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> bool:
    for child in _walk_scope(node.body):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
    return False


class _Indexer:
    """Pass 1: assign qualnames and scope facts to every function/class."""

    def __init__(self, program: Program, module: ModuleInfo):
        self.program = program
        self.module = module

    def index(self) -> None:
        tree = self.module.source.tree
        for stmt in tree.body:
            self._index_stmt(stmt, prefix=self.module.name, class_q=None,
                             parent=None, enclosing=set(), module_level=True)
        self._index_lambdas(tree.body, self.module.name, None, set())

    def _index_stmt(
        self,
        stmt: ast.stmt,
        prefix: str,
        class_q: Optional[str],
        parent: Optional[FunctionInfo],
        enclosing: Set[str],
        module_level: bool,
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._index_function(stmt, prefix, class_q, parent, enclosing,
                                 module_level)
            return
        if isinstance(stmt, ast.ClassDef):
            self._index_class(stmt, prefix, parent, enclosing, module_level)
            return
        if module_level:
            for target in _assigned_names(stmt):
                self.module.module_globals.add(target)
        # Compound statements (if TYPE_CHECKING:, try, for, with) may wrap
        # defs at any level; recurse into their blocks.
        for block in _stmt_blocks(stmt):
            for inner in block:
                self._index_stmt(inner, prefix, class_q, parent,
                                 enclosing, module_level)

    def _index_function(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        prefix: str,
        class_q: Optional[str],
        parent: Optional[FunctionInfo],
        enclosing: Set[str],
        module_level: bool,
    ) -> None:
        qualname = f"{prefix}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            module=self.module,
            node=node,
            lineno=node.lineno,
            class_qualname=class_q,
            parent_qualname=parent.qualname if parent else None,
            local_names=_local_names(node),
            enclosing_names=set(enclosing),
            is_generator=_scope_is_generator(node),
        )
        for child in _walk_scope(node.body):
            if isinstance(child, ast.Global):
                info.declared_global.update(child.names)
            elif isinstance(child, ast.Nonlocal):
                info.declared_nonlocal.update(child.names)
        self.program.functions[qualname] = info
        self.program._info_by_node[node] = info
        if module_level and class_q is None:
            self.module.functions_by_name[node.name] = qualname
            self.module.module_globals.add(node.name)
        if class_q is not None:
            self.program.classes[class_q].methods[node.name] = qualname
        # Nested defs and lambdas get their own entries.
        child_enclosing = enclosing | info.local_names
        for stmt in node.body:
            self._index_stmt(stmt, prefix=f"{qualname}.<locals>", class_q=None,
                             parent=info, enclosing=child_enclosing,
                             module_level=False)
        self._index_lambdas(node.body, f"{qualname}.<locals>", info,
                            child_enclosing)

    def _index_class(
        self,
        node: ast.ClassDef,
        prefix: str,
        parent: Optional[FunctionInfo],
        enclosing: Set[str],
        module_level: bool,
    ) -> None:
        qualname = f"{prefix}.{node.name}"
        bases: List[str] = []
        for base in node.bases:
            resolved = self.module.imports.resolve(base)
            if resolved is None and isinstance(base, ast.Name):
                resolved = self.module.classes_by_name.get(base.id)
                if resolved is None:
                    resolved = f"{self.module.name}.{base.id}"
            if resolved:
                bases.append(resolved)
        info = ClassInfo(qualname=qualname, module=self.module,
                         node=node, bases=bases)
        self.program.classes[qualname] = info
        if module_level:
            self.module.classes_by_name[node.name] = qualname
            self.module.module_globals.add(node.name)
        for stmt in node.body:
            self._index_stmt(stmt, prefix=qualname, class_q=qualname,
                             parent=parent, enclosing=enclosing,
                             module_level=False)

    def _index_lambdas(
        self,
        body: Sequence[ast.stmt],
        prefix: str,
        parent: Optional[FunctionInfo],
        enclosing: Set[str],
    ) -> None:
        for child in _walk_scope(body):
            if isinstance(child, ast.Lambda):
                qualname = f"{prefix}.<lambda:{child.lineno}>"
                info = FunctionInfo(
                    qualname=qualname,
                    module=self.module,
                    node=child,
                    lineno=child.lineno,
                    parent_qualname=parent.qualname if parent else None,
                    local_names=_local_names(child),
                    enclosing_names=set(enclosing),
                )
                self.program.functions[qualname] = info
                self.program._info_by_node[child] = info


def _assigned_names(stmt: ast.stmt) -> Iterator[str]:
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                    yield node.id


def _stmt_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
    """Nested statement blocks of a compound statement (if/try/with/for)."""
    blocks: List[List[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            blocks.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append(handler.body)
    return blocks


# -- pass 2: edges and bindings -------------------------------------------
class _Scope:
    """One lexical scope during the body walk."""

    def __init__(self, info: Optional[FunctionInfo], parent: Optional["_Scope"]):
        self.info = info
        self.parent = parent
        #: var -> function qualname (``h = helper`` / ``h = partial(fn)``)
        self.fn_aliases: Dict[str, str] = {}
        #: var -> class qualname (``lane = ShippingLane(...)``)
        self.instances: Dict[str, str] = {}
        #: name -> nested function qualname defined in this scope
        self.nested_fns: Dict[str, str] = {}


class _BodyWalker:
    """Pass 2: resolve calls/references into edges; find binding sites."""

    def __init__(self, program: Program, module: ModuleInfo):
        self.program = program
        self.module = module

    # -- entry points ------------------------------------------------------
    def walk_module(self) -> None:
        scope = _Scope(None, None)
        self._prescan(self.module.source.tree.body, scope)
        self._walk_body(self.module.source.tree.body, scope, caller=None)

    # -- resolution --------------------------------------------------------
    def _resolve_function(self, node: ast.AST, scope: _Scope) -> Optional[str]:
        """Qualname of the function a Name/Attribute refers to, or None."""
        if isinstance(node, ast.Name):
            current: Optional[_Scope] = scope
            while current is not None:
                if node.id in current.nested_fns:
                    return current.nested_fns[node.id]
                if node.id in current.fn_aliases:
                    return current.fn_aliases[node.id]
                # A local binding that is *not* a known alias shadows
                # anything outer.
                if current.info is not None and node.id in current.info.local_names:
                    return None
                current = current.parent
            qualname = self.module.functions_by_name.get(node.id)
            if qualname:
                return qualname
            dotted = self.module.imports.resolve(node)
            if dotted and dotted in self.program.functions:
                return dotted
            return None
        if isinstance(node, ast.Attribute):
            dotted = self.module.imports.resolve(node)
            if dotted:
                if dotted in self.program.functions:
                    return dotted
                # mod.Cls.method
                head, _, tail = dotted.rpartition(".")
                if head in self.program.classes:
                    return self.program.lookup_method(head, tail)
                return None
            # self.method() / cls.method() / instance.method()
            owner = self._resolve_receiver_class(node.value, scope)
            if owner is not None:
                return self.program.lookup_method(owner, node.attr)
            return None
        if isinstance(node, ast.Call):
            # functools.partial(fn, ...) used inline.
            inner = self._partial_target(node, scope)
            if inner is not None:
                return inner
        if isinstance(node, ast.Lambda):
            info = self.program._info_by_node.get(node)
            return info.qualname if info else None
        return None

    def _resolve_class(self, node: ast.AST, scope: _Scope) -> Optional[str]:
        if isinstance(node, ast.Name):
            current: Optional[_Scope] = scope
            while current is not None:
                if current.info is not None and node.id in current.info.local_names:
                    return None
                current = current.parent
            qualname = self.module.classes_by_name.get(node.id)
            if qualname:
                return qualname
            # An imported name resolves to its canonical dotted path even
            # when the defining module is outside the analyzed tree —
            # method lookup on an unindexed class just returns None, and
            # binding detection (ShardPool) needs the name regardless.
            return self.module.imports.resolve(node)
        if isinstance(node, ast.Attribute):
            return self.module.imports.resolve(node)
        return None

    def _resolve_receiver_class(self, node: ast.AST, scope: _Scope) -> Optional[str]:
        """Class of the object a method is called on, where knowable."""
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls"):
                current: Optional[_Scope] = scope
                while current is not None:
                    if current.info is not None and current.info.class_qualname:
                        return current.info.class_qualname
                    current = current.parent
                return None
            current = scope
            while current is not None:
                if node.id in current.instances:
                    return current.instances[node.id]
                if current.info is not None and node.id in current.info.local_names:
                    return None
                current = current.parent
            return None
        if isinstance(node, ast.Call):
            return self._resolve_class(node.func, scope)
        return None

    def _partial_target(self, node: ast.Call, scope: _Scope) -> Optional[str]:
        dotted = self.module.imports.resolve(node.func)
        name = dotted or (node.func.id if isinstance(node.func, ast.Name) else None)
        if name in PARTIAL_FNS and node.args:
            return self._resolve_function(node.args[0], scope)
        return None

    # -- the walk ----------------------------------------------------------
    def _prescan(self, body: Sequence[ast.AST], scope: _Scope) -> None:
        """Record nested defs, function aliases, and instance bindings."""
        for child in _walk_scope(list(body)):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self.program._info_by_node.get(child)
                if info is not None:
                    scope.nested_fns[child.name] = info.qualname
            elif isinstance(child, ast.Assign) and len(child.targets) == 1:
                target = child.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                fn = self._resolve_function(child.value, scope)
                if fn is not None:
                    scope.fn_aliases[target.id] = fn
                    continue
                if isinstance(child.value, ast.Call):
                    cls = self._resolve_class(child.value.func, scope)
                    if cls is not None:
                        scope.instances[target.id] = cls

    def _walk_body(
        self,
        body: Sequence[ast.AST],
        scope: _Scope,
        caller: Optional[FunctionInfo],
    ) -> None:
        for child in _walk_scope(list(body)):
            if isinstance(child, ast.ClassDef):
                # Class bodies execute in the enclosing scope; methods are
                # walked as the nested defs they are.
                self._walk_body(child.body, scope, caller)
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                info = self.program._info_by_node.get(child)
                if info is None:
                    continue
                inner_scope = _Scope(info, scope)
                inner_body = (
                    info.node.body
                    if isinstance(info.node.body, list)
                    else [ast.Expr(info.node.body)]
                )
                self._prescan(inner_body, inner_scope)
                self._walk_body(inner_body, inner_scope, caller=info)
                if isinstance(child, ast.Lambda) and caller is not None:
                    self._add_edge(caller, info.qualname)
                continue
            if isinstance(child, ast.Call):
                self._handle_call(child, scope, caller)
            elif isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                target = self._resolve_function(child, scope)
                if target is not None and caller is not None:
                    self._add_edge(caller, target)
            elif isinstance(child, ast.Attribute) and isinstance(child.ctx, ast.Load):
                dotted = self.module.imports.resolve(child)
                if dotted and dotted in self.program.functions and caller is not None:
                    self._add_edge(caller, dotted)

    def _add_edge(self, caller: FunctionInfo, callee: str) -> None:
        self.edges_for(caller.qualname).add(callee)

    def edges_for(self, qualname: str) -> Set[str]:
        return self.program.edges.setdefault(qualname, set())

    # -- call handling -----------------------------------------------------
    def _handle_call(
        self, node: ast.Call, scope: _Scope, caller: Optional[FunctionInfo]
    ) -> None:
        target = self._resolve_function(node.func, scope)
        if target is not None and caller is not None:
            self._add_edge(caller, target)
        if target is None:
            cls = self._resolve_class(node.func, scope)
            if cls is not None and caller is not None:
                init = self.program.lookup_method(cls, "__init__")
                if init is not None:
                    self._add_edge(caller, init)
        self._scan_bindings(node, scope, caller)

    def _scan_bindings(
        self, node: ast.Call, scope: _Scope, caller: Optional[FunctionInfo]
    ) -> None:
        func = node.func
        caller_q = caller.qualname if caller else None

        # flow.stage(name, fn, ..., cache_params=...) / Stage(name, fn, ...)
        is_stage_method = isinstance(func, ast.Attribute) and func.attr == "stage"
        dotted = self.module.imports.resolve(func)
        is_stage_ctor = dotted == STAGE_CTOR or (
            isinstance(func, ast.Name) and func.id == "Stage"
        )
        if is_stage_method or is_stage_ctor:
            transform = _argument(node, position=1, keyword="fn")
            fn_q = self._resolve_function(transform, scope) if transform else None
            if fn_q is not None:
                cache_expr, declared = _cache_params_of(node)
                self.program.cache_bindings.append(
                    CacheBinding(
                        kind="stage",
                        label=_stage_label(node),
                        fn_qualname=fn_q,
                        module=self.module,
                        node=node,
                        cache_expr=cache_expr,
                        declared=declared,
                        caller_qualname=caller_q,
                    )
                )

        # builder(transforms={...}, cache_params=...): the repo's
        # single-construction-site idiom for the figure flows.
        transforms_kw = _keyword(node, "transforms")
        if transforms_kw is not None and isinstance(transforms_kw, ast.Dict):
            cache_expr, declared = _cache_params_of(node)
            for key, value in zip(transforms_kw.keys, transforms_kw.values):
                fn_q = self._resolve_function(value, scope)
                if fn_q is None:
                    continue
                label = (
                    repr(key.value)
                    if isinstance(key, ast.Constant)
                    else "<dynamic>"
                )
                self.program.cache_bindings.append(
                    CacheBinding(
                        kind="stage",
                        label=label,
                        fn_qualname=fn_q,
                        module=self.module,
                        node=value,
                        cache_expr=cache_expr,
                        declared=declared,
                        caller_qualname=caller_q,
                    )
                )

        # ctx.map_shards(fn, items, cache_keys=..., cache_params=...) and
        # the one-shot repro.core.shards.map_shards(fn, items, ...).
        is_map_shards = (
            isinstance(func, ast.Attribute) and func.attr == "map_shards"
        ) or dotted == MAP_SHARDS_FN or (
            isinstance(func, ast.Name)
            and self.module.imports.resolve(func) == MAP_SHARDS_FN
        )
        if is_map_shards:
            shard_fn = _argument(node, position=0, keyword="fn")
            fn_q = self._resolve_function(shard_fn, scope) if shard_fn else None
            if fn_q is not None:
                cached = _keyword(node, "cache_keys") is not None
                cache_expr, declared = _cache_params_of(node)
                self.program.shard_bindings.append(
                    ShardBinding(
                        fn_qualname=fn_q,
                        module=self.module,
                        node=node,
                        via="map_shards",
                        cached=cached,
                        cache_expr=cache_expr,
                        caller_qualname=caller_q,
                    )
                )
                if cached:
                    self.program.cache_bindings.append(
                        CacheBinding(
                            kind="shard",
                            label=fn_q.rpartition(".")[2],
                            fn_qualname=fn_q,
                            module=self.module,
                            node=node,
                            cache_expr=cache_expr,
                            declared=declared,
                            caller_qualname=caller_q,
                        )
                    )

        # pool.map(fn, items) on a known ShardPool instance (or inline
        # ShardPool(...).map(fn, items)).
        if isinstance(func, ast.Attribute) and func.attr == "map":
            owner = self._resolve_receiver_class(func.value, scope)
            if owner == SHARD_POOL_CLS:
                shard_fn = _argument(node, position=0, keyword="fn")
                fn_q = self._resolve_function(shard_fn, scope) if shard_fn else None
                if fn_q is not None:
                    self.program.shard_bindings.append(
                        ShardBinding(
                            fn_qualname=fn_q,
                            module=self.module,
                            node=node,
                            via="ShardPool.map",
                            caller_qualname=caller_q,
                        )
                    )


def _argument(node: ast.Call, position: int, keyword: str) -> Optional[ast.expr]:
    if len(node.args) > position:
        return node.args[position]
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _keyword(node: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _cache_params_of(node: ast.Call) -> Tuple[Optional[ast.expr], bool]:
    expr = _keyword(node, "cache_params")
    if expr is None:
        return None, False
    if isinstance(expr, ast.Constant) and expr.value is None:
        return None, False
    return expr, True


def _stage_label(node: ast.Call) -> str:
    if node.args and isinstance(node.args[0], ast.Constant):
        return repr(node.args[0].value)
    for kw in node.keywords:
        if kw.arg == "name" and isinstance(kw.value, ast.Constant):
            return repr(kw.value.value)
    return "<dynamic>"


__all__ = [
    "CacheBinding",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "ShardBinding",
    "module_identity",
    "source_files",
]
