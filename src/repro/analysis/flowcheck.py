"""Deep static checks over :class:`~repro.core.dataflow.DataFlow` graphs.

``DataFlow.validate()`` rejects graphs that cannot *execute* (cycles,
dangling edges).  This checker goes further and rejects graphs that
execute fine but describe a physically or logistically wrong pipeline —
the failure mode the paper's case studies kept hitting at design time:

* **FLW001 cycle** — a directed cycle, reported as the actual stage path
  (``a -> b -> a``), not just the residual node set;
* **FLW002 dangling dataset** — a stage whose output dataset nobody
  consumes and that is not a declared terminal product, or a stage
  connected to nothing at all; sources declared incremental via
  ``DataFlow.declare_incremental`` are exempt (their data arrives from
  outside the graph by design);
* **FLW003 volume conservation** — a stage whose declared output volume
  exceeds its declared inputs times its maximum expansion factor
  (processing *melds and reduces*; only generative stages like Monte
  Carlo may expand, and they must say by how much);
* **FLW004 site consistency** — a transport stage (site ``"A->B"``)
  whose upstream stages are not at ``A`` or whose downstream stages are
  not at ``B``: data teleportation;
* **FLW005 unit consistency** — declared volumes that fail to parse as
  :class:`~repro.core.units.DataSize` quantities, or non-positive
  expansion factors.

Volumes are *declarations* (a :class:`FlowSpec`), not measurements: the
point is to catch a figure whose arrows claim "14 TB in, 200 TB of
candidates out" before anyone runs it.  :func:`figure_flows` returns the
repo's two real figure graphs with their paper-quoted specs, and CI
checks both on every push.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.dataflow import DataFlow
from repro.core.errors import UnitError
from repro.core.units import DataSize

#: Issue codes, stable and append-only (mirrors the lint rule registry).
CYCLE = "FLW001"
DANGLING = "FLW002"
VOLUME = "FLW003"
SITE = "FLW004"
UNITS = "FLW005"


@dataclass(frozen=True)
class FlowIssue:
    """One structural problem found in one flow."""

    code: str
    flow: str
    message: str
    stage: str = ""

    def render(self) -> str:
        where = f"{self.flow}/{self.stage}" if self.stage else self.flow
        return f"{where}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "flow": self.flow,
            "stage": self.stage,
            "message": self.message,
        }


@dataclass(frozen=True)
class StageVolume:
    """Declared output volume for one stage.

    ``output`` is a human-readable quantity (``"14 TB"``, ``"250 GB"``)
    parsed with :meth:`repro.core.units.DataSize.parse`, so the spec
    reads like the paper's figures.  ``max_expansion`` bounds how much
    larger the output may be than the sum of the stage's declared
    inputs; the default ``1.0`` says "processing never grows data",
    which holds for every stage in both figures except Monte Carlo
    production (generative: small run conditions in, a simulation sample
    out) — such stages declare an explicit factor.
    """

    output: str
    max_expansion: float = 1.0


@dataclass(frozen=True)
class FlowSpec:
    """Static declarations checked against a flow's structure.

    ``expected_sinks`` names the stages whose outputs are the pipeline's
    terminal data products; any other sink is a dangling dataset.
    ``volumes`` maps stage names to :class:`StageVolume` declarations
    (stages without one are skipped by the volume check).
    """

    expected_sinks: Tuple[str, ...] = ()
    volumes: Mapping[str, StageVolume] = field(default_factory=dict)


def _site_base(site: str) -> str:
    """The site's facility: ``"CTC/PALFA"`` -> ``"CTC"``."""
    return site.split("/", 1)[0].strip()


def _transport_endpoints(site: str) -> Optional[Tuple[str, str]]:
    """``("A", "B")`` for a transport site ``"A->B"``, else ``None``."""
    if "->" not in site:
        return None
    left, _, right = site.partition("->")
    return left.strip(), right.strip()


def _check_cycle(flow: DataFlow) -> List[FlowIssue]:
    cycle = flow.find_cycle()
    if cycle is None:
        return []
    return [
        FlowIssue(
            code=CYCLE,
            flow=flow.name,
            stage=cycle[0],
            message=f"cycle: {' -> '.join(cycle)}",
        )
    ]


def _check_dangling(flow: DataFlow, spec: Optional[FlowSpec]) -> List[FlowIssue]:
    issues: List[FlowIssue] = []
    stages = flow.stages
    incremental = flow.incremental_sources
    for name in stages:
        if name in incremental:
            # Declared incremental sources are fed by deltas from outside
            # the graph (repro.core.deltas); their edge profile is the
            # feed's business, not a dangling dataset.
            continue
        isolated = (
            len(stages) > 1
            and not flow.predecessors(name)
            and not flow.successors(name)
        )
        if isolated:
            issues.append(
                FlowIssue(
                    code=DANGLING,
                    flow=flow.name,
                    stage=name,
                    message="stage is connected to nothing (no edges in or out)",
                )
            )
            continue
        if spec is not None and spec.expected_sinks:
            if not flow.successors(name) and name not in spec.expected_sinks:
                issues.append(
                    FlowIssue(
                        code=DANGLING,
                        flow=flow.name,
                        stage=name,
                        message=(
                            "output dataset is never consumed and the stage "
                            "is not a declared terminal product "
                            f"(expected sinks: {list(spec.expected_sinks)})"
                        ),
                    )
                )
    return issues


def _parse_volumes(
    flow: DataFlow, spec: FlowSpec
) -> Tuple[Dict[str, DataSize], List[FlowIssue]]:
    sizes: Dict[str, DataSize] = {}
    issues: List[FlowIssue] = []
    for name in sorted(spec.volumes):
        volume = spec.volumes[name]
        if name not in flow.stages:
            issues.append(
                FlowIssue(
                    code=VOLUME,
                    flow=flow.name,
                    stage=name,
                    message="volume declared for a stage the flow does not have",
                )
            )
            continue
        try:
            sizes[name] = DataSize.parse(volume.output)
        except UnitError as exc:
            issues.append(
                FlowIssue(
                    code=UNITS,
                    flow=flow.name,
                    stage=name,
                    message=f"declared output {volume.output!r} is not a data size: {exc}",
                )
            )
        if not volume.max_expansion > 0:
            issues.append(
                FlowIssue(
                    code=UNITS,
                    flow=flow.name,
                    stage=name,
                    message=f"max_expansion must be positive, got {volume.max_expansion!r}",
                )
            )
    return sizes, issues


def _check_volumes(flow: DataFlow, spec: Optional[FlowSpec]) -> List[FlowIssue]:
    if spec is None or not spec.volumes:
        return []
    sizes, issues = _parse_volumes(flow, spec)
    for name in sorted(sizes):
        predecessors = [p for p in flow.predecessors(name) if p in sizes]
        if not predecessors:
            continue  # sources (and stages with undeclared inputs) are unbounded
        inputs = DataSize(sum(sizes[p].bytes for p in predecessors))
        bound = DataSize(inputs.bytes * spec.volumes[name].max_expansion)
        if sizes[name].bytes > bound.bytes:
            issues.append(
                FlowIssue(
                    code=VOLUME,
                    flow=flow.name,
                    stage=name,
                    message=(
                        f"declared output {sizes[name]} exceeds inputs {inputs} "
                        f"x max_expansion {spec.volumes[name].max_expansion:g} "
                        f"= {bound}"
                    ),
                )
            )
    return issues


def _check_sites(flow: DataFlow) -> List[FlowIssue]:
    issues: List[FlowIssue] = []
    stages = flow.stages
    for name, stage in stages.items():
        endpoints = _transport_endpoints(stage.site)
        if endpoints is None:
            continue
        origin, destination = endpoints
        for pred in flow.predecessors(name):
            pred_site = stages[pred].site
            pred_end = _transport_endpoints(pred_site)
            # A transport feeding a transport hands over at its arrival end.
            arrives_at = pred_end[1] if pred_end else _site_base(pred_site)
            if arrives_at != origin:
                issues.append(
                    FlowIssue(
                        code=SITE,
                        flow=flow.name,
                        stage=name,
                        message=(
                            f"transport departs {origin!r} but upstream stage "
                            f"{pred!r} is at {pred_site!r}"
                        ),
                    )
                )
        for succ in flow.successors(name):
            succ_site = stages[succ].site
            succ_end = _transport_endpoints(succ_site)
            departs_from = succ_end[0] if succ_end else _site_base(succ_site)
            if departs_from != destination:
                issues.append(
                    FlowIssue(
                        code=SITE,
                        flow=flow.name,
                        stage=name,
                        message=(
                            f"transport arrives at {destination!r} but downstream "
                            f"stage {succ!r} is at {succ_site!r}"
                        ),
                    )
                )
    return issues


def check_flow(flow: DataFlow, spec: Optional[FlowSpec] = None) -> List[FlowIssue]:
    """All structural issues in ``flow``, deterministic order, never raises."""
    issues = _check_cycle(flow)
    if issues:
        # Downstream checks walk predecessors/successors; on a cyclic
        # graph their verdicts would be half-meaningless noise.
        return issues
    issues.extend(_check_dangling(flow, spec))
    issues.extend(_check_volumes(flow, spec))
    issues.extend(_check_sites(flow))
    return issues


def render_issues(issues: Sequence[FlowIssue]) -> str:
    lines = [issue.render() for issue in issues]
    lines.append(f"{len(issues)} flow issue{'s' if len(issues) != 1 else ''}")
    return "\n".join(lines)


def issues_dict(
    checked: Sequence[Tuple[DataFlow, Sequence[FlowIssue]]]
) -> Dict[str, object]:
    """Machine-readable report (the CI artifact's flowcheck half)."""
    return {
        "flows": [
            {
                "flow": flow.name,
                "stages": len(flow.stages),
                "edges": len(flow.edges),
                "issues": [issue.to_dict() for issue in issues],
            }
            for flow, issues in checked
        ],
        "ok": not any(issues for _, issues in checked),
    }


# -- the repo's real figures ----------------------------------------------
#: Paper-quoted volume declarations for Figure 1: 14 TB of raw spectra
#: move unreduced through shipment and archive; the search reduces them
#: to candidate lists; the meta-analysis culls further.
FIGURE1_SPEC = FlowSpec(
    expected_sinks=("meta-analysis",),
    volumes={
        "acquire": StageVolume("14 TB"),
        "ship": StageVolume("14 TB"),
        "archive": StageVolume("14 TB"),
        "process": StageVolume("200 GB"),
        "consolidate": StageVolume("200 GB"),
        "meta-analysis": StageVolume("1 GB"),
    },
)

#: Figure 2: ~5 TB of raw collision data; reconstruction roughly doubles
#: the stored volume (hits plus tracks), post-reconstruction summarizes,
#: and Monte Carlo is generative — run conditions in, a simulation
#: sample about twice the data out — so it declares an expansion factor.
FIGURE2_SPEC = FlowSpec(
    expected_sinks=("physics-analysis",),
    volumes={
        "acquisition": StageVolume("5 TB"),
        "reconstruction": StageVolume("10 TB", max_expansion=2.0),
        "post-reconstruction": StageVolume("1 TB"),
        "monte-carlo": StageVolume("10 TB", max_expansion=2.0),
        "physics-analysis": StageVolume("1 GB"),
    },
)


def figure_flows() -> List[Tuple[DataFlow, FlowSpec]]:
    """The repo's two figure graphs (structural builds) with their specs."""
    from repro.arecibo.pipeline import figure1_flow
    from repro.cleo.pipeline import figure2_flow

    return [
        (figure1_flow(), FIGURE1_SPEC),
        (figure2_flow(), FIGURE2_SPEC),
    ]


__all__ = [
    "CYCLE",
    "DANGLING",
    "FIGURE1_SPEC",
    "FIGURE2_SPEC",
    "FlowIssue",
    "FlowSpec",
    "SITE",
    "StageVolume",
    "UNITS",
    "VOLUME",
    "check_flow",
    "figure_flows",
    "issues_dict",
    "render_issues",
]
