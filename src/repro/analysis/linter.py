"""Determinism lint framework: prove the repo's discipline at parse time.

PRs 1-4 made "byte-identical telemetry logs across execution strategies"
a hard invariant, but until now it was enforced only by example-based
tests: one unseeded ``default_rng()``, a stray ``time.time()``, or a
set iteration feeding accounting would silently break it for some flow
no test happens to cover.  This module is the framework half of
``repro.analysis``: rules (see :mod:`repro.analysis.rules`) are small
AST visitors registered under stable codes (``RPR001``...), a
:class:`Linter` runs them over files or trees, and findings can be
rendered as text or a machine-readable JSON report.

Suppression is explicit and per-line::

    elapsed = time.perf_counter() - start  # repro: noqa[RPR002]

A suppressed finding is still *collected* (it appears in the JSON report
with its suppression reason) but does not fail the run — the same
philosophy as the telemetry substrate: nothing is silent, everything is
accounted.

Adding a rule: subclass :class:`Rule`, set ``code``/``name``/
``description``, implement :meth:`Rule.check` yielding findings via
:meth:`Rule.finding` (which applies noqa automatically), and decorate
with :func:`register`.  Import the module from
``repro.analysis.rules.__init__`` so the registry sees it.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type, Union

#: Reserved code for files the linter cannot parse at all.
PARSE_ERROR_CODE = "RPR000"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")
_CODE_RE = re.compile(r"^RPR\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    rule: str
    message: str
    path: str
    line: int
    col: int
    #: True when the finding is silenced — by an inline
    #: ``# repro: noqa[CODE]`` or a rule's built-in allowlist.
    suppressed: bool = False
    #: Why it is silenced: ``"noqa"``, ``"allowlist"``, or ``""``.
    suppression: str = ""

    def render(self) -> str:
        note = f"  (suppressed: {self.suppression})" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{note}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "suppressed": self.suppressed,
            "suppression": self.suppression,
        }


class ModuleSource:
    """A parsed source file plus its per-line noqa suppressions.

    A ``# repro: noqa[CODE]`` comment anchors to its *statement*, not just
    its physical line: a finding anywhere on a multi-line registration or
    call is silenced by a noqa on any of the statement's lines (most
    naturally the last, where black puts the closing paren).  Compound
    statements (``for``/``if``/``def``/...) spread only over their header
    lines — a noqa inside a loop body never silences the ``for`` line.
    """

    def __init__(self, path: Union[str, Path], text: str):
        self.path = str(path)
        self.text = text
        self.tree = ast.parse(text, filename=self.path)
        self._noqa: Dict[int, frozenset] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if match:
                codes = frozenset(
                    code.strip().upper()
                    for code in match.group(1).split(",")
                    if code.strip()
                )
                self._noqa[lineno] = codes
        self._spread_noqa_over_statements()

    def _spread_noqa_over_statements(self) -> None:
        """Union each statement's noqa codes across its physical lines."""
        if not self._noqa:
            return
        spans: List[Tuple[int, int]] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            end = getattr(node, "end_lineno", None) or node.lineno
            for field in ("body", "orelse", "finalbody"):
                block = getattr(node, field, None)
                if block:
                    end = min(end, block[0].lineno - 1)
            handlers = getattr(node, "handlers", None)
            if handlers:
                end = min(end, handlers[0].lineno - 1)
            if end > node.lineno:
                spans.append((node.lineno, end))
        for start, end in spans:
            codes = frozenset().union(
                *(self._noqa.get(line, frozenset()) for line in range(start, end + 1))
            )
            if not codes:
                continue
            for line in range(start, end + 1):
                self._noqa[line] = self._noqa.get(line, frozenset()) | codes

    @classmethod
    def read(cls, path: Union[str, Path]) -> "ModuleSource":
        return cls(path, Path(path).read_text(encoding="utf-8"))

    def suppressed_codes(self, line: int) -> frozenset:
        """Codes silenced by a ``# repro: noqa[...]`` anchored to ``line``
        (directly, or on any other line of the same statement)."""
        return self._noqa.get(line, frozenset())


class Rule:
    """Base class for lint rules.

    Subclasses set ``code`` (``RPR###``), ``name`` (short kebab-case
    slug), and ``description``, and implement :meth:`check`.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleSource,
        node: ast.AST,
        message: str,
        suppressed: bool = False,
        suppression: str = "",
    ) -> Finding:
        """Build a finding at ``node``, applying inline noqa suppression."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if not suppressed and self.code in module.suppressed_codes(line):
            suppressed, suppression = True, "noqa"
        return Finding(
            code=self.code,
            rule=self.name,
            message=message,
            path=module.path,
            line=line,
            col=col,
            suppressed=suppressed,
            suppression=suppression,
        )


class ProgramRule(Rule):
    """Base class for whole-program (interprocedural) rules.

    Module rules see one file at a time; program rules see a
    :class:`repro.analysis.callgraph.Program` — every module under the
    analyzed roots, the call graph over them, and the effect summaries
    computed by :mod:`repro.analysis.effects` — and are run only by the
    deep pass (``python -m repro.analysis --deep`` /
    :class:`repro.analysis.deep.DeepLinter`).  They share the registry,
    code space, noqa machinery, and reporters with module rules.

    Subclasses implement :meth:`check_program`; :meth:`Rule.finding`
    works unchanged because program findings still anchor to a concrete
    (module, node) site — a stage registration, a ``map_shards`` call —
    where an inline ``# repro: noqa[CODE]`` can silence them.
    """

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        return iter(())  # program rules contribute nothing per-module

    def check_program(self, program: "object") -> Iterator[Finding]:
        raise NotImplementedError


# -- registry -------------------------------------------------------------
_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry by its code."""
    if not _CODE_RE.match(rule_cls.code or ""):
        raise ValueError(f"rule {rule_cls.__name__} has invalid code {rule_cls.code!r}")
    existing = _REGISTRY.get(rule_cls.code)
    if existing is not None and existing is not rule_cls:
        raise ValueError(
            f"rule code {rule_cls.code} already registered by {existing.__name__}"
        )
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def registered_rules() -> List[Type[Rule]]:
    """All registered rule classes, sorted by code (imports the rule pack)."""
    import repro.analysis.rules  # noqa: F401  - populates the registry

    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def module_rules() -> List[Type[Rule]]:
    """Registered per-module rules (what a plain :class:`Linter` runs)."""
    return [cls for cls in registered_rules() if not issubclass(cls, ProgramRule)]


def program_rules() -> List[Type[Rule]]:
    """Registered whole-program rules (what the deep pass runs)."""
    return [cls for cls in registered_rules() if issubclass(cls, ProgramRule)]


def select_rules(
    classes: Sequence[Type[Rule]], select: Optional[Iterable[str]]
) -> List[Type[Rule]]:
    """Filter ``classes`` down to ``select``ed codes.

    Unknown codes are an error naming the valid ones — a selector that
    silently matches nothing would report "0 findings" and exit 0, the
    worst possible failure mode for a CI gate.  Codes valid for the
    *registry* but absent from ``classes`` (selecting a deep-only code
    for a shallow run, say) are not an error here; callers decide whether
    an empty selection is acceptable.
    """
    if select is None:
        return list(classes)
    wanted = {code.strip().upper() for code in select if code.strip()}
    valid = {cls.code for cls in registered_rules()}
    unknown = wanted - valid
    if unknown:
        raise ValueError(
            f"unknown rule codes selected: {sorted(unknown)} "
            f"(valid codes: {', '.join(sorted(valid))})"
        )
    if not wanted:
        raise ValueError(
            "empty rule selection "
            f"(valid codes: {', '.join(sorted(valid))})"
        )
    return [cls for cls in classes if cls.code in wanted]


# -- import resolution ----------------------------------------------------
class ImportMap:
    """Maps local names to canonical dotted module paths.

    ``import numpy as np`` makes ``np.random.default_rng`` resolve to
    ``numpy.random.default_rng``; ``from random import Random`` makes a
    bare ``Random`` resolve to ``random.Random``.  Names not bound by an
    import resolve to ``None``, so locals shadowing module names (an
    ``rng`` variable, say) are never mistaken for module calls.

    When the importing module's own dotted name is known (the whole-program
    call graph knows it; per-file lint does not), ``module_name`` lets
    relative imports resolve too: ``from .shards import map_shards`` inside
    ``repro.core.engine`` binds ``map_shards`` to
    ``repro.core.shards.map_shards``.
    """

    def __init__(
        self,
        tree: ast.AST,
        module_name: Optional[str] = None,
        is_package: bool = False,
    ):
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self._aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self._aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = node.module
                if node.level:
                    base = self._relative_base(
                        module_name, is_package, node.level, node.module
                    )
                    if base is None:
                        continue  # unknown package context
                elif base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{base}.{alias.name}"

    @staticmethod
    def _relative_base(
        module_name: Optional[str],
        is_package: bool,
        level: int,
        module: Optional[str],
    ) -> Optional[str]:
        """Package that a ``from ...x import y`` resolves against."""
        if not module_name:
            return None
        # Level 1 resolves against the containing package (the module name
        # itself for a package __init__); each further level strips one
        # enclosing package — importlib's _resolve_name, statically.
        parts = module_name.split(".")
        strip = level if not is_package else level - 1
        if strip > len(parts):
            return None
        base_parts = parts[: len(parts) - strip]
        if not base_parts:
            return None
        if module:
            base_parts.append(module)
        return ".".join(base_parts)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an attribute chain, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self._aliases.get(node.id)
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))


# -- the linter -----------------------------------------------------------
class Linter:
    """Runs a rule set over files and directory trees."""

    def __init__(
        self,
        rules: Optional[Sequence[Type[Rule]]] = None,
        select: Optional[Iterable[str]] = None,
    ):
        classes = list(rules) if rules is not None else module_rules()
        classes = select_rules(classes, select)
        self.rules: List[Rule] = [cls() for cls in classes]

    def lint_file(self, path: Union[str, Path]) -> List[Finding]:
        try:
            module = ModuleSource.read(path)
        except SyntaxError as exc:
            return [
                Finding(
                    code=PARSE_ERROR_CODE,
                    rule="parse-error",
                    message=f"cannot parse file: {exc.msg}",
                    path=str(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                )
            ]
        findings = [
            finding for rule in self.rules for finding in rule.check(module)
        ]
        findings.sort(key=lambda f: (f.line, f.col, f.code))
        return findings

    def lint_paths(self, paths: Sequence[Union[str, Path]]) -> List[Finding]:
        """Lint files and (recursively) directories; deterministic order."""
        files: List[Path] = []
        for entry in paths:
            entry = Path(entry)
            if entry.is_dir():
                files.extend(sorted(entry.rglob("*.py")))
            else:
                files.append(entry)
        findings: List[Finding] = []
        for path in files:
            findings.extend(self.lint_file(path))
        return findings


def unsuppressed(findings: Iterable[Finding]) -> List[Finding]:
    return [finding for finding in findings if not finding.suppressed]


def summary_counts(findings: Iterable[Finding]) -> Dict[str, Dict[str, int]]:
    """Per-code violation counts, split flagged vs suppressed."""
    counts: Dict[str, Dict[str, int]] = {}
    for finding in findings:
        bucket = counts.setdefault(finding.code, {"flagged": 0, "suppressed": 0})
        bucket["suppressed" if finding.suppressed else "flagged"] += 1
    return {code: counts[code] for code in sorted(counts)}


# -- reporters ------------------------------------------------------------
def render_text(
    findings: Sequence[Finding], show_suppressed: bool = False
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    shown = [
        finding
        for finding in findings
        if show_suppressed or not finding.suppressed
    ]
    lines = [finding.render() for finding in shown]
    flagged = len(unsuppressed(findings))
    silenced = len(findings) - flagged
    lines.append(
        f"{flagged} finding{'s' if flagged != 1 else ''}"
        f" ({silenced} suppressed)"
    )
    return "\n".join(lines)


def report_dict(
    findings: Sequence[Finding],
    paths: Sequence[Union[str, Path]] = (),
) -> Dict[str, object]:
    """Machine-readable report (the CI artifact's lint half)."""
    return {
        "paths": [str(path) for path in paths],
        "findings": [finding.to_dict() for finding in findings],
        "summary": summary_counts(findings),
        "ok": not unsuppressed(findings),
    }


def render_json(
    findings: Sequence[Finding],
    paths: Sequence[Union[str, Path]] = (),
) -> str:
    return json.dumps(report_dict(findings, paths), indent=2, sort_keys=True)


__all__: Tuple[str, ...] = (
    "Finding",
    "ImportMap",
    "Linter",
    "ModuleSource",
    "PARSE_ERROR_CODE",
    "ProgramRule",
    "Rule",
    "module_rules",
    "program_rules",
    "register",
    "registered_rules",
    "render_json",
    "render_text",
    "report_dict",
    "select_rules",
    "summary_counts",
    "unsuppressed",
)
