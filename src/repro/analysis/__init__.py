"""Static analysis for the determinism contract.

Two halves:

* :mod:`repro.analysis.linter` — an AST lint framework with registered
  rules (``RPR001``...) that prove, at parse time, the disciplines the
  test suite can only spot-check: no unseeded RNGs, no stray wall-clock
  reads, no unregistered telemetry kinds, no hash-ordered accounting,
  no config-dependent stages outside the cache key.
* :mod:`repro.analysis.flowcheck` — deep structural checks over
  :class:`~repro.core.dataflow.DataFlow` graphs (``FLW001``...): named
  cycles, dangling datasets, volume-conservation bounds, transport site
  consistency, and unit-checked volume declarations.

Run both from the command line::

    python -m repro.analysis src/            # lint (exit 1 on findings)
    python -m repro.analysis --flowcheck src/  # lint + figure flow checks
"""

from repro.analysis.flowcheck import (
    FlowIssue,
    FlowSpec,
    StageVolume,
    check_flow,
    figure_flows,
)
from repro.analysis.linter import (
    Finding,
    Linter,
    ModuleSource,
    Rule,
    register,
    registered_rules,
    render_json,
    render_text,
    report_dict,
    summary_counts,
    unsuppressed,
)

__all__ = [
    "Finding",
    "FlowIssue",
    "FlowSpec",
    "Linter",
    "ModuleSource",
    "Rule",
    "StageVolume",
    "check_flow",
    "figure_flows",
    "register",
    "registered_rules",
    "render_json",
    "render_text",
    "report_dict",
    "summary_counts",
    "unsuppressed",
]
