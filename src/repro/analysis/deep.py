"""The deep pass: whole-program lint orchestration.

``python -m repro.analysis --deep`` runs the per-module rules *and* the
whole-program rules (RPR1xx) over the same paths: the module rules via
the ordinary :class:`~repro.analysis.linter.Linter`, the program rules
against one shared :class:`DeepAnalysis` (call graph + effect
summaries), so the expensive fixpoint is computed once however many
rules consume it.  Findings from both halves share the reporters, the
noqa machinery, and — in CI — the baseline ratchet
(:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.callgraph import Program
from repro.analysis.effects import EffectMap
from repro.analysis.linter import (
    Finding,
    Linter,
    module_rules,
    program_rules,
    select_rules,
)


@dataclass
class DeepAnalysis:
    """Everything a program rule reasons over, built once per run."""

    program: Program
    effects: EffectMap

    @classmethod
    def build(cls, paths: Sequence[Union[str, Path]]) -> "DeepAnalysis":
        program = Program.build(paths)
        return cls(program=program, effects=EffectMap.compute(program))

    def stats(self) -> Dict[str, int]:
        return {
            "modules": len(self.program.modules),
            "functions": len(self.program.functions),
            "classes": len(self.program.classes),
            "call_edges": sum(
                len(callees) for callees in self.program.edges.values()
            ),
            "cache_bindings": len(self.program.cache_bindings),
            "shard_bindings": len(self.program.shard_bindings),
        }


class DeepLinter:
    """Runs module rules and program rules as one pass."""

    def __init__(self, select: Optional[Iterable[str]] = None):
        select = list(select) if select is not None else None
        self.module_rule_classes = select_rules(module_rules(), select)
        self.program_rule_classes = select_rules(program_rules(), select)

    def lint_paths(
        self, paths: Sequence[Union[str, Path]]
    ) -> Tuple[List[Finding], DeepAnalysis]:
        # The shallow half also surfaces parse errors (RPR000); the
        # program index skips unparseable files, so this is the one
        # place they get reported.
        findings = Linter(rules=self.module_rule_classes).lint_paths(paths)
        analysis = DeepAnalysis.build(paths)
        for rule_cls in self.program_rule_classes:
            findings.extend(rule_cls().check_program(analysis))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return findings, analysis


__all__ = ["DeepAnalysis", "DeepLinter"]
