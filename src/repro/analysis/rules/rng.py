"""RPR001: every random number must come from an explicitly seeded stream.

The determinism contract (sequential == parallel == warm-cache ==
fault-injected, byte for byte) dies the moment any code path draws from
an unseeded or process-global RNG.  Three shapes are flagged:

* **unseeded construction** — ``np.random.default_rng()`` or
  ``random.Random()`` with no arguments seeds from OS entropy;
* **process-global streams** — module-level calls like
  ``random.random()``, ``random.shuffle(...)``, ``np.random.normal(...)``
  share one hidden state across the whole process, so any concurrency
  (or an unrelated import drawing from it) reorders every stream;
* **entropy sources** — ``random.SystemRandom`` / ``os.urandom`` can
  never be seeded at all.

Seeded construction (``default_rng(cfg.seed)``, ``Random(0)``) and calls
on locally-held generator objects (``rng.normal(...)``) are fine — the
rule only fires on the ``random`` / ``numpy.random`` modules themselves.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Finding, ImportMap, ModuleSource, Rule, register
from repro.analysis.sites import (
    ENTROPY_SOURCES as _ENTROPY_SOURCES,
    SEEDED_CONSTRUCTORS as _SEEDED_CONSTRUCTORS,
)


@register
class UnseededRngRule(Rule):
    code = "RPR001"
    name = "unseeded-rng"
    description = (
        "RNG constructed without a seed, or a draw from the process-global "
        "random / numpy.random stream"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve(node.func)
            if name is None:
                continue
            if name in _ENTROPY_SOURCES:
                yield self.finding(
                    module,
                    node,
                    f"{name} draws OS entropy and can never be seeded; "
                    "derive randomness from the run seed instead",
                )
            elif name in _SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        f"{name}() without a seed draws from OS entropy; "
                        "pass an explicit seed (or thread the caller's rng)",
                    )
            elif name.startswith("random.") or name.startswith("numpy.random."):
                yield self.finding(
                    module,
                    node,
                    f"{name}() uses the process-global RNG stream; construct "
                    "a seeded Generator/Random and draw from it instead",
                )
