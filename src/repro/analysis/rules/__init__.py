"""The shipped rule pack.

Importing this package registers every rule with the framework registry
(:func:`repro.analysis.linter.registered_rules` imports it lazily).
Rule codes are stable and append-only:

========  ==========================  ==============================================
code      name                        fires on
========  ==========================  ==============================================
RPR001    unseeded-rng                unseeded RNG construction / global RNG draws
RPR002    wall-clock                  host-clock reads outside the telemetry site
RPR003    unregistered-telemetry-kind literal emit() kinds missing from EVENT_KINDS
RPR004    unordered-iteration         set iteration feeding order-sensitive code
RPR005    undeclared-cache-params     config-reading stages without cache_params
========  ==========================  ==============================================
"""

from repro.analysis.rules.cacheparams import UndeclaredCacheParamsRule
from repro.analysis.rules.ordering import UnorderedIterationRule
from repro.analysis.rules.rng import UnseededRngRule
from repro.analysis.rules.telemetry_kinds import TelemetryKindRule
from repro.analysis.rules.wallclock import WallClockRule

__all__ = [
    "TelemetryKindRule",
    "UndeclaredCacheParamsRule",
    "UnorderedIterationRule",
    "UnseededRngRule",
    "WallClockRule",
]
