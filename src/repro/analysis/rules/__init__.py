"""The shipped rule pack.

Importing this package registers every rule with the framework registry
(:func:`repro.analysis.linter.registered_rules` imports it lazily).
Rule codes are stable and append-only.  RPR0xx rules are per-module
(one file at a time); RPR1xx rules are whole-program — they reason over
the call graph and effect summaries and only run under
``python -m repro.analysis --deep``:

========  ==========================  ==============================================
code      name                        fires on
========  ==========================  ==============================================
RPR001    unseeded-rng                unseeded RNG construction / global RNG draws
RPR002    wall-clock                  host-clock reads outside the telemetry site
RPR003    unregistered-telemetry-kind literal emit() kinds missing from EVENT_KINDS
RPR004    unordered-iteration         set iteration feeding order-sensitive code
RPR005    undeclared-cache-params     config-reading stages without cache_params
RPR101    deep-cache-key              transitive config reads missing from cache_params
RPR102    shard-safety                shard callables mutating shared state
RPR103    process-boundary            unpicklable/unsafe captures crossing processes
RPR104    deep-determinism            RNG/wall-clock reach into cached transforms
========  ==========================  ==============================================
"""

from repro.analysis.rules.cacheparams import UndeclaredCacheParamsRule
from repro.analysis.rules.ordering import UnorderedIterationRule
from repro.analysis.rules.rng import UnseededRngRule
from repro.analysis.rules.telemetry_kinds import TelemetryKindRule
from repro.analysis.rules.wallclock import WallClockRule
from repro.analysis.rules.deepcache import InterproceduralCacheKeyRule
from repro.analysis.rules.shardsafety import ShardSafetyRule
from repro.analysis.rules.picklesafety import ProcessBoundaryRule
from repro.analysis.rules.deepdeterminism import TransitiveDeterminismRule

__all__ = [
    "InterproceduralCacheKeyRule",
    "ProcessBoundaryRule",
    "ShardSafetyRule",
    "TelemetryKindRule",
    "TransitiveDeterminismRule",
    "UndeclaredCacheParamsRule",
    "UnorderedIterationRule",
    "UnseededRngRule",
    "WallClockRule",
]
