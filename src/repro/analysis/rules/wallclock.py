"""RPR002: wall-clock reads are confined to the telemetry substrate.

Every telemetry event carries exactly one wall-clock field
(``wall_time``, stamped inside :meth:`repro.core.telemetry.Telemetry.emit`
and stripped by ``canonical()``), and all other timestamps in the system
are :class:`~repro.core.telemetry.SimClock` simulated seconds.  Any
other ``time.time()`` / ``time.monotonic()`` / ``time.perf_counter()``
or argless ``datetime.now()`` / ``datetime.today()`` call smuggles the
host's clock into state that must be reproducible run to run.

The sanctioned emit site is allowlisted here by (file, call) rather than
line number so the rule survives edits to ``telemetry.py``.  Code that
*intentionally* measures real elapsed time (operational counters that
never enter a canonical event log) must carry an inline
``# repro: noqa[RPR002]`` so the exception is visible and accounted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Finding, ImportMap, ModuleSource, Rule, register
from repro.analysis.sites import (
    DATETIME_NOW_CALLS as _DATETIME_NOW_CALLS,
    SANCTIONED_SITES,
    WALL_CLOCK_CALLS as _WALL_CLOCK_CALLS,
)


@register
class WallClockRule(Rule):
    code = "RPR002"
    name = "wall-clock"
    description = (
        "wall-clock read outside the sanctioned telemetry emit site; "
        "use the run's SimClock"
    )

    def _sanctioned(self, module: ModuleSource, name: str) -> bool:
        path = module.path.replace("\\", "/")
        return any(
            path.endswith(suffix) and name == call
            for suffix, call in SANCTIONED_SITES
        )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve(node.func)
            if name is None:
                continue
            if name in _WALL_CLOCK_CALLS:
                if self._sanctioned(module, name):
                    yield self.finding(
                        module,
                        node,
                        f"{name}() (sanctioned telemetry wall_time site)",
                        suppressed=True,
                        suppression="allowlist",
                    )
                else:
                    yield self.finding(
                        module,
                        node,
                        f"{name}() reads the host clock; simulated time comes "
                        "from the telemetry SimClock",
                    )
            elif name in _DATETIME_NOW_CALLS and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    f"{name}() reads the host clock; thread an explicit "
                    "timestamp (or SimClock reading) instead",
                )
