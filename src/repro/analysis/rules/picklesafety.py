"""RPR103: unpicklable or unsafe captures crossing the process boundary.

A shard callable dispatched under ``executor="process"`` is pickled
into the worker.  Three shapes survive the thread executor (so tests
pass) and then detonate — or worse, *silently misbehave* — the moment
the config flips to processes:

* **closures and lambdas** — anything defined inside a function does
  not pickle at all;
* **generator functions** — the returned generator cannot cross back;
* **captured OS handles** — an open file, sqlite connection, or lock
  reached through a module-global or closure cell.  Files and
  connections fail to pickle; locks are subtler and nastier: the child
  re-imports the module and gets a *fresh* lock, so the mutual
  exclusion the code relies on quietly stops excluding anything.

The rule checks every ``map_shards`` / ``ShardPool.map`` binding,
reporting transitive handle captures with the function that performs
them.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.linter import Finding, ProgramRule, register
from repro.analysis.rules.deepcache import _short, sorted_shard_bindings


@register
class ProcessBoundaryRule(ProgramRule):
    code = "RPR103"
    name = "process-boundary"
    description = (
        "shard callable (or state it captures) cannot safely cross the "
        "worker process boundary"
    )

    def check_program(self, analysis) -> Iterator[Finding]:
        program, effects = analysis.program, analysis.effects
        for binding in sorted_shard_bindings(program):
            info = program.functions.get(binding.fn_qualname)
            problems = []
            if info is not None and info.is_nested:
                problems.append(
                    "is defined inside a function — closures/lambdas do not "
                    "pickle under the process executor"
                )
            if info is not None and info.is_generator:
                problems.append(
                    "is a generator function — its lazy results cannot be "
                    "returned across the process boundary"
                )
            for effect in effects.effects_of(
                binding.fn_qualname, kinds=("handle_capture",)
            ):
                problems.append(
                    f"{effect.detail} in {_short(effect.qualname)}"
                    + (
                        " — each worker silently gets a fresh lock"
                        if effect.param == "lock"
                        else " — handles do not pickle"
                    )
                )
            if not problems:
                continue
            message = (
                f"shard callable {_short(binding.fn_qualname)} "
                f"({binding.via}) " + "; ".join(problems)
            )
            yield self.finding(binding.module.source, binding.node, message)
