"""RPR101: interprocedural cache-key completeness.

The stage cache replays a transform's output whenever its key matches,
so the key must fold in *every* config attribute that can change the
output — including reads buried in helpers the transform calls.  RPR005
already flags transforms whose own body reads config without declaring
``cache_params``; this rule closes the loophole PR 3 and PR 6 hit in
practice: the read moves into a helper (or a helper's helper) and the
per-module rule goes blind while the stale-key hazard remains.

For every cache binding (stage registration, ``transforms={...}`` dict,
or ``map_shards(..., cache_keys=...)`` fan-out) the rule computes the
transform's *transitive* config read set from the effect summaries and
checks each attribute against the declared ``cache_params`` coverage —
``repr(replace(config, workers=1))`` covers everything except
``workers``, ``config.seed`` covers ``seed``, and fingerprint helpers
are resolved through the call graph.  Anything read but not folded is a
finding, reported with the call chain that reaches the read.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.linter import Finding, ProgramRule, register
from repro.analysis.effects import analyze_cache_params


def _short(qualname: str) -> str:
    return qualname[6:] if qualname.startswith("repro.") else qualname


def sorted_cache_bindings(program) -> List[object]:
    return sorted(
        program.cache_bindings,
        key=lambda b: (str(b.module.path), b.node.lineno, b.label, b.fn_qualname),
    )


def sorted_shard_bindings(program) -> List[object]:
    return sorted(
        program.shard_bindings,
        key=lambda b: (str(b.module.path), b.node.lineno, b.fn_qualname),
    )


@register
class InterproceduralCacheKeyRule(ProgramRule):
    code = "RPR101"
    name = "deep-cache-key"
    description = (
        "cached transform transitively reads config attributes its "
        "cache_params does not fold into the cache key"
    )

    def check_program(self, analysis) -> Iterator[Finding]:
        program, effects = analysis.program, analysis.effects
        for binding in sorted_cache_bindings(program):
            reads = effects.config_reads(binding.fn_qualname)
            if not reads:
                continue
            coverage = analyze_cache_params(
                binding.cache_expr, binding.module, program
            )
            missing = sorted(
                attr for attr in reads if not coverage.covers(attr)
            )
            if not missing:
                continue
            witness = reads[missing[0]]
            chain = " -> ".join(
                _short(q)
                for q in effects.chain(binding.fn_qualname, witness)
            )
            attrs = ", ".join(f".{attr}" for attr in missing)
            if binding.declared:
                message = (
                    f"{binding.kind} {binding.label} transform "
                    f"{_short(binding.fn_qualname)} reaches config reads its "
                    f"cache_params does not fold in: {attrs} "
                    f"(e.g. via {chain}) — stale cache hits when they change"
                )
            else:
                message = (
                    f"{binding.kind} {binding.label} transform "
                    f"{_short(binding.fn_qualname)} transitively reads config "
                    f"({attrs}, e.g. via {chain}) but declares no "
                    "cache_params — its cache key ignores configuration"
                )
            yield self.finding(binding.module.source, binding.node, message)
