"""RPR104: transitive RNG / wall-clock reach into cached transforms.

The interprocedural upgrade of RPR001/RPR002.  Those rules flag the
*site* of an unseeded draw or host-clock read; an operationally
justified site gets a visible ``# repro: noqa[RPR002]`` and life goes
on.  But the justification ("never enters a canonical event log") is a
property of the *callers*, not the site — and the moment such a site
becomes reachable from a transform whose output the stage cache
replays, the cached bytes embed entropy or host time and warm reruns
stop being byte-identical.

This rule walks every cache binding and reports any ``rng`` or
``wall_clock`` effect in the transform's transitive summary, with the
call chain from the binding down to the offending site.  Seeded,
locally held generators never appear in the effect lattice, so the
repo's ``rng = random.Random(config.seed)`` idiom stays invisible;
the sanctioned telemetry ``wall_time`` site is excluded at extraction.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.linter import Finding, ProgramRule, register
from repro.analysis.rules.deepcache import _short, sorted_cache_bindings


@register
class TransitiveDeterminismRule(ProgramRule):
    code = "RPR104"
    name = "deep-determinism"
    description = (
        "cached transform transitively reaches an unseeded RNG draw or a "
        "wall-clock read"
    )

    def check_program(self, analysis) -> Iterator[Finding]:
        program, effects = analysis.program, analysis.effects
        for binding in sorted_cache_bindings(program):
            for effect in effects.effects_of(
                binding.fn_qualname, kinds=("rng", "wall_clock")
            ):
                chain = " -> ".join(
                    _short(q)
                    for q in effects.chain(binding.fn_qualname, effect)
                )
                message = (
                    f"{binding.kind} {binding.label} transform "
                    f"{_short(binding.fn_qualname)} reaches {effect.detail} "
                    f"in {_short(effect.qualname)} (via {chain}) — cached "
                    "output embeds non-reproducible state"
                )
                yield self.finding(binding.module.source, binding.node, message)
