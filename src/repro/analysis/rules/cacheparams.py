"""RPR005: config-reading stage transforms must declare ``cache_params``.

The stage cache keys on flow/stage identity, per-stage seed, input
provenance digests, and the stage's declared ``cache_params`` — nothing
else.  A transform that reads pipeline configuration (thresholds,
release versions, scale factors) while its registration omits
``cache_params`` will happily serve a cached result computed under a
*different* configuration: the worst kind of wrong answer, because every
log still replays byte-identically.

The rule inspects ``flow.stage(name, fn, ...)`` registrations and
``Stage(...)`` constructions whose transform is a function defined in
the same module: if the transform's body (or any function it encloses)
reads an attribute of a name that looks like pipeline configuration
(``config.*`` / ``cfg.*``), the registration must pass a non-``None``
``cache_params``.  Both figure pipelines satisfy this by folding their
entire config repr into every stage's fingerprint.

Transforms that read config but are genuinely config-independent in
behaviour can suppress with ``# repro: noqa[RPR005]`` at the
registration site — visibly, like every other exception.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.linter import Finding, ImportMap, ModuleSource, Rule, register

_CONFIG_NAMES = {"config", "cfg"}


def _collect_functions(tree: ast.AST) -> Dict[str, ast.AST]:
    functions: Dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node
    return functions


def _reads_config(fn_node: ast.AST) -> Optional[str]:
    """The first ``config.<attr>`` read inside the transform, or None."""
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in _CONFIG_NAMES
        ):
            return f"{node.value.id}.{node.attr}"
    return None


def _transform_argument(node: ast.Call) -> Optional[ast.expr]:
    """The ``fn`` argument: second positional for ``.stage(name, fn)`` and
    ``Stage(name, fn)`` alike, else the ``fn`` keyword."""
    if len(node.args) > 1:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "fn":
            return keyword.value
    return None


def _declares_cache_params(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "cache_params":
            value = keyword.value
            if isinstance(value, ast.Constant) and value.value is None:
                return False
            return True
    return False


def _stage_label(node: ast.Call) -> str:
    if node.args and isinstance(node.args[0], ast.Constant):
        return repr(node.args[0].value)
    for keyword in node.keywords:
        if keyword.arg == "name" and isinstance(keyword.value, ast.Constant):
            return repr(keyword.value.value)
    return "<dynamic>"


@register
class UndeclaredCacheParamsRule(Rule):
    code = "RPR005"
    name = "undeclared-cache-params"
    description = (
        "stage transform reads pipeline config but its registration "
        "declares no cache_params"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        functions = _collect_functions(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_stage_method = isinstance(func, ast.Attribute) and func.attr == "stage"
            is_stage_ctor = (
                imports.resolve(func) == "repro.core.dataflow.Stage"
                or (isinstance(func, ast.Name) and func.id == "Stage")
            )
            if not (is_stage_method or is_stage_ctor):
                continue
            transform = _transform_argument(node)
            if not isinstance(transform, ast.Name):
                continue
            fn_node = functions.get(transform.id)
            if fn_node is None:
                continue
            config_read = _reads_config(fn_node)
            if config_read is None:
                continue
            if _declares_cache_params(node):
                continue
            yield self.finding(
                module,
                node,
                f"stage {_stage_label(node)}: transform {transform.id!r} reads "
                f"{config_read} but the registration declares no cache_params; "
                "a cached result could replay under a different configuration",
            )
