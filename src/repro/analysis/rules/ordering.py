"""RPR004: unordered collections must be sorted before feeding accounting.

``set`` iteration order depends on ``PYTHONHASHSEED`` (for str/bytes
keys) and on insertion history, so a loop like::

    for name in {ds.name for ds in datasets}:
        report.append(name)            # order differs run to run

produces a different accounting/provenance sequence on every run —
exactly the class of bug that broke EventStore-style "same query, same
answer forever" guarantees in the wild.  The fix is always the same:
``for name in sorted(...)``.

Heuristics, to keep the rule quiet on honest code:

* only **set-valued** iterables are flagged — set literals, ``set()`` /
  ``frozenset()`` calls, set comprehensions, and names bound to one of
  those in the same scope.  Python dicts iterate in insertion order, so
  ``dict.values()`` is deterministic whenever insertion is (parallel
  insertion races are the engine's job to serialize, and it does);
* a bare ``for`` over a set is flagged only when its body does something
  order-sensitive: an ``append`` / ``extend`` / ``add`` / ``insert`` /
  ``emit`` / ``record`` / ``inc`` / ``observe`` / ``write`` call, an
  augmented assignment, or a ``yield`` — order-free reductions like
  ``max``/``min``/membership stay legal;
* a **list comprehension** over a set is always flagged: its entire
  purpose is to build an ordered sequence from an unordered one.

Wrapping the iterable in ``sorted(...)`` clears the finding, because the
iteration target is then the sorted list, not the set.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.linter import Finding, ModuleSource, Rule, register

_ORDER_SINKS = {
    "append",
    "extend",
    "add",
    "insert",
    "emit",
    "record",
    "inc",
    "observe",
    "write",
    "writerow",
}


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


def _body_is_order_sensitive(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                return True
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDER_SINKS
            ):
                return True
    return False


class _ScopeVisitor(ast.NodeVisitor):
    """Walks one scope (module or function), tracking set-bound names."""

    def __init__(self, rule: "UnorderedIterationRule", module: ModuleSource):
        self.rule = rule
        self.module = module
        self.set_names: Set[str] = set()
        self.findings: List[Finding] = []

    # -- nested scopes get their own tracker --------------------------------
    def _enter_scope(self, node: ast.AST, body: List[ast.stmt]) -> None:
        nested = _ScopeVisitor(self.rule, self.module)
        # A closure can iterate a set bound in the enclosing scope.
        nested.set_names = set(self.set_names)
        for stmt in body:
            nested.visit(stmt)
        self.findings.extend(nested.findings)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node, node.body)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node, node.body)

    # -- set-name bookkeeping ------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = _is_set_expr(node.value, self.set_names)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self.set_names.add(target.id)
                else:
                    self.set_names.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if _is_set_expr(node.value, self.set_names):
                self.set_names.add(node.target.id)
            else:
                self.set_names.discard(node.target.id)
        self.generic_visit(node)

    # -- the checks ----------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter, self.set_names) and _body_is_order_sensitive(
            node.body
        ):
            self.findings.append(
                self.rule.finding(
                    self.module,
                    node,
                    "iterating a set in an order-sensitive loop; wrap the "
                    "iterable in sorted(...) so accounting order is stable",
                )
            )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for generator in node.generators:
            if _is_set_expr(generator.iter, self.set_names):
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        "list built directly from a set has hash-dependent "
                        "order; use sorted(...) as the comprehension source",
                    )
                )
                break
        self.generic_visit(node)


@register
class UnorderedIterationRule(Rule):
    code = "RPR004"
    name = "unordered-iteration"
    description = (
        "set iterated into order-sensitive accounting without sorted(...)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        visitor = _ScopeVisitor(self, module)
        for stmt in module.tree.body:
            visitor.visit(stmt)
        yield from visitor.findings
