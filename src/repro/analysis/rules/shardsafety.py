"""RPR102: shard-safety — shared mutable state reached from shard callables.

``StageContext.map_shards`` / ``ShardPool`` fan a callable out across
workers.  Under the thread executor, any module-global or pre-existing
closure cell the callable (transitively) mutates is a data race; under
the process executor the mutation lands on a *copy* in the child and
silently diverges from the parent — the exact class of bug PR 6 fixed
by moving fault-injector evaluation to the parent side.

Three hazard shapes are flagged, each with the call chain that reaches
the mutation:

* **module-global mutation** — the state pre-exists the fan-out in every
  execution mode, so it is always shared (threads) or diverging
  (processes);
* **closure-cell mutation where the cell's owning scope lexically
  encloses the shard callable** — the cell is created *before* the
  fan-out and shared by every invocation.  Cells created inside the
  shard call's own dynamic extent (a nested ``flush`` helper mutating
  its parent's locals) are per-invocation and deliberately not flagged;
* **fault-injector state** — injector draws are sequenced parent-side
  by design; a worker touching ``*.faults`` / ``injector.fire`` breaks
  the deterministic fault schedule.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.linter import Finding, ProgramRule, register
from repro.analysis.rules.deepcache import _short, sorted_shard_bindings


def _cell_owner(program, qualname: str, var: str) -> Optional[str]:
    """Qualname of the scope owning closure cell ``var`` mutated in
    ``qualname`` (the nearest enclosing function that binds it)."""
    info = program.functions.get(qualname)
    parent = info.parent_qualname if info else None
    while parent is not None:
        parent_info = program.functions.get(parent)
        if parent_info is None:
            return None
        if (
            var in parent_info.local_names
            and var not in parent_info.declared_nonlocal
            and var not in parent_info.declared_global
        ):
            return parent
        parent = parent_info.parent_qualname
    return None


def _is_proper_ancestor(owner: str, qualname: str) -> bool:
    return qualname != owner and qualname.startswith(owner + ".")


@register
class ShardSafetyRule(ProgramRule):
    code = "RPR102"
    name = "shard-safety"
    description = (
        "shard callable transitively mutates shared module/closure state "
        "or touches fault-injector state"
    )

    def check_program(self, analysis) -> Iterator[Finding]:
        program, effects = analysis.program, analysis.effects
        for binding in sorted_shard_bindings(program):
            hazards = []
            for effect in effects.effects_of(
                binding.fn_qualname,
                kinds=("global_mutation", "closure_mutation", "fault_state"),
            ):
                if effect.kind == "closure_mutation":
                    owner = _cell_owner(program, effect.qualname, effect.param)
                    if owner is None or not _is_proper_ancestor(
                        owner, binding.fn_qualname
                    ):
                        continue  # per-invocation cell: created inside the call
                hazards.append(effect)
            if not hazards:
                continue
            shown = hazards[:4]
            details = "; ".join(
                f"{e.kind.replace('_', '-')} {e.detail} in {_short(e.qualname)}"
                for e in shown
            )
            if len(hazards) > len(shown):
                details += f"; +{len(hazards) - len(shown)} more"
            chain = " -> ".join(
                _short(q)
                for q in effects.chain(binding.fn_qualname, hazards[0])
            )
            message = (
                f"shard callable {_short(binding.fn_qualname)} "
                f"({binding.via}) reaches shared mutable state: {details} "
                f"(via {chain}) — racy under threads, silently diverging "
                "under processes"
            )
            yield self.finding(binding.module.source, binding.node, message)
