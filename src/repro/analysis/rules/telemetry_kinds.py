"""RPR003: every literal ``emit(kind)`` must name a registered event kind.

The telemetry bus raises at runtime on an unknown kind — but only when
that code path actually executes.  A misspelled kind on a rarely-taken
branch (a fault path, a degraded-mode emit) ships silently and detonates
in production.  This rule cross-checks every string-literal ``.emit()``
call site against the real registry — it imports
:data:`repro.core.telemetry.EVENT_KINDS` rather than keeping a copy, so
the lint layer can never drift from the runtime vocabulary.

Dynamic kinds (``emit(kind_var, ...)``) cannot be checked statically and
are left to the runtime guard.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.linter import Finding, ModuleSource, Rule, register
from repro.core.telemetry import EVENT_KINDS


def _kind_argument(node: ast.Call) -> Optional[ast.expr]:
    """The ``kind`` argument of an emit call: first positional or keyword."""
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "kind":
            return keyword.value
    return None


@register
class TelemetryKindRule(Rule):
    code = "RPR003"
    name = "unregistered-telemetry-kind"
    description = (
        "emit() call site names an event kind missing from "
        "telemetry.EVENT_KINDS"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_emit = (
                isinstance(func, ast.Attribute) and func.attr == "emit"
            ) or (isinstance(func, ast.Name) and func.id == "emit")
            if not is_emit:
                continue
            kind = _kind_argument(node)
            if (
                isinstance(kind, ast.Constant)
                and isinstance(kind.value, str)
                and kind.value not in EVENT_KINDS
            ):
                yield self.finding(
                    module,
                    kind,
                    f"event kind {kind.value!r} is not in telemetry.EVENT_KINDS; "
                    "register it there (with its schema documented) first",
                )
