"""Batched, coalescing recall queues over the HSM.

Experiments C7/C9 established the tiering economics: tape mounts dominate
cold-read cost, and batching recalls cartridge-major amortizes them.  This
module puts that mechanism on the *serving* path.  Interactive archive
reads (the workload engine's ``recall`` op) do not hit the tape robot one
file at a time; they queue on a :class:`RecallQueue`, which

* **coalesces** duplicate requests — ten readers asking for the same file
  before the next drain cost one recall and one queue slot;
* splits each drain into a **hot** set (already on the HSM disk tier —
  served immediately at disk speed) and a **cold** set (recalled in one
  batched, mount-efficient :meth:`~repro.storage.hsm.HierarchicalStore.pin_set`
  pass before any read is served).

The queue owns a registry (``recall.requests/coalesced/drains/
hot_served/cold_recalled``); per-file ``storage.recall`` events stay where
they always were, on the HSM's telemetry stream.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.errors import StorageError
from repro.core.telemetry import MetricsRegistry
from repro.core.units import DataSize, Duration
from repro.storage.hsm import HierarchicalStore
from repro.storage.media import StoredFile


@dataclass
class RecallDrainReport:
    """What one :meth:`RecallQueue.drain` pass served and recalled."""

    requests_served: int = 0
    unique_files: int = 0
    coalesced: int = 0
    hot_served: int = 0
    cold_recalled: int = 0
    bytes_read: DataSize = field(default_factory=lambda: DataSize(0.0))
    elapsed: Duration = field(default_factory=Duration.zero)
    files: Tuple[str, ...] = ()

    @property
    def coalescing_ratio(self) -> float:
        """Requests per unique file — 1.0 means no duplication arrived."""
        return self.requests_served / self.unique_files if self.unique_files else 0.0


class RecallQueue:
    """Request coalescing + hot/cold batching in front of one HSM store."""

    def __init__(self, hsm: HierarchicalStore):
        self.hsm = hsm
        self.metrics = MetricsRegistry()
        self._pending: "OrderedDict[str, int]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._pending)

    def pending(self) -> List[str]:
        """Queued unique file names, in first-request order."""
        return list(self._pending)

    def request(self, name: str) -> None:
        """Queue one read request; duplicates coalesce until the drain."""
        if not name:
            raise StorageError("cannot queue a recall for an empty file name")
        self.metrics.counter("recall.requests").inc()
        if name in self._pending:
            self._pending[name] += 1
            self.metrics.counter("recall.coalesced").inc()
        else:
            self._pending[name] = 1

    def drain(self) -> RecallDrainReport:
        """Serve everything queued: read the hot set, batch-recall the cold.

        The cold files come up in one
        :meth:`~repro.storage.hsm.HierarchicalStore.recall_set` pass
        (cartridge-major mount order, per C9) and are served straight
        from the batch — so per-file recall latency never lands on an
        individual request, and a cold set larger than the disk tier is
        never recalled twice.
        """
        if not self._pending:
            return RecallDrainReport()
        batch, self._pending = self._pending, OrderedDict()
        self.metrics.counter("recall.drains").inc()
        hot = [name for name in batch if self.hsm.is_cached(name)]
        cold = [name for name in batch if not self.hsm.is_cached(name)]
        elapsed = Duration.zero()
        served: Dict[str, StoredFile] = {}
        for name in hot:
            file, read_elapsed = self.hsm.read(name)
            served[name] = file
            elapsed += read_elapsed
        if cold:
            files, recall_elapsed = self.hsm.recall_set(cold)
            elapsed += recall_elapsed
            for file in files:
                served[file.name] = file
        total_bytes = sum(
            served[name].size.bytes * count for name, count in batch.items()
        )
        self.metrics.counter("recall.hot_served").inc(len(hot))
        self.metrics.counter("recall.cold_recalled").inc(len(cold))
        return RecallDrainReport(
            requests_served=sum(batch.values()),
            unique_files=len(batch),
            coalesced=sum(count - 1 for count in batch.values()),
            hot_served=len(hot),
            cold_recalled=len(cold),
            bytes_read=DataSize(total_bytes),
            elapsed=elapsed,
            files=tuple(batch),
        )


__all__ = ["RecallDrainReport", "RecallQueue"]
