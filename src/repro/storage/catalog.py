"""File catalog: logical files and their replicas.

All three projects replicate: Arecibo raw data exists at the observatory,
on shipped disks, on CTC tape, and at PALFA member sites; provenance and
fixity only make sense against a catalog that knows where every copy lives
and what its checksum should be.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.errors import IntegrityError, StorageError
from repro.core.units import DataSize
from repro.storage.media import checksum_for


@dataclass(frozen=True)
class Replica:
    """One copy of a logical file at one location."""

    location: str
    medium_id: str
    checksum: str


@dataclass
class CatalogEntry:
    """A logical file with its expected checksum and known replicas."""

    name: str
    size: DataSize
    checksum: str
    replicas: List[Replica] = field(default_factory=list)

    @property
    def replica_count(self) -> int:
        return len(self.replicas)

    def locations(self) -> List[str]:
        return sorted({replica.location for replica in self.replicas})


class FileCatalog:
    """Registry of logical files → replicas, with fixity verification."""

    def __init__(self) -> None:
        self._entries: Dict[str, CatalogEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def register(self, name: str, size: DataSize, content_tag: str = "") -> CatalogEntry:
        """Register a new logical file and its expected checksum."""
        if name in self._entries:
            raise StorageError(f"catalog already has {name!r}")
        entry = CatalogEntry(
            name=name, size=size, checksum=checksum_for(name, size, content_tag)
        )
        self._entries[name] = entry
        return entry

    def entry(self, name: str) -> CatalogEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise StorageError(f"catalog has no file {name!r}") from None

    def add_replica(self, name: str, location: str, medium_id: str, checksum: str) -> Replica:
        """Record a new copy; the checksum must match the catalog's."""
        entry = self.entry(name)
        if checksum != entry.checksum:
            raise IntegrityError(
                f"replica of {name!r} at {location!r} has checksum {checksum[:8]}..., "
                f"expected {entry.checksum[:8]}..."
            )
        replica = Replica(location=location, medium_id=medium_id, checksum=checksum)
        entry.replicas.append(replica)
        return replica

    def drop_replicas_at(self, location: str) -> int:
        """Forget all replicas at a location (e.g. a failed medium); returns count."""
        dropped = 0
        for entry in self._entries.values():
            before = len(entry.replicas)
            entry.replicas = [r for r in entry.replicas if r.location != location]
            dropped += before - len(entry.replicas)
        return dropped

    def drop_replicas_at_medium(self, medium_id: str) -> int:
        """Forget all replicas on one physical medium; returns count."""
        dropped = 0
        for entry in self._entries.values():
            before = len(entry.replicas)
            entry.replicas = [r for r in entry.replicas if r.medium_id != medium_id]
            dropped += before - len(entry.replicas)
        return dropped

    def files(self) -> List[str]:
        """All registered logical file names."""
        return sorted(self._entries)

    def files_alive(self) -> List[str]:
        """Logical files with at least one surviving replica."""
        return sorted(
            name for name, entry in self._entries.items() if entry.replica_count > 0
        )

    def files_at(self, location: str) -> List[str]:
        return sorted(
            name
            for name, entry in self._entries.items()
            if any(replica.location == location for replica in entry.replicas)
        )

    def unreplicated(self, minimum: int = 2) -> List[str]:
        """Logical files with fewer than ``minimum`` replicas (loss risk)."""
        return sorted(
            name
            for name, entry in self._entries.items()
            if entry.replica_count < minimum
        )

    def lost(self) -> List[str]:
        """Logical files with zero replicas — unrecoverable."""
        return self.unreplicated(minimum=1)

    def total_logical(self) -> DataSize:
        return DataSize(sum(entry.size.bytes for entry in self._entries.values()))

    def total_physical(self) -> DataSize:
        return DataSize(
            sum(
                entry.size.bytes * entry.replica_count
                for entry in self._entries.values()
            )
        )
