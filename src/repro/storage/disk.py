"""Disk pools: online random-access storage built from disk media.

A :class:`DiskPool` fronts a set of :class:`~repro.storage.media.Medium`
instances with first-fit placement, a flat namespace, and aggregate usage
accounting.  It is the building block for HSM disk caches, the WebLab RAID
store, and the staging areas at Arecibo and the CTC.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import CapacityError, StorageError
from repro.core.units import DataSize, Duration
from repro.storage.media import MediaType, Medium, StoredFile, checksum_for


class DiskPool:
    """A named pool of disk media with first-fit file placement."""

    def __init__(self, name: str, media_type: MediaType, count: int = 1):
        if count <= 0:
            raise StorageError("DiskPool needs at least one medium")
        self.name = name
        self.media_type = media_type
        self._media: List[Medium] = [
            Medium(media_type=media_type, label=f"{name}-{index}") for index in range(count)
        ]
        self._locations: Dict[str, Medium] = {}
        self.total_write_time = Duration.zero()
        self.total_read_time = Duration.zero()

    # -- capacity ------------------------------------------------------------
    @property
    def capacity(self) -> DataSize:
        return DataSize(sum(m.media_type.capacity.bytes for m in self._media if not m.failed))

    @property
    def used(self) -> DataSize:
        return DataSize(sum(m.used.bytes for m in self._media if not m.failed))

    @property
    def free(self) -> DataSize:
        return DataSize(max(0.0, self.capacity.bytes - self.used.bytes))

    @property
    def media(self) -> List[Medium]:
        return list(self._media)

    def add_media(self, count: int = 1) -> None:
        """Grow the pool (the "room for growth when data rates increase" knob)."""
        start = len(self._media)
        for index in range(count):
            self._media.append(
                Medium(media_type=self.media_type, label=f"{self.name}-{start + index}")
            )

    # -- file operations -------------------------------------------------------
    def write(self, name: str, size: DataSize, content_tag: str = "") -> StoredFile:
        """Store a new file; first medium with room wins."""
        if name in self._locations:
            raise StorageError(f"pool {self.name!r} already holds {name!r}")
        file = StoredFile(
            name=name,
            size=size,
            checksum=checksum_for(name, size, content_tag),
            content_tag=content_tag,
        )
        for medium in self._media:
            if medium.failed or file.size.bytes > medium.free.bytes:
                continue
            self.total_write_time += medium.store(file)
            self._locations[name] = medium
            return file
        raise CapacityError(
            f"pool {self.name!r}: no medium has {size} free (pool free: {self.free})"
        )

    def read(self, name: str) -> StoredFile:
        medium = self._require(name)
        file = medium.fetch(name)
        self.total_read_time += medium.media_type.read_time(file.size)
        return file

    def delete(self, name: str) -> StoredFile:
        medium = self._require(name)
        file = medium.remove(name)
        del self._locations[name]
        return file

    def holds(self, name: str) -> bool:
        return name in self._locations

    def file_names(self) -> List[str]:
        return sorted(self._locations)

    def location_of(self, name: str) -> Medium:
        return self._require(name)

    def _require(self, name: str) -> Medium:
        medium = self._locations.get(name)
        if medium is None:
            raise StorageError(f"pool {self.name!r} does not hold {name!r}")
        if medium.failed:
            raise StorageError(
                f"pool {self.name!r}: medium holding {name!r} has failed"
            )
        return medium

    def fail_medium(self, index: int) -> List[str]:
        """Fail one medium; returns names of the files lost with it."""
        medium = self._media[index]
        medium.fail()
        lost = [name for name, location in self._locations.items() if location is medium]
        for name in lost:
            del self._locations[name]
        return sorted(lost)
