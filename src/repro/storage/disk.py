"""Disk pools: online random-access storage built from disk media.

A :class:`DiskPool` fronts a set of :class:`~repro.storage.media.Medium`
instances with first-fit placement, a flat namespace, and aggregate usage
accounting.  It is the building block for HSM disk caches, the WebLab RAID
store, and the staging areas at Arecibo and the CTC.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import CapacityError, StorageError
from repro.core.telemetry import MetricsRegistry, Telemetry, get_telemetry
from repro.core.units import DataSize, Duration
from repro.storage.media import MediaType, Medium, StoredFile, checksum_for


class DiskPool:
    """A named pool of disk media with first-fit file placement.

    Throughput accounting lives in a per-pool metrics registry; the
    ``total_write_time`` / ``total_read_time`` properties are adapters
    over it, and writes/deletes publish ``storage.write``/``storage.evict``
    events on the telemetry bus.
    """

    def __init__(
        self,
        name: str,
        media_type: MediaType,
        count: int = 1,
        telemetry: Optional[Telemetry] = None,
    ):
        if count <= 0:
            raise StorageError("DiskPool needs at least one medium")
        self.name = name
        self.media_type = media_type
        self._media: List[Medium] = [
            Medium(media_type=media_type, label=f"{name}-{index}") for index in range(count)
        ]
        self._locations: Dict[str, Medium] = {}
        self.metrics = MetricsRegistry()
        self._telemetry = telemetry if telemetry is not None else get_telemetry()

    @property
    def total_write_time(self) -> Duration:
        return Duration(self.metrics.value("disk.write_seconds"))

    @property
    def total_read_time(self) -> Duration:
        return Duration(self.metrics.value("disk.read_seconds"))

    # -- capacity ------------------------------------------------------------
    @property
    def capacity(self) -> DataSize:
        return DataSize(sum(m.media_type.capacity.bytes for m in self._media if not m.failed))

    @property
    def used(self) -> DataSize:
        return DataSize(sum(m.used.bytes for m in self._media if not m.failed))

    @property
    def free(self) -> DataSize:
        return DataSize(max(0.0, self.capacity.bytes - self.used.bytes))

    @property
    def media(self) -> List[Medium]:
        return list(self._media)

    def add_media(self, count: int = 1) -> None:
        """Grow the pool (the "room for growth when data rates increase" knob)."""
        start = len(self._media)
        for index in range(count):
            self._media.append(
                Medium(media_type=self.media_type, label=f"{self.name}-{start + index}")
            )

    # -- file operations -------------------------------------------------------
    def write(self, name: str, size: DataSize, content_tag: str = "") -> StoredFile:
        """Store a new file; first medium with room wins."""
        if name in self._locations:
            raise StorageError(f"pool {self.name!r} already holds {name!r}")
        file = StoredFile(
            name=name,
            size=size,
            checksum=checksum_for(name, size, content_tag),
            content_tag=content_tag,
        )
        for medium in self._media:
            if medium.failed or file.size.bytes > medium.free.bytes:
                continue
            elapsed = medium.store(file)
            self.metrics.gauge("disk.write_seconds").add(elapsed.seconds)
            self.metrics.counter("disk.writes").inc()
            self.metrics.counter("disk.bytes_written").inc(size.bytes)
            self._locations[name] = medium
            self._telemetry.emit(
                "storage.write",
                name,
                store=self.name,
                bytes=size.bytes,
                elapsed_s=elapsed.seconds,
                medium="disk",
            )
            return file
        raise CapacityError(
            f"pool {self.name!r}: no medium has {size} free (pool free: {self.free})"
        )

    def read(self, name: str) -> StoredFile:
        medium = self._require(name)
        file = medium.fetch(name)
        elapsed = medium.media_type.read_time(file.size)
        self.metrics.gauge("disk.read_seconds").add(elapsed.seconds)
        self.metrics.counter("disk.reads").inc()
        self.metrics.counter("disk.bytes_read").inc(file.size.bytes)
        return file

    def delete(self, name: str) -> StoredFile:
        medium = self._require(name)
        file = medium.remove(name)
        del self._locations[name]
        self.metrics.counter("disk.deletes").inc()
        self._telemetry.emit(
            "storage.evict", name, store=self.name, bytes=file.size.bytes, medium="disk"
        )
        return file

    def holds(self, name: str) -> bool:
        return name in self._locations

    def file_names(self) -> List[str]:
        return sorted(self._locations)

    def location_of(self, name: str) -> Medium:
        return self._require(name)

    def _require(self, name: str) -> Medium:
        medium = self._locations.get(name)
        if medium is None:
            raise StorageError(f"pool {self.name!r} does not hold {name!r}")
        if medium.failed:
            raise StorageError(
                f"pool {self.name!r}: medium holding {name!r} has failed"
            )
        return medium

    def fail_medium(self, index: int) -> List[str]:
        """Fail one medium; returns names of the files lost with it."""
        medium = self._media[index]
        medium.fail()
        lost = [name for name, location in self._locations.items() if location is medium]
        for name in lost:
            del self._locations[name]
        return sorted(lost)
