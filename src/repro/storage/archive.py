"""Long-term archive with media-generation migration.

"A key issue [...] is the migration of the data to new storage technologies
as they emerge.  Storage media costs undoubtedly will decrease, but manpower
requirements for migrating the data are significant and care is needed to
avoid loss of data."

The :class:`LongTermArchive` holds logical files on media of the current
generation (optionally dual-copy), ages them with an increasing hazard
model, and supports migration to a newer media type with explicit media,
machine-time, and personnel costs — the trade study of experiment C15.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import StorageError
from repro.core.resources import CostLedger, PersonnelModel
from repro.core.telemetry import MetricsRegistry, Telemetry, get_telemetry
from repro.core.units import DataSize, Duration
from repro.storage.catalog import FileCatalog
from repro.storage.media import MediaType, Medium, StoredFile

# Handling labor per medium moved during a migration: locate, mount, copy
# supervision, verify, relabel.  Calibrated to "significant manpower".
_MIGRATION_MINUTES_PER_MEDIUM = 15.0
# Media hazard grows with age: effective annual failure probability is
# base * (1 + AGING_FACTOR * age_years).
_AGING_FACTOR = 0.35


@dataclass
class MigrationReport:
    """Outcome of one media-generation migration."""

    from_type: str
    to_type: str
    files_moved: int
    bytes_moved: DataSize
    media_retired: int
    media_purchased: int
    machine_time: Duration
    personnel_time: Duration
    media_cost: float
    personnel_cost: float


@dataclass
class AgingReport:
    """Outcome of advancing the archive clock."""

    years: float
    media_failed: int
    files_lost: List[str] = field(default_factory=list)
    files_degraded: List[str] = field(default_factory=list)


#: Default seed for an archive's media-failure RNG when the caller does
#: not supply one.  Explicit so standalone archives are reproducible by
#: default; runs that need independent streams pass their own
#: ``random.Random(seed)``.
DEFAULT_ARCHIVE_SEED = 0


class LongTermArchive:
    """Versioned, fixity-checked archival storage across media generations."""

    def __init__(
        self,
        name: str,
        media_type: MediaType,
        copies: int = 1,
        personnel: Optional[PersonnelModel] = None,
        rng: Optional[random.Random] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if copies < 1:
            raise StorageError("archive needs at least one copy per file")
        self.name = name
        self.media_type = media_type
        self.copies = copies
        self.personnel = personnel if personnel is not None else PersonnelModel()
        self.rng = rng if rng is not None else random.Random(DEFAULT_ARCHIVE_SEED)
        self.catalog = FileCatalog()
        self.ledger = CostLedger()
        self.metrics = MetricsRegistry()
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        # One media set per copy index, so copies of a file never share a medium.
        self._media_sets: List[List[Medium]] = [[] for _ in range(copies)]
        self._content_tags: Dict[str, str] = {}

    # -- inventory ---------------------------------------------------------
    @property
    def media_count(self) -> int:
        return sum(len(media_set) for media_set in self._media_sets)

    @property
    def live_media(self) -> List[Medium]:
        return [
            medium
            for media_set in self._media_sets
            for medium in media_set
            if not medium.failed
        ]

    def total_stored(self) -> DataSize:
        return self.catalog.total_logical()

    # -- ingest ---------------------------------------------------------------
    def _open_medium(self, copy_index: int, size: DataSize) -> Medium:
        for medium in self._media_sets[copy_index]:
            if not medium.failed and medium.free.bytes >= size.bytes:
                return medium
        medium = Medium(
            media_type=self.media_type,
            label=f"{self.name}-c{copy_index}-{len(self._media_sets[copy_index])}",
        )
        self._media_sets[copy_index].append(medium)
        self.ledger.charge("media", self.media_type.unit_cost, self.media_type.name)
        return medium

    def ingest(self, name: str, size: DataSize, content_tag: str = "") -> Duration:
        """Archive a logical file (writing all configured copies)."""
        if size.bytes > self.media_type.capacity.bytes:
            raise StorageError(
                f"{name!r} ({size}) exceeds one {self.media_type.name}; split first"
            )
        entry = self.catalog.register(name, size, content_tag)
        self._content_tags[name] = content_tag
        elapsed = Duration.zero()
        for copy_index in range(self.copies):
            medium = self._open_medium(copy_index, size)
            file = StoredFile(
                name=name,
                size=size,
                checksum=entry.checksum,
                content_tag=content_tag,
            )
            elapsed += medium.store(file)
            self.catalog.add_replica(
                name,
                location=f"{self.name}/copy{copy_index}",
                medium_id=medium.medium_id,
                checksum=entry.checksum,
            )
        self.metrics.counter("archive.files_ingested").inc()
        self.metrics.counter("archive.bytes_ingested").inc(size.bytes)
        self.metrics.counter("archive.copies_written").inc(self.copies)
        self._telemetry.emit(
            "storage.write",
            name,
            store=self.name,
            bytes=size.bytes,
            copies=self.copies,
            elapsed_s=elapsed.seconds,
            medium=self.media_type.name,
        )
        return elapsed

    # -- integrity ---------------------------------------------------------
    def fixity_check(self) -> List[str]:
        """Verify every stored copy; returns names of files with bad copies."""
        bad: List[str] = []
        for media_set in self._media_sets:
            for medium in media_set:
                if medium.failed:
                    continue
                for file in medium.files:
                    if not file.verify():
                        bad.append(file.name)
        return sorted(set(bad))

    def readable(self, name: str) -> bool:
        """True if at least one intact copy survives."""
        self.catalog.entry(name)  # raises StorageError for unknown names
        for media_set in self._media_sets:
            for medium in media_set:
                if medium.failed or not medium.holds(name):
                    continue
                if medium.fetch(name).verify():
                    return True
        return False

    # -- aging ---------------------------------------------------------------
    def age(self, years: float) -> AgingReport:
        """Advance time; media may fail with an age-increasing hazard."""
        if years < 0:
            raise StorageError("cannot age the archive backwards")
        failed = 0
        for media_set in self._media_sets:
            for medium in media_set:
                if medium.failed:
                    continue
                medium.age_years += years
                hazard = medium.media_type.annual_failure_prob * (
                    1.0 + _AGING_FACTOR * medium.age_years
                )
                prob = min(0.95, hazard * years)
                if self.rng.random() < prob:
                    medium.fail()
                    self.catalog.drop_replicas_at_medium(medium.medium_id)
                    failed += 1
        lost = [name for name in self.catalog.lost()]
        degraded = self.catalog.unreplicated(minimum=self.copies)
        return AgingReport(
            years=years,
            media_failed=failed,
            files_lost=lost,
            files_degraded=[name for name in degraded if name not in lost],
        )

    # -- migration -----------------------------------------------------------
    def migrate(self, new_type: MediaType) -> MigrationReport:
        """Copy everything readable onto fresh media of ``new_type``.

        Unreadable files (all copies lost/corrupt) are left behind — the
        data-loss risk of deferring migration too long.
        """
        old_type = self.media_type
        old_media = [m for ms in self._media_sets for m in ms]
        survivors = [
            name for name in self.catalog.files_alive() if self.readable(name)
        ]

        machine_seconds = 0.0
        for name in survivors:
            size = self.catalog.entry(name).size
            machine_seconds += (size / old_type.read_rate).seconds
            machine_seconds += self.copies * (size / new_type.write_rate).seconds

        # Rebuild onto the new generation.
        self.media_type = new_type
        retired = len(old_media)
        old_catalog = self.catalog
        old_tags = dict(self._content_tags)
        self.catalog = FileCatalog()
        self._content_tags = {}
        self._media_sets = [[] for _ in range(self.copies)]
        media_before = self.ledger.total("media")
        moved_bytes = 0.0
        for name in survivors:
            size = old_catalog.entry(name).size
            self.ingest(name, size, old_tags.get(name, ""))
            moved_bytes += size.bytes

        purchased = self.media_count
        media_cost = self.ledger.total("media") - media_before
        personnel_time = Duration.minutes(
            _MIGRATION_MINUTES_PER_MEDIUM * (retired + purchased)
        )
        personnel_cost = self.personnel.cost(personnel_time)
        self.ledger.charge("personnel", personnel_cost, "migration handling")
        return MigrationReport(
            from_type=old_type.name,
            to_type=new_type.name,
            files_moved=len(survivors),
            bytes_moved=DataSize(moved_bytes),
            media_retired=retired,
            media_purchased=purchased,
            machine_time=Duration(machine_seconds),
            personnel_time=personnel_time,
            media_cost=media_cost,
            personnel_cost=personnel_cost,
        )
