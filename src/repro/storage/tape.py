"""Robotic tape library.

"The raw data disks are transported to the CTC, where their contents are
archived to a robotic tape system and retrieved for processing."  The model
captures what matters for flow planning: cartridges are cheap and plentiful
but access pays a mount latency, the robot has a limited number of drives,
and sequential append is the natural write mode.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.errors import StorageError
from repro.core.faults import FaultInjector, delay_seconds
from repro.core.telemetry import MetricsRegistry, Telemetry, get_telemetry
from repro.core.units import DataSize, Duration
from repro.storage.media import LTO3_TAPE, MediaType, Medium, StoredFile, checksum_for


@dataclass
class TapeStats:
    """Operation counters for a library (a registry snapshot view)."""

    writes: int = 0
    reads: int = 0
    mounts: int = 0
    bytes_written: float = 0.0
    bytes_read: float = 0.0
    busy_time: Duration = Duration.zero()

    @classmethod
    def from_registry(cls, metrics: MetricsRegistry) -> "TapeStats":
        return cls(
            writes=int(metrics.value("tape.writes")),
            reads=int(metrics.value("tape.reads")),
            mounts=int(metrics.value("tape.mounts")),
            bytes_written=metrics.value("tape.bytes_written"),
            bytes_read=metrics.value("tape.bytes_read"),
            busy_time=Duration(metrics.value("tape.busy_seconds")),
        )


class RoboticTapeLibrary:
    """A tape robot: unbounded cartridge slots, few drives.

    Writes append to the currently mounted "fill" cartridge, starting a new
    one when full (cartridges are auto-purchased; media cost is tracked so
    archive economics can be computed).  Reads mount whichever cartridge
    holds the file; consecutive reads from the mounted cartridge skip the
    mount latency, which is why the Arecibo pipeline batches its recalls.
    """

    def __init__(
        self,
        name: str,
        media_type: MediaType = LTO3_TAPE,
        drives: int = 2,
        telemetry: Optional[Telemetry] = None,
        faults: Optional[FaultInjector] = None,
    ):
        if drives <= 0:
            raise StorageError("library needs at least one drive")
        self.name = name
        self.media_type = media_type
        self.drives = drives
        self._cartridges: List[Medium] = []
        self._locations: Dict[str, Medium] = {}
        self._mounted: Optional[Medium] = None
        self._fill: Optional[Medium] = None
        self.metrics = MetricsRegistry()
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        #: Armed fault injector shared with the rest of the run (or None).
        #: Operations consult it under scope ``"storage"`` with targets
        #: ``"<library>/archive"`` and ``"<library>/recall"``: ``"crash"``
        #: raises before any state mutates, ``"delay"`` charges extra
        #: simulated mount/transfer stall, and ``"corrupt"`` (recall only)
        #: hands back a corrupted copy for integrity checks to catch.
        self.faults = faults

    def _consult_faults(self, operation: str) -> tuple[Duration, bool]:
        """Fire the injector for one operation; returns (stall, corrupt)."""
        if self.faults is None:
            return Duration.zero(), False
        records = self.faults.check("storage", f"{self.name}/{operation}")
        corrupt = any(record.kind == "corrupt" for record in records)
        return Duration(delay_seconds(records)), corrupt

    @property
    def stats(self) -> TapeStats:
        """Operation counters, read from the metrics registry."""
        return TapeStats.from_registry(self.metrics)

    # -- inventory ---------------------------------------------------------
    @property
    def cartridge_count(self) -> int:
        return len(self._cartridges)

    @property
    def stored(self) -> DataSize:
        return DataSize(sum(c.used.bytes for c in self._cartridges))

    @property
    def media_cost(self) -> float:
        return self.media_type.unit_cost * len(self._cartridges)

    def file_names(self) -> List[str]:
        return sorted(self._locations)

    def holds(self, name: str) -> bool:
        return name in self._locations

    def _new_cartridge(self) -> Medium:
        cartridge = Medium(
            media_type=self.media_type,
            label=f"{self.name}-tape-{next(_cartridge_counter):05d}",
        )
        self._cartridges.append(cartridge)
        return cartridge

    def _mount(self, cartridge: Medium) -> Duration:
        if self._mounted is cartridge:
            return Duration.zero()
        self._mounted = cartridge
        self.metrics.counter("tape.mounts").inc()
        return self.media_type.mount_latency

    # -- operations ----------------------------------------------------------
    def archive(self, name: str, size: DataSize, content_tag: str = "") -> Duration:
        """Append a file to tape; returns the simulated elapsed time."""
        stall, _ = self._consult_faults("archive")
        if name in self._locations:
            raise StorageError(f"library {self.name!r} already archived {name!r}")
        if size.bytes > self.media_type.capacity.bytes:
            raise StorageError(
                f"{name!r} ({size}) exceeds one cartridge "
                f"({self.media_type.capacity}); split before archiving"
            )
        if self._fill is None or self._fill.free.bytes < size.bytes:
            self._fill = self._new_cartridge()
        elapsed = self._mount(self._fill)
        file = StoredFile(
            name=name,
            size=size,
            checksum=checksum_for(name, size, content_tag),
            content_tag=content_tag,
        )
        # Medium.store includes mount latency via write_time; we account
        # mounts separately, so only add transfer time here.
        self._fill.files.append(file)
        elapsed += size / self.media_type.write_rate
        elapsed += stall
        self._locations[name] = self._fill
        self.metrics.counter("tape.writes").inc()
        self.metrics.counter("tape.bytes_written").inc(size.bytes)
        self.metrics.gauge("tape.busy_seconds").add(elapsed.seconds)
        self._telemetry.emit(
            "storage.write",
            name,
            store=self.name,
            bytes=size.bytes,
            elapsed_s=elapsed.seconds,
            medium="tape",
        )
        return elapsed

    def recall(self, name: str) -> tuple[StoredFile, Duration]:
        """Read a file back; returns (file, simulated elapsed time)."""
        stall, corrupt = self._consult_faults("recall")
        cartridge = self._locations.get(name)
        if cartridge is None:
            raise StorageError(f"library {self.name!r} has no file {name!r}")
        if cartridge.failed:
            raise StorageError(f"cartridge holding {name!r} has failed")
        elapsed = self._mount(cartridge)
        file = cartridge.fetch(name)
        if corrupt:
            # Hand back a corrupted copy (a bad read), leaving the archived
            # original intact so a re-read can succeed.
            damaged = StoredFile(
                name=file.name,
                size=file.size,
                checksum=file.checksum,
                content_tag=file.content_tag,
            )
            damaged.corrupt()
            file = damaged
        elapsed += file.size / self.media_type.read_rate
        elapsed += stall
        self.metrics.counter("tape.reads").inc()
        self.metrics.counter("tape.bytes_read").inc(file.size.bytes)
        self.metrics.gauge("tape.busy_seconds").add(elapsed.seconds)
        self._telemetry.emit(
            "storage.recall",
            name,
            store=self.name,
            bytes=file.size.bytes,
            elapsed_s=elapsed.seconds,
            medium="tape",
        )
        return file, elapsed

    def recall_batch(self, names: List[str]) -> tuple[List[StoredFile], Duration]:
        """Recall many files, ordered to minimize mounts (cartridge-major)."""
        missing = [name for name in names if name not in self._locations]
        if missing:
            raise StorageError(f"library {self.name!r} missing files: {missing}")
        by_cartridge: Dict[str, List[str]] = {}
        for name in names:
            by_cartridge.setdefault(self._locations[name].medium_id, []).append(name)
        files: List[StoredFile] = []
        total = Duration.zero()
        for cartridge_names in by_cartridge.values():
            for name in cartridge_names:
                file, elapsed = self.recall(name)
                files.append(file)
                total += elapsed
        return files, total

    def fail_cartridge(self, index: int) -> List[str]:
        """Fail one cartridge; returns names of files lost."""
        cartridge = self._cartridges[index]
        cartridge.fail()
        lost = sorted(
            name for name, location in self._locations.items() if location is cartridge
        )
        for name in lost:
            del self._locations[name]
        if self._fill is cartridge:
            self._fill = None
        if self._mounted is cartridge:
            self._mounted = None
        return lost


_cartridge_counter = itertools.count(1)
