"""Storage media models.

Each :class:`MediaType` bundles the handful of physical constants the
simulations need: capacity, sustained transfer rates, mount/spin-up latency,
unit cost, and an annual failure probability used by the archive's decay
model.  The predefined constants are mid-2000s values matching the paper's
hardware: ATA disks shipped from Arecibo, USB drives shipped to Cornell by
CLEO's Monte-Carlo producers, LTO tape in the CTC robot, and RAID for the
WebLab server.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import List

from repro.core.errors import CapacityError, StorageError
from repro.core.units import DataSize, Duration, Rate

_medium_counter = itertools.count(1)


@dataclass(frozen=True)
class MediaType:
    """Physical characteristics of one kind of storage medium."""

    name: str
    capacity: DataSize
    read_rate: Rate
    write_rate: Rate
    mount_latency: Duration = field(default_factory=Duration.zero)
    unit_cost: float = 0.0
    annual_failure_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity.bytes <= 0:
            raise StorageError(f"media type {self.name!r} needs positive capacity")
        if not 0.0 <= self.annual_failure_prob < 1.0:
            raise StorageError(
                f"media type {self.name!r}: failure probability must be in [0, 1)"
            )

    def write_time(self, size: DataSize) -> Duration:
        return self.mount_latency + size / self.write_rate

    def read_time(self, size: DataSize) -> Duration:
        return self.mount_latency + size / self.read_rate


# -- mid-2000s reference media ------------------------------------------------
ATA_DISK_2005 = MediaType(
    name="ATA disk (400 GB)",
    capacity=DataSize.gigabytes(400),
    read_rate=Rate.megabytes_per_second(60),
    write_rate=Rate.megabytes_per_second(55),
    unit_cost=250.0,
    annual_failure_prob=0.03,
)

USB_DISK_2005 = MediaType(
    name="USB disk (300 GB)",
    capacity=DataSize.gigabytes(300),
    read_rate=Rate.megabytes_per_second(30),
    write_rate=Rate.megabytes_per_second(25),
    unit_cost=200.0,
    annual_failure_prob=0.04,
)

LTO3_TAPE = MediaType(
    name="LTO-3 cartridge (400 GB)",
    capacity=DataSize.gigabytes(400),
    read_rate=Rate.megabytes_per_second(80),
    write_rate=Rate.megabytes_per_second(80),
    mount_latency=Duration.from_seconds(90),
    unit_cost=80.0,
    annual_failure_prob=0.005,
)

LTO5_TAPE = MediaType(
    name="LTO-5 cartridge (1.5 TB)",
    capacity=DataSize.terabytes(1.5),
    read_rate=Rate.megabytes_per_second(140),
    write_rate=Rate.megabytes_per_second(140),
    mount_latency=Duration.from_seconds(75),
    unit_cost=60.0,
    annual_failure_prob=0.004,
)

RAID_SHELF_2005 = MediaType(
    name="RAID shelf (2 TB usable)",
    capacity=DataSize.terabytes(2),
    read_rate=Rate.megabytes_per_second(200),
    write_rate=Rate.megabytes_per_second(150),
    unit_cost=8000.0,
    annual_failure_prob=0.002,
)


def checksum_for(name: str, size: DataSize, content_tag: str = "") -> str:
    """Deterministic stand-in checksum for a simulated file's content.

    Simulated files have no real bytes; their identity is (name, size,
    content tag).  Corruption is modelled by flipping the tag.
    """
    digest = hashlib.md5()
    digest.update(name.encode("utf-8"))
    digest.update(str(int(size.bytes)).encode("ascii"))
    digest.update(content_tag.encode("utf-8"))
    return digest.hexdigest()


@dataclass
class StoredFile:
    """A (simulated) file resident on a medium."""

    name: str
    size: DataSize
    checksum: str
    content_tag: str = ""

    def verify(self) -> bool:
        return self.checksum == checksum_for(self.name, self.size, self.content_tag)

    def corrupt(self) -> None:
        """Flip the content so the recorded checksum no longer matches."""
        self.content_tag += "!corrupted"


@dataclass
class Medium:
    """One physical instance of a media type (a cartridge, a disk)."""

    media_type: MediaType
    label: str = ""
    medium_id: str = field(default_factory=lambda: f"med-{next(_medium_counter):05d}")
    files: List[StoredFile] = field(default_factory=list)
    failed: bool = False
    age_years: float = 0.0

    @property
    def used(self) -> DataSize:
        return DataSize(sum(file.size.bytes for file in self.files))

    @property
    def free(self) -> DataSize:
        return DataSize(max(0.0, self.media_type.capacity.bytes - self.used.bytes))

    def store(self, file: StoredFile) -> Duration:
        """Write a file; returns simulated write time."""
        if self.failed:
            raise StorageError(f"medium {self.medium_id} has failed")
        if any(existing.name == file.name for existing in self.files):
            raise StorageError(f"medium {self.medium_id} already holds {file.name!r}")
        if file.size.bytes > self.free.bytes:
            raise CapacityError(
                f"medium {self.medium_id} ({self.media_type.name}): "
                f"{file.size} does not fit in {self.free} free"
            )
        self.files.append(file)
        return self.media_type.write_time(file.size)

    def fetch(self, name: str) -> StoredFile:
        if self.failed:
            raise StorageError(f"medium {self.medium_id} has failed")
        for file in self.files:
            if file.name == name:
                return file
        raise StorageError(f"medium {self.medium_id} does not hold {name!r}")

    def holds(self, name: str) -> bool:
        return any(file.name == name for file in self.files)

    def remove(self, name: str) -> StoredFile:
        file = self.fetch(name)
        self.files.remove(file)
        return file

    def fail(self) -> None:
        self.failed = True
