"""Hierarchical storage management.

CLEO's data "are stored in a hierarchical storage management (HSM) system
(which automatically moves data between tape and disk cache)".  The model:
a fixed-size disk cache in front of a robotic tape library, write-through
archival, LRU eviction, and recall accounting — enough to quantify the cost
of cold reads versus the hot/warm/cold partitioning studied in experiment C7.

Accounting is registry-backed: every store owns a
:class:`~repro.core.telemetry.MetricsRegistry` and publishes
``storage.write/recall/evict`` events on the telemetry bus; the public
:attr:`HierarchicalStore.stats` property is a thin :class:`HsmStats`
snapshot over those instruments.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.core.errors import CapacityError, StorageError
from repro.core.telemetry import MetricsRegistry, Telemetry, get_telemetry
from repro.core.units import DataSize, Duration
from repro.storage.media import StoredFile
from repro.storage.tape import RoboticTapeLibrary


@dataclass
class HsmStats:
    """Cache behaviour counters (a snapshot view over the metrics registry)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_recalled: float = 0.0
    recall_time: Duration = field(default_factory=Duration.zero)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @classmethod
    def from_registry(cls, metrics: MetricsRegistry) -> "HsmStats":
        """Snapshot the ``hsm.*`` instruments of one store's registry."""
        return cls(
            hits=int(metrics.value("hsm.hits")),
            misses=int(metrics.value("hsm.misses")),
            evictions=int(metrics.value("hsm.evictions")),
            bytes_recalled=metrics.value("hsm.bytes_recalled"),
            recall_time=Duration(metrics.value("hsm.recall_seconds")),
        )

    @classmethod
    def merge(cls, stats: Iterable["HsmStats"]) -> "HsmStats":
        """Aggregate cache stats across multiple :class:`HierarchicalStore`\\ s.

        Counters and recalled volume add; ``hit_rate`` recomputes from the
        merged hit/miss totals (it is *not* the mean of per-store rates —
        a busy store weighs more than an idle one).
        """
        merged = cls()
        for item in stats:
            merged.hits += item.hits
            merged.misses += item.misses
            merged.evictions += item.evictions
            merged.bytes_recalled += item.bytes_recalled
            merged.recall_time += item.recall_time
        return merged


@dataclass
class CartridgeLossReport:
    """What one failed cartridge took with it — and what survives on disk.

    ``recoverable`` names still have a live disk-tier copy in the HSM
    cache, so they can be re-migrated to a fresh cartridge instead of
    being silently lost; ``unrecoverable`` names existed only on the
    failed tape.  (The Arecibo operators' real procedure: when a tape or
    drive dies, re-archive whatever the disk tier still holds and request
    reshipment of the rest.)
    """

    cartridge_label: str
    lost: List[str] = field(default_factory=list)
    recoverable: List[str] = field(default_factory=list)
    unrecoverable: List[str] = field(default_factory=list)


class HierarchicalStore:
    """Tape library + LRU disk cache, write-through.

    ``store`` archives to tape and leaves a cached copy; ``read`` serves
    from cache when possible and otherwise recalls from tape, evicting
    least-recently-used cached files to make room.
    """

    def __init__(
        self,
        library: RoboticTapeLibrary,
        cache_capacity: DataSize,
        telemetry: Optional[Telemetry] = None,
    ):
        if cache_capacity.bytes <= 0:
            raise StorageError("HSM cache capacity must be positive")
        self.library = library
        self.cache_capacity = cache_capacity
        self._cache: "OrderedDict[str, DataSize]" = OrderedDict()
        self.metrics = MetricsRegistry()
        self._telemetry = telemetry if telemetry is not None else get_telemetry()

    @property
    def stats(self) -> HsmStats:
        """Cache behaviour counters, read from the metrics registry."""
        return HsmStats.from_registry(self.metrics)

    # -- cache bookkeeping ---------------------------------------------------
    @property
    def cached_bytes(self) -> DataSize:
        return DataSize(sum(size.bytes for size in self._cache.values()))

    def cached_files(self) -> List[str]:
        return list(self._cache)

    def is_cached(self, name: str) -> bool:
        return name in self._cache

    def _make_room(self, size: DataSize) -> None:
        if size.bytes > self.cache_capacity.bytes:
            raise CapacityError(
                f"file of {size} exceeds entire HSM cache ({self.cache_capacity})"
            )
        while self.cached_bytes.bytes + size.bytes > self.cache_capacity.bytes:
            evicted_name, evicted_size = self._cache.popitem(last=False)
            self.metrics.counter("hsm.evictions").inc()
            self._telemetry.emit(
                "storage.evict",
                evicted_name,
                store=self.library.name,
                bytes=evicted_size.bytes,
            )

    def _touch(self, name: str) -> None:
        self._cache.move_to_end(name)

    # -- operations ----------------------------------------------------------
    def store(self, name: str, size: DataSize, content_tag: str = "") -> Duration:
        """Archive a file (write-through) and cache it; returns elapsed time."""
        elapsed = self.library.archive(name, size, content_tag)
        self._make_room(size)
        self._cache[name] = size
        self.metrics.counter("hsm.writes").inc()
        self.metrics.counter("hsm.bytes_written").inc(size.bytes)
        self._telemetry.emit(
            "storage.write",
            name,
            store=self.library.name,
            bytes=size.bytes,
            elapsed_s=elapsed.seconds,
        )
        return elapsed

    def read(self, name: str) -> Tuple[StoredFile, Duration]:
        """Read a file, recalling from tape on a cache miss."""
        if name in self._cache:
            self.metrics.counter("hsm.hits").inc()
            self._touch(name)
            # Cache reads are disk-speed; negligible next to tape recall in
            # this model, but we still need the file object, which lives on
            # tape (the cache stores no content in the simulation).
            file, _ = self._peek_tape(name)
            return file, Duration.zero()
        self.metrics.counter("hsm.misses").inc()
        file, elapsed = self.library.recall(name)
        self.metrics.counter("hsm.bytes_recalled").inc(file.size.bytes)
        self.metrics.gauge("hsm.recall_seconds").add(elapsed.seconds)
        self._telemetry.emit(
            "storage.recall",
            name,
            store=self.library.name,
            bytes=file.size.bytes,
            elapsed_s=elapsed.seconds,
        )
        self._make_room(file.size)
        self._cache[name] = file.size
        return file, elapsed

    def _peek_tape(self, name: str) -> Tuple[StoredFile, Duration]:
        """Fetch file metadata without charging a recall (cache-hit path)."""
        cartridge = self.library._locations.get(name)  # noqa: SLF001 - same package
        if cartridge is None:
            raise StorageError(f"HSM cache/tape inconsistency for {name!r}")
        return cartridge.fetch(name), Duration.zero()

    def fail_cartridge(self, index: int, remigrate: bool = True) -> CartridgeLossReport:
        """Fail one tape cartridge, reporting what the disk tier still holds.

        Every file on the cartridge is lost from tape; those with a live
        disk-tier (cache) copy are *recoverable*.  With ``remigrate=True``
        (default) the recoverable files are immediately re-archived to a
        fresh cartridge — write-through, so they stay cached and readable.
        With ``remigrate=False`` the recoverable names are reported but
        evicted from the cache too (no dangling cache entries pointing at
        dead tape), modelling an operator who declines the re-migration.
        """
        cartridge = self.library._cartridges[index]  # noqa: SLF001 - same package
        survivors = {
            file.name: file
            for file in cartridge.files
            if file.name in self._cache
        }
        lost = self.library.fail_cartridge(index)
        report = CartridgeLossReport(cartridge_label=cartridge.label, lost=lost)
        for name in lost:
            if name in survivors:
                report.recoverable.append(name)
            else:
                report.unrecoverable.append(name)
                self._cache.pop(name, None)
        for name in report.recoverable:
            if remigrate:
                file = survivors[name]
                self.library.archive(name, file.size, file.content_tag)
                self.metrics.counter("hsm.remigrations").inc()
                self._telemetry.emit(
                    "storage.write",
                    name,
                    store=self.library.name,
                    bytes=file.size.bytes,
                    remigrated=True,
                )
            else:
                self._cache.pop(name, None)
        return report

    def pin_set(self, names: List[str]) -> Duration:
        """Pre-stage a working set into cache (batched, mount-efficient)."""
        _, elapsed = self.recall_set(names)
        return elapsed

    def recall_set(self, names: List[str]) -> Tuple[List[StoredFile], Duration]:
        """Batched recall that also *returns* the files it staged.

        The serving-path variant of :meth:`pin_set`: a caller holding a
        queue of cold requests gets the recalled file objects directly,
        so it can serve them even when the set is larger than the disk
        tier (re-reading through the cache would recall evicted members
        a second time).  Already-cached names are skipped, not returned.
        """
        to_recall = [name for name in names if name not in self._cache]
        if not to_recall:
            return [], Duration.zero()
        files, elapsed = self.library.recall_batch(to_recall)
        for file in files:
            self.metrics.counter("hsm.misses").inc()
            self.metrics.counter("hsm.bytes_recalled").inc(file.size.bytes)
            self._telemetry.emit(
                "storage.recall",
                file.name,
                store=self.library.name,
                bytes=file.size.bytes,
                batched=True,
            )
            self._make_room(file.size)
            self._cache[file.name] = file.size
        self.metrics.gauge("hsm.recall_seconds").add(elapsed.seconds)
        return files, elapsed
