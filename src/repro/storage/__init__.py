"""Storage substrate: media, disk pools, robotic tape, HSM, catalog, archive."""

from repro.storage.archive import AgingReport, LongTermArchive, MigrationReport
from repro.storage.catalog import CatalogEntry, FileCatalog, Replica
from repro.storage.disk import DiskPool
from repro.storage.hsm import HierarchicalStore, HsmStats
from repro.storage.media import (
    ATA_DISK_2005,
    LTO3_TAPE,
    LTO5_TAPE,
    RAID_SHELF_2005,
    USB_DISK_2005,
    MediaType,
    Medium,
    StoredFile,
    checksum_for,
)
from repro.storage.recall import RecallDrainReport, RecallQueue
from repro.storage.tape import RoboticTapeLibrary, TapeStats

__all__ = [
    "AgingReport",
    "LongTermArchive",
    "MigrationReport",
    "CatalogEntry",
    "FileCatalog",
    "Replica",
    "DiskPool",
    "HierarchicalStore",
    "HsmStats",
    "ATA_DISK_2005",
    "LTO3_TAPE",
    "LTO5_TAPE",
    "RAID_SHELF_2005",
    "USB_DISK_2005",
    "MediaType",
    "Medium",
    "StoredFile",
    "checksum_for",
    "RecallDrainReport",
    "RecallQueue",
    "RoboticTapeLibrary",
    "TapeStats",
]
