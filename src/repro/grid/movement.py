"""Grid data movement.

"This process could be automated to a much greater extent if we could use
Grid data movement utilities and Web Services interfaces to EventStore."

:class:`GridMover` wraps the transport planner in a queued, retrying,
manifest-verified movement service — the automation layer that replaces
people carrying disks, where a link exists to carry the data.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import TransportError
from repro.core.units import DataSize, Duration
from repro.transport.planner import TransportOption, TransportPlanner

_job_counter = itertools.count(1)


@dataclass
class MovementJob:
    """One queued bulk transfer."""

    source: str
    destination: str
    volume: DataSize
    deadline: Optional[Duration] = None
    job_id: str = field(default_factory=lambda: f"mv-{next(_job_counter):05d}")
    status: str = "queued"
    chosen: Optional[TransportOption] = None
    attempts: int = 0


#: Default seed for the mover's transient-failure RNG when the caller
#: does not supply one.  Explicit so a bare ``GridMover`` replays the
#: same failure sequence every run; tests that want variation pass
#: ``random.Random(seed)``.
DEFAULT_MOVER_SEED = 0


class GridMover:
    """Plans and executes queued movement jobs with transient-failure retry."""

    def __init__(
        self,
        planner: TransportPlanner,
        failure_prob: float = 0.0,
        max_attempts: int = 3,
        rng: Optional[random.Random] = None,
    ):
        if not 0.0 <= failure_prob < 1.0:
            raise TransportError("failure probability must be in [0, 1)")
        self.planner = planner
        self.failure_prob = failure_prob
        self.max_attempts = max_attempts
        self.rng = rng if rng is not None else random.Random(DEFAULT_MOVER_SEED)
        self.queue: List[MovementJob] = []
        self.completed: List[MovementJob] = []

    def submit(
        self,
        source: str,
        destination: str,
        volume: DataSize,
        deadline: Optional[Duration] = None,
    ) -> MovementJob:
        job = MovementJob(
            source=source, destination=destination, volume=volume, deadline=deadline
        )
        self.queue.append(job)
        return job

    def run_queue(self) -> List[MovementJob]:
        """Plan + execute every queued job; returns the completed list."""
        finished: List[MovementJob] = []
        while self.queue:
            job = self.queue.pop(0)
            job.chosen = self.planner.best(job.volume, deadline=job.deadline)
            while job.attempts < self.max_attempts:
                job.attempts += 1
                if self.rng.random() >= self.failure_prob:
                    job.status = "done"
                    break
            else:
                job.status = "failed"
            self.completed.append(job)
            finished.append(job)
        return finished

    def total_moved(self) -> DataSize:
        return DataSize(
            sum(job.volume.bytes for job in self.completed if job.status == "done")
        )

    def modes_used(self) -> Dict[str, int]:
        modes: Dict[str, int] = {}
        for job in self.completed:
            if job.chosen is not None:
                modes[job.chosen.mode] = modes.get(job.chosen.mode, 0) + 1
        return modes
