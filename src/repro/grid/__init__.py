"""Section-5 'next steps': service registry, grid data movement, federation."""

from repro.grid.federation import DataResource, Federation, tabular_resource
from repro.grid.movement import GridMover, MovementJob
from repro.grid.services import GridError, ServiceEndpoint, ServiceRegistry

__all__ = [
    "DataResource",
    "Federation",
    "tabular_resource",
    "GridMover",
    "MovementJob",
    "GridError",
    "ServiceEndpoint",
    "ServiceRegistry",
]
