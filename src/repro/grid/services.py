"""Service registry: the Web-Services layer the paper says to grow next.

"The logical next step for all projects is to extend the functionality of
their dissemination Web Services to enable full access to data and
analysis functionality.  These Web Services can then be integrated with
Grid technology."

A :class:`ServiceRegistry` holds named, versioned service endpoints (plain
Python callables standing in for SOAP/WSDL endpoints), with per-call
accounting so dissemination load can be studied.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import ReproError


class GridError(ReproError):
    """Service registry / federation failure."""


@dataclass
class ServiceEndpoint:
    """One published operation of one project's service."""

    project: str
    operation: str
    handler: Callable[..., Any]
    version: str = "1.0"
    description: str = ""
    calls: int = 0
    total_seconds: float = 0.0

    @property
    def qualified_name(self) -> str:
        return f"{self.project}.{self.operation}"


class ServiceRegistry:
    """Discovery + invocation for project services."""

    def __init__(self) -> None:
        self._endpoints: Dict[str, ServiceEndpoint] = {}

    def publish(
        self,
        project: str,
        operation: str,
        handler: Callable[..., Any],
        version: str = "1.0",
        description: str = "",
    ) -> ServiceEndpoint:
        endpoint = ServiceEndpoint(
            project=project,
            operation=operation,
            handler=handler,
            version=version,
            description=description,
        )
        if endpoint.qualified_name in self._endpoints:
            raise GridError(f"service {endpoint.qualified_name!r} already published")
        self._endpoints[endpoint.qualified_name] = endpoint
        return endpoint

    def discover(self, project: Optional[str] = None) -> List[ServiceEndpoint]:
        endpoints = sorted(self._endpoints.values(), key=lambda e: e.qualified_name)
        if project is None:
            return endpoints
        return [endpoint for endpoint in endpoints if endpoint.project == project]

    def call(self, qualified_name: str, *args: Any, **kwargs: Any) -> Any:
        endpoint = self._endpoints.get(qualified_name)
        if endpoint is None:
            raise GridError(f"no service {qualified_name!r}")
        start = time.perf_counter()  # repro: noqa[RPR002] operational endpoint timing
        try:
            return endpoint.handler(*args, **kwargs)
        finally:
            endpoint.calls += 1
            endpoint.total_seconds += time.perf_counter() - start  # repro: noqa[RPR002]

    def usage(self) -> Dict[str, int]:
        return {name: endpoint.calls for name, endpoint in sorted(self._endpoints.items())}
