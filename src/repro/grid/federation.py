"""NVO-style federation.

"Arecibo is in the process of contributing its data to the National
Virtual Observatory, federating their data with other data resources from
the Astronomy community.  This will enable queries which span different
datasets from different contributors."

A :class:`Federation` registers named data resources, each exposing a
common tabular query interface (column names + row dicts), and answers
cross-resource queries — including the canonical NVO use case implemented
here: positional/parameter cross-matching between two catalogs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.grid.services import GridError

# A resource query function: (filters) -> rows.
QueryFn = Callable[[Dict[str, Any]], List[Dict[str, Any]]]


@dataclass
class DataResource:
    """One federated catalog/archive."""

    name: str
    columns: Tuple[str, ...]
    query_fn: QueryFn
    description: str = ""

    def query(self, **filters: Any) -> List[Dict[str, Any]]:
        unknown = set(filters) - set(self.columns)
        if unknown:
            raise GridError(f"resource {self.name!r} has no columns {sorted(unknown)}")
        return self.query_fn(filters)


def tabular_resource(
    name: str,
    rows: Sequence[Dict[str, Any]],
    description: str = "",
) -> DataResource:
    """Wrap a list of row dicts as a resource with equality filtering."""
    if not rows:
        raise GridError(f"resource {name!r} needs at least one row")
    columns = tuple(sorted(rows[0]))
    for row in rows:
        if tuple(sorted(row)) != columns:
            raise GridError(f"resource {name!r}: inconsistent row columns")

    def query_fn(filters: Dict[str, Any]) -> List[Dict[str, Any]]:
        return [
            dict(row)
            for row in rows
            if all(row[key] == value for key, value in filters.items())
        ]

    return DataResource(
        name=name, columns=columns, query_fn=query_fn, description=description
    )


class Federation:
    """Registry + cross-resource query over data resources."""

    def __init__(self) -> None:
        self._resources: Dict[str, DataResource] = {}

    def contribute(self, resource: DataResource) -> None:
        if resource.name in self._resources:
            raise GridError(f"resource {resource.name!r} already contributed")
        self._resources[resource.name] = resource

    def resources(self) -> List[str]:
        return sorted(self._resources)

    def resource(self, name: str) -> DataResource:
        try:
            return self._resources[name]
        except KeyError:
            raise GridError(f"no federated resource {name!r}") from None

    def query(self, resource_name: str, **filters: Any) -> List[Dict[str, Any]]:
        return self.resource(resource_name).query(**filters)

    def cross_match(
        self,
        left_name: str,
        right_name: str,
        on: str,
        tolerance: float = 0.0,
    ) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
        """Join two resources on a numeric column within a tolerance.

        The astronomer's workflow: match pulsar-candidate positions (or
        periods) from the Arecibo catalog against another survey's.
        """
        left = self.resource(left_name)
        right = self.resource(right_name)
        for resource in (left, right):
            if on not in resource.columns:
                raise GridError(f"resource {resource.name!r} has no column {on!r}")
        left_rows = left.query()
        right_rows = sorted(right.query(), key=lambda row: float(row[on]))
        right_keys = [float(row[on]) for row in right_rows]
        matches: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
        import bisect

        for row in left_rows:
            value = float(row[on])
            low = bisect.bisect_left(right_keys, value - tolerance)
            high = bisect.bisect_right(right_keys, value + tolerance)
            for index in range(low, high):
                matches.append((row, right_rows[index]))
        return matches
