"""Transport planning: network vs. physical shipment.

The paper observes that "the currently available best solutions are very
different in nature, mostly determined by bandwidth considerations and
cost: physical disk transfer vs. a dedicated link to Internet2".  The
planner makes that determination explicit: given a volume, candidate links,
and a shipping lane, it ranks the options by completion time (or cost) and
computes the crossover bandwidth above which the network wins — experiment
C1's headline number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.errors import TransportError
from repro.core.units import DataSize, Duration, Rate
from repro.transport.network import NetworkLink
from repro.transport.sneakernet import ShipmentSpec

# Cost constants for network options: amortized share of a dedicated link.
_LINK_COST_PER_MBPS_MONTH = 30.0


@dataclass(frozen=True)
class TransportOption:
    """One evaluated way of moving a volume."""

    mode: str  # "network" or "sneakernet"
    name: str
    elapsed: Duration
    effective_rate: Rate
    cost: float

    def summary(self) -> str:
        return (
            f"{self.mode:10s} {self.name:35s} {str(self.elapsed):>12s} "
            f"{self.effective_rate.gb_per_day:10.1f} GB/day  ${self.cost:,.0f}"
        )


def evaluate_network(volume: DataSize, link: NetworkLink) -> TransportOption:
    """Cost/time of saturating one link with this volume."""
    elapsed = link.transfer_time(volume)
    months = max(1.0, elapsed.days_ / 30.0)
    cost = _LINK_COST_PER_MBPS_MONTH * link.nominal.mbps * months
    return TransportOption(
        mode="network",
        name=link.name,
        elapsed=elapsed,
        effective_rate=Rate.per(volume, elapsed),
        cost=cost,
    )


def evaluate_sneakernet(volume: DataSize, spec: ShipmentSpec) -> TransportOption:
    """Cost/time of one physical shipment of this volume."""
    elapsed = spec.one_way_time(volume)
    media_count = spec.media_needed(volume)
    packages = math.ceil(media_count / spec.media_per_package)
    handling_hours = spec.handling_time(media_count).hours_
    cost = (
        spec.media_type.unit_cost * media_count
        + spec.shipping_cost_per_package * packages
        + 40.0 * handling_hours  # default personnel rate
    )
    return TransportOption(
        mode="sneakernet",
        name=spec.name,
        elapsed=elapsed,
        effective_rate=spec.effective_throughput(volume),
        cost=cost,
    )


class TransportPlanner:
    """Ranks transport options for a given volume."""

    def __init__(
        self,
        links: Sequence[NetworkLink] = (),
        lanes: Sequence[ShipmentSpec] = (),
    ):
        if not links and not lanes:
            raise TransportError("planner needs at least one transport option")
        self.links = list(links)
        self.lanes = list(lanes)

    def evaluate(self, volume: DataSize) -> List[TransportOption]:
        """All options, fastest first."""
        if volume.bytes <= 0:
            raise TransportError("cannot plan transport of an empty volume")
        options = [evaluate_network(volume, link) for link in self.links]
        options.extend(evaluate_sneakernet(volume, lane) for lane in self.lanes)
        return sorted(options, key=lambda option: option.elapsed.seconds)

    def fastest(self, volume: DataSize) -> TransportOption:
        return self.evaluate(volume)[0]

    def cheapest(self, volume: DataSize) -> TransportOption:
        return min(self.evaluate(volume), key=lambda option: option.cost)

    def best(self, volume: DataSize, deadline: Optional[Duration] = None) -> TransportOption:
        """Cheapest option meeting the deadline (fastest if none meets it)."""
        options = self.evaluate(volume)
        if deadline is not None:
            feasible = [opt for opt in options if opt.elapsed.seconds <= deadline.seconds]
            if feasible:
                return min(feasible, key=lambda option: option.cost)
        return options[0]


def crossover_bandwidth(
    volume: DataSize,
    spec: ShipmentSpec,
    efficiency: float = 0.8,
    tolerance_mbps: float = 0.1,
) -> Rate:
    """Nominal link bandwidth at which the network matches the sneakernet.

    Below the returned rate, shipping disks delivers the volume sooner;
    above it, the network wins.  Solved by bisection on nominal Mb/s.

    Raises :class:`TransportError` when no crossover exists in the
    searchable range: either the volume is so small that even a 0.01 Mb/s
    trickle beats the shipment's fixed transit time (the bracket has no
    lower end), or so large that not even a petabit link catches the truck.
    """
    target = spec.one_way_time(volume).seconds
    if target <= 0:
        raise TransportError("shipment time must be positive")

    def network_seconds(mbps: float) -> float:
        link = NetworkLink(name="probe", nominal=Rate.megabits_per_second(mbps),
                           efficiency=efficiency)
        return link.transfer_time(volume).seconds

    low, high = 0.01, 0.02
    if network_seconds(low) <= target:
        raise TransportError(
            f"no crossover above {low} Mb/s: even that link moves {volume} "
            f"faster than the {spec.name!r} shipment; volume too small for "
            "a meaningful sneakernet comparison"
        )
    while network_seconds(high) > target:
        high *= 2
        if high > 1e9:
            raise TransportError("no crossover below 1 Pb/s; shipment model degenerate")
    while high - low > tolerance_mbps:
        mid = (low + high) / 2
        if network_seconds(mid) > target:
            low = mid
        else:
            high = mid
    return Rate.megabits_per_second(high)
