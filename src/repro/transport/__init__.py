"""Transport substrate: network links/routes, sneakernet, integrity, planner."""

from repro.transport.integrity import (
    DeliveryReport,
    Manifest,
    ManifestEntry,
    damage_in_transit,
    verify_delivery,
)
from repro.transport.network import (
    ARECIBO_UPLINK,
    CAMPUS_LAN,
    INTERNET2_100,
    INTERNET2_500,
    TERAGRID,
    NetworkLink,
    Route,
    TransferRequest,
    TransferResult,
    route,
    simulate_shared_transfers,
)
from repro.transport.planner import (
    TransportOption,
    TransportPlanner,
    crossover_bandwidth,
    evaluate_network,
    evaluate_sneakernet,
)
from repro.transport.sneakernet import (
    ARECIBO_TO_CTC,
    ShipmentResult,
    ShipmentSpec,
    ShippingLane,
)

__all__ = [
    "DeliveryReport",
    "Manifest",
    "ManifestEntry",
    "damage_in_transit",
    "verify_delivery",
    "ARECIBO_UPLINK",
    "CAMPUS_LAN",
    "INTERNET2_100",
    "INTERNET2_500",
    "TERAGRID",
    "NetworkLink",
    "Route",
    "TransferRequest",
    "TransferResult",
    "route",
    "simulate_shared_transfers",
    "TransportOption",
    "TransportPlanner",
    "crossover_bandwidth",
    "evaluate_network",
    "evaluate_sneakernet",
    "ARECIBO_TO_CTC",
    "ShipmentResult",
    "ShipmentSpec",
    "ShippingLane",
]
