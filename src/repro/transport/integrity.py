"""Transfer integrity: manifests, verification, retransmission accounting.

"The main issues of data transport are: personnel requirements; assessment
and maintenance of data integrity; tracking and logging; ensuring no data
loss" — every shipment and bulk network transfer in this library travels
with a :class:`Manifest`, and arrival runs :func:`verify_delivery`, which
reports corrupt or missing items for retransmission.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.errors import IntegrityError
from repro.core.telemetry import Telemetry
from repro.core.units import DataSize
from repro.storage.media import StoredFile


@dataclass(frozen=True)
class ManifestEntry:
    name: str
    size_bytes: float
    checksum: str


@dataclass
class Manifest:
    """The packing list of one transfer: names, sizes, checksums."""

    shipment_id: str
    entries: List[ManifestEntry] = field(default_factory=list)

    @classmethod
    def for_files(cls, shipment_id: str, files: Iterable[StoredFile]) -> "Manifest":
        manifest = cls(shipment_id=shipment_id)
        for file in files:
            manifest.add(file)
        return manifest

    def add(self, file: StoredFile) -> None:
        if any(entry.name == file.name for entry in self.entries):
            raise IntegrityError(
                f"manifest {self.shipment_id}: duplicate entry {file.name!r}"
            )
        self.entries.append(
            ManifestEntry(name=file.name, size_bytes=file.size.bytes, checksum=file.checksum)
        )

    @property
    def total_size(self) -> DataSize:
        return DataSize(sum(entry.size_bytes for entry in self.entries))

    def __len__(self) -> int:
        return len(self.entries)

    def names(self) -> List[str]:
        return [entry.name for entry in self.entries]


@dataclass
class DeliveryReport:
    """Outcome of verifying a delivery against its manifest."""

    shipment_id: str
    delivered: List[str] = field(default_factory=list)
    corrupt: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    unexpected: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.corrupt or self.missing or self.unexpected)

    def needs_retransmission(self) -> List[str]:
        return sorted(set(self.corrupt) | set(self.missing))


def verify_delivery(
    manifest: Manifest,
    received: Sequence[StoredFile],
    telemetry: Optional[Telemetry] = None,
) -> DeliveryReport:
    """Compare received files against the manifest.

    A file is *corrupt* when present but its checksum disagrees with the
    manifest (or its own content no longer matches its recorded checksum),
    *missing* when listed but absent, and *unexpected* when delivered but
    never listed.  When ``telemetry`` is given, the verification outcome is
    published as an ``integrity.verify`` event (carriers like
    :class:`~repro.transport.sneakernet.ShippingLane` aggregate the tallies
    into their registries from the returned report).
    """
    report = DeliveryReport(shipment_id=manifest.shipment_id)
    by_name: Dict[str, StoredFile] = {}
    for file in received:
        if file.name in by_name:
            raise IntegrityError(f"duplicate delivery of {file.name!r}")
        by_name[file.name] = file
    listed = {entry.name: entry for entry in manifest.entries}

    for name, entry in listed.items():
        file = by_name.get(name)
        if file is None:
            report.missing.append(name)
        elif file.checksum != entry.checksum or not file.verify():
            report.corrupt.append(name)
        else:
            report.delivered.append(name)
    for name in by_name:
        if name not in listed:
            report.unexpected.append(name)
    for bucket in (report.delivered, report.corrupt, report.missing, report.unexpected):
        bucket.sort()
    if telemetry is not None:
        telemetry.emit(
            "integrity.verify",
            manifest.shipment_id,
            delivered=len(report.delivered),
            corrupt=len(report.corrupt),
            missing=len(report.missing),
            unexpected=len(report.unexpected),
            clean=report.clean,
        )
    return report


def damage_in_transit(
    files: Sequence[StoredFile],
    corruption_prob: float,
    loss_prob: float,
    rng: random.Random,
) -> List[StoredFile]:
    """Simulate transit damage: per-file corruption and loss.

    Returns the files that arrive (possibly corrupted in place).  Used by
    the sneakernet model and the fault-injection tests.
    """
    if not 0.0 <= corruption_prob <= 1.0 or not 0.0 <= loss_prob <= 1.0:
        raise IntegrityError("damage probabilities must be within [0, 1]")
    arrived: List[StoredFile] = []
    for file in files:
        if rng.random() < loss_prob:
            continue
        copy = StoredFile(
            name=file.name,
            size=file.size,
            checksum=file.checksum,
            content_tag=file.content_tag,
        )
        if rng.random() < corruption_prob:
            copy.corrupt()
        arrived.append(copy)
    return arrived
