"""Physical media shipment — the sneakernet.

"We therefore have developed a system based on transport of physical ATA
disks with raw data" (Arecibo) and "the simulation data are moved by
shipping physical USB disk drives to Cornell" (CLEO).  The model accounts
for everything the paper says makes this labour-intensive: copying data to
media, packing/labelling, courier transit, read-back verification on
arrival, and retransmission of damaged media.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import TransportError
from repro.core.faults import FaultInjector, delay_seconds
from repro.core.resources import CostLedger, PersonnelModel
from repro.core.telemetry import MetricsRegistry, Telemetry, get_telemetry
from repro.core.units import DataSize, Duration, Rate
from repro.storage.media import ATA_DISK_2005, MediaType, StoredFile, checksum_for
from repro.transport.integrity import (
    DeliveryReport,
    Manifest,
    damage_in_transit,
    verify_delivery,
)

_shipment_counter = itertools.count(1)

# Human handling per medium: label, log, pack on dispatch; unpack, log,
# shelve on arrival.
_HANDLING_MINUTES_PER_MEDIUM = 10.0
# Fixed per-shipment paperwork and courier drop-off/pick-up.
_HANDLING_MINUTES_PER_SHIPMENT = 45.0


@dataclass(frozen=True)
class ShipmentSpec:
    """Parameters of a recurring shipping lane."""

    name: str
    media_type: MediaType = ATA_DISK_2005
    transit_time: Duration = field(default_factory=lambda: Duration.days(3))
    copy_stations: int = 4
    shipping_cost_per_package: float = 120.0
    media_per_package: int = 10
    corruption_prob: float = 0.01
    loss_prob: float = 0.002

    def __post_init__(self) -> None:
        if self.copy_stations <= 0:
            raise TransportError("need at least one copy station")
        if self.media_per_package <= 0:
            raise TransportError("need at least one medium per package")
        # Fail fast on bad damage models: a lane with corruption_prob=1.2
        # used to sail through construction and only blow up (or silently
        # misbehave) inside damage_in_transit once files were in flight.
        if not 0.0 <= self.corruption_prob <= 1.0:
            raise TransportError(
                f"lane {self.name!r}: corruption_prob must be within [0, 1], "
                f"got {self.corruption_prob}"
            )
        if not 0.0 <= self.loss_prob <= 1.0:
            raise TransportError(
                f"lane {self.name!r}: loss_prob must be within [0, 1], "
                f"got {self.loss_prob}"
            )

    def media_needed(self, volume: DataSize) -> int:
        return max(1, math.ceil(volume.bytes / self.media_type.capacity.bytes))

    def copy_time(self, volume: DataSize) -> Duration:
        """Time to write the outgoing media, using all copy stations."""
        per_station = DataSize(volume.bytes / self.copy_stations)
        return per_station / self.media_type.write_rate

    def verify_time(self, volume: DataSize) -> Duration:
        """Read-back checksum pass on arrival, same parallelism."""
        per_station = DataSize(volume.bytes / self.copy_stations)
        return per_station / self.media_type.read_rate

    def handling_time(self, media_count: int) -> Duration:
        packages = math.ceil(media_count / self.media_per_package)
        return Duration.minutes(
            _HANDLING_MINUTES_PER_MEDIUM * media_count
            + _HANDLING_MINUTES_PER_SHIPMENT * packages
        )

    def one_way_time(self, volume: DataSize) -> Duration:
        """Dispatch-to-verified elapsed time for one shipment of ``volume``."""
        media_count = self.media_needed(volume)
        return (
            self.copy_time(volume)
            + self.handling_time(media_count)
            + self.transit_time
            + self.verify_time(volume)
        )

    def effective_throughput(self, volume: DataSize) -> Rate:
        """Volume over end-to-end elapsed time — the "bandwidth of a truck"."""
        return Rate.per(volume, self.one_way_time(volume))

    def pipelined_throughput(self, volume_per_shipment: DataSize) -> Rate:
        """Steady-state rate when shipments overlap (one dispatched per cycle).

        With shipments in flight continuously, throughput is bounded by the
        slowest serial resource — the copy stations — not by transit time.
        """
        cycle = self.copy_time(volume_per_shipment) + self.handling_time(
            self.media_needed(volume_per_shipment)
        )
        return Rate.per(volume_per_shipment, cycle)


@dataclass
class ShipmentResult:
    """Outcome of executing one shipment, including retransmissions."""

    shipment_id: str
    volume: DataSize
    media_used: int
    attempts: int
    elapsed: Duration
    personnel_time: Duration
    report: DeliveryReport
    cost: float


@dataclass
class LaneStats:
    """Lifetime operation counters for one lane (a registry snapshot view)."""

    shipments: int = 0
    attempts: int = 0
    media_shipped: int = 0
    media_retransmitted: int = 0
    bytes_shipped: float = 0.0
    files_delivered: int = 0
    files_corrupt: int = 0
    files_missing: int = 0
    personnel_time: Duration = field(default_factory=Duration.zero)

    @classmethod
    def from_registry(cls, metrics: MetricsRegistry) -> "LaneStats":
        return cls(
            shipments=int(metrics.value("lane.shipments")),
            attempts=int(metrics.value("lane.attempts")),
            media_shipped=int(metrics.value("lane.media_shipped")),
            media_retransmitted=int(metrics.value("lane.media_retransmitted")),
            bytes_shipped=metrics.value("lane.bytes_shipped"),
            files_delivered=int(metrics.value("lane.files_delivered")),
            files_corrupt=int(metrics.value("lane.files_corrupt")),
            files_missing=int(metrics.value("lane.files_missing")),
            personnel_time=Duration(metrics.value("lane.personnel_seconds")),
        )


#: Default seed for a lane's damage/transit RNG when the caller does not
#: supply one.  Explicit so a standalone lane replays the same damage
#: sequence every run; the pipelines pass ``random.Random(config.seed)``.
DEFAULT_LANE_SEED = 0


class ShippingLane:
    """A recurring physical-transport operation between two sites.

    Lifetime accounting is registry-backed: each lane owns a
    :class:`~repro.core.telemetry.MetricsRegistry` and publishes
    ``transfer.start``/``transfer.finish`` events per shipment; the
    :attr:`stats` property is a :class:`LaneStats` snapshot over it.
    """

    def __init__(
        self,
        spec: ShipmentSpec,
        personnel: Optional[PersonnelModel] = None,
        rng: Optional[random.Random] = None,
        telemetry: Optional[Telemetry] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.spec = spec
        self.personnel = personnel if personnel is not None else PersonnelModel()
        self.rng = rng if rng is not None else random.Random(DEFAULT_LANE_SEED)
        self.ledger = CostLedger()
        self.metrics = MetricsRegistry()
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        #: Armed fault injector shared with the rest of the run (or None).
        #: ``ship`` consults it once per dispatch attempt under scope
        #: ``"lane"``, target = the lane name: ``"crash"`` aborts the
        #: shipment before anything moves (a lost courier, retried at the
        #: stage level), ``"delay"`` stretches transit, and ``"corrupt"``/
        #: ``"drop"`` damage the leading media of the attempt — caught by
        #: manifest verification and retransmitted like organic damage.
        self.faults = faults

    @property
    def stats(self) -> LaneStats:
        """Lifetime shipment counters, read from the metrics registry."""
        return LaneStats.from_registry(self.metrics)

    def _files_for(self, shipment_id: str, volume: DataSize) -> List[StoredFile]:
        """Split a volume across media-sized files for manifest purposes."""
        media_count = self.spec.media_needed(volume)
        per_medium = DataSize(volume.bytes / media_count)
        files = []
        for index in range(media_count):
            name = f"{shipment_id}-disk{index:03d}"
            files.append(
                StoredFile(name=name, size=per_medium, checksum=checksum_for(name, per_medium))
            )
        return files

    def ship(self, volume: DataSize, max_attempts: int = 4) -> ShipmentResult:
        """Execute a shipment, retransmitting damaged/lost media as needed."""
        if volume.bytes <= 0:
            raise TransportError("cannot ship an empty volume")
        # Consult the injector before anything moves or any counter bumps,
        # so a "crash" fault (lost courier, failed pickup) leaves no
        # partial state behind for a stage-level retry to trip over.
        injected = (
            self.faults.check("lane", self.spec.name) if self.faults is not None else []
        )
        injected_stall = Duration(delay_seconds(injected))
        shipment_id = f"ship-{next(_shipment_counter):05d}"
        outgoing = self._files_for(shipment_id, volume)
        manifest = Manifest.for_files(shipment_id, outgoing)
        media_count = len(outgoing)
        self._telemetry.emit(
            "transfer.start",
            shipment_id,
            lane=self.spec.name,
            bytes=volume.bytes,
            media=media_count,
            mode="sneakernet",
        )

        elapsed = Duration.zero()
        personnel_time = Duration.zero()
        cost = 0.0
        pending = list(outgoing)
        received: List[StoredFile] = []
        attempts = 0
        report = DeliveryReport(shipment_id=shipment_id)

        while pending:
            attempts += 1
            if attempts > max_attempts:
                raise TransportError(
                    f"shipment {shipment_id}: {len(pending)} media still bad "
                    f"after {max_attempts} attempts"
                )
            self.metrics.counter("lane.attempts").inc()
            self.metrics.counter("lane.media_shipped").inc(len(pending))
            if attempts > 1:
                self.metrics.counter("lane.media_retransmitted").inc(len(pending))
            batch_volume = DataSize(sum(file.size.bytes for file in pending))
            self.metrics.counter("lane.bytes_shipped").inc(batch_volume.bytes)
            handling = self.spec.handling_time(len(pending))
            elapsed += (
                self.spec.copy_time(batch_volume)
                + handling
                + self.spec.transit_time
                + self.spec.verify_time(batch_volume)
            )
            personnel_time += handling
            packages = math.ceil(len(pending) / self.spec.media_per_package)
            cost += self.spec.shipping_cost_per_package * packages

            arrived = damage_in_transit(
                pending, self.spec.corruption_prob, self.spec.loss_prob, self.rng
            )
            if attempts == 1 and injected:
                elapsed += injected_stall
                for record in injected:
                    count = max(1, int(record.param)) if record.param else 1
                    if record.kind == "corrupt":
                        for file in arrived[:count]:
                            file.corrupt()
                    elif record.kind == "drop":
                        del arrived[:count]
            good_names = {f.name for f in received}
            received.extend(f for f in arrived if f.verify() and f.name not in good_names)
            report = verify_delivery(manifest, received, telemetry=self._telemetry)
            self.metrics.counter("lane.files_corrupt").inc(len(report.corrupt))
            self.metrics.counter("lane.files_missing").inc(len(report.missing))
            pending = [file for file in outgoing if file.name in report.needs_retransmission()]

        self.metrics.counter("lane.shipments").inc()
        self.metrics.counter("lane.files_delivered").inc(len(report.delivered))
        self.metrics.gauge("lane.personnel_seconds").add(personnel_time.seconds)
        self._telemetry.emit(
            "transfer.finish",
            shipment_id,
            lane=self.spec.name,
            bytes=volume.bytes,
            media=media_count,
            attempts=attempts,
            elapsed_s=elapsed.seconds,
            clean=report.clean,
            mode="sneakernet",
        )
        personnel_cost = self.personnel.cost(personnel_time)
        cost += personnel_cost
        cost += self.spec.media_type.unit_cost * media_count  # media pool amortization
        self.ledger.charge("shipping", cost - personnel_cost, shipment_id)
        self.ledger.charge("personnel", personnel_cost, shipment_id)
        return ShipmentResult(
            shipment_id=shipment_id,
            volume=volume,
            media_used=media_count,
            attempts=attempts,
            elapsed=elapsed,
            personnel_time=personnel_time,
            report=report,
            cost=cost,
        )


# Reference lanes from the paper.
ARECIBO_TO_CTC = ShipmentSpec(
    name="Arecibo -> CTC (ATA disks)",
    media_type=ATA_DISK_2005,
    transit_time=Duration.days(3),
    copy_stations=4,
)
