"""Network links, routes, and fair-share transfer simulation.

Models the connectivity the paper discusses: Arecibo's thin uplink ("for
the foreseeable future, network transport of raw data is infeasible"), the
WebLab's dedicated 100 Mb/s Internet2 connection ("which can easily be
upgraded to 500 Mb/sec"), and the TeraGrid.  Links have a protocol
efficiency factor (TCP never delivers nominal line rate) and can be shared,
in which case concurrent transfers split capacity processor-sharing style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import TransportError
from repro.core.telemetry import Telemetry
from repro.core.units import DataSize, Duration, Rate


@dataclass(frozen=True)
class NetworkLink:
    """One hop with a nominal line rate and a protocol efficiency."""

    name: str
    nominal: Rate
    latency: Duration = field(default_factory=Duration.zero)
    efficiency: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise TransportError(f"link {self.name!r}: efficiency must be in (0, 1]")
        if self.nominal.bytes_per_second <= 0:
            raise TransportError(f"link {self.name!r}: nominal rate must be positive")

    @property
    def effective(self) -> Rate:
        """Achievable application-level throughput."""
        return self.nominal * self.efficiency

    def transfer_time(self, size: DataSize) -> Duration:
        return self.latency + size / self.effective

    def daily_volume(self) -> DataSize:
        """How much one day of saturation moves (the 250 GB/day arithmetic)."""
        return self.effective * Duration.days(1)


@dataclass(frozen=True)
class Route:
    """A multi-hop path; throughput is the bottleneck, latency accumulates."""

    name: str
    links: Tuple[NetworkLink, ...]

    def __post_init__(self) -> None:
        if not self.links:
            raise TransportError(f"route {self.name!r} needs at least one link")

    @property
    def bottleneck(self) -> NetworkLink:
        return min(self.links, key=lambda link: link.effective.bytes_per_second)

    @property
    def effective(self) -> Rate:
        return self.bottleneck.effective

    @property
    def latency(self) -> Duration:
        return Duration(sum(link.latency.seconds for link in self.links))

    def transfer_time(self, size: DataSize) -> Duration:
        return self.latency + size / self.effective


def route(name: str, *links: NetworkLink) -> Route:
    return Route(name=name, links=tuple(links))


# -- reference links ---------------------------------------------------------
ARECIBO_UPLINK = NetworkLink(
    name="Arecibo uplink",
    # The observatory's shared connection to the mainland, mid-2000s.
    nominal=Rate.megabits_per_second(10),
    latency=Duration.from_seconds(0.08),
    efficiency=0.5,
)

INTERNET2_100 = NetworkLink(
    name="Internet2 dedicated 100 Mb/s",
    nominal=Rate.megabits_per_second(100),
    latency=Duration.from_seconds(0.07),
    efficiency=0.8,
)

INTERNET2_500 = NetworkLink(
    name="Internet2 dedicated 500 Mb/s",
    nominal=Rate.megabits_per_second(500),
    latency=Duration.from_seconds(0.07),
    efficiency=0.8,
)

TERAGRID = NetworkLink(
    name="TeraGrid 10 Gb/s",
    nominal=Rate.gigabits_per_second(10),
    latency=Duration.from_seconds(0.06),
    efficiency=0.7,
)

CAMPUS_LAN = NetworkLink(
    name="campus LAN 1 Gb/s",
    nominal=Rate.gigabits_per_second(1),
    latency=Duration.from_seconds(0.001),
    efficiency=0.9,
)


# -- fair-share transfer simulation -------------------------------------------
@dataclass
class TransferRequest:
    """One transfer submitted to a shared link."""

    name: str
    size: DataSize
    start: Duration = field(default_factory=Duration.zero)


@dataclass
class TransferResult:
    name: str
    start: Duration
    finish: Duration

    @property
    def elapsed(self) -> Duration:
        return Duration(self.finish.seconds - self.start.seconds)


def simulate_shared_transfers(
    link: NetworkLink,
    requests: Sequence[TransferRequest],
    telemetry: Optional[Telemetry] = None,
) -> List[TransferResult]:
    """Processor-sharing simulation of concurrent transfers on one link.

    Active transfers split the link's effective rate equally.  This is what
    makes the Arecibo uplink argument quantitative: it is not just slow, it
    is *shared* with observatory operations, so bulk raw-data transfers
    degrade everything else and stretch unboundedly.

    When ``telemetry`` is given, each transfer publishes paired
    ``transfer.start``/``transfer.finish`` events once the simulation
    completes (ordered by request submission / completion, with the
    simulated start/finish offsets carried as attributes).
    """
    if not requests:
        return []
    capacity = link.effective.bytes_per_second
    remaining: Dict[str, float] = {}
    started: Dict[str, float] = {}
    results: List[TransferResult] = []
    arrivals = sorted(requests, key=lambda r: r.start.seconds)
    if len({r.name for r in arrivals}) != len(arrivals):
        raise TransportError("transfer request names must be unique")
    next_arrival = 0
    now = arrivals[0].start.seconds

    while next_arrival < len(arrivals) or remaining:
        # Admit all arrivals at or before now.
        while next_arrival < len(arrivals) and arrivals[next_arrival].start.seconds <= now:
            request = arrivals[next_arrival]
            remaining[request.name] = request.size.bytes
            started[request.name] = request.start.seconds
            next_arrival += 1
        if not remaining:
            now = arrivals[next_arrival].start.seconds
            continue
        per_flow = capacity / len(remaining)
        # Time until the first of: a flow finishes, or a new arrival.
        to_finish = min(remaining.values()) / per_flow
        horizon = now + to_finish
        if next_arrival < len(arrivals):
            horizon = min(horizon, arrivals[next_arrival].start.seconds)
        delta = horizon - now
        for name in list(remaining):
            remaining[name] -= per_flow * delta
            if remaining[name] <= 1e-6:
                results.append(
                    TransferResult(
                        name=name,
                        start=Duration(started[name]),
                        finish=Duration(horizon + link.latency.seconds),
                    )
                )
                del remaining[name]
        now = horizon

    results.sort(key=lambda result: result.finish.seconds)
    if telemetry is not None:
        sizes = {request.name: request.size.bytes for request in requests}
        for request in arrivals:
            telemetry.emit(
                "transfer.start",
                request.name,
                link=link.name,
                bytes=request.size.bytes,
                start_s=request.start.seconds,
                mode="network",
            )
        for result in results:
            telemetry.emit(
                "transfer.finish",
                result.name,
                link=link.name,
                bytes=sizes[result.name],
                finish_s=result.finish.seconds,
                elapsed_s=result.elapsed.seconds,
                mode="network",
            )
    return results
