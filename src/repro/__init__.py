"""repro: a full reproduction of "Three Case Studies of Large-Scale Data
Flows" (ICDE 2006 Workshop, Cornell).

Subpackages
-----------
core
    Unifying dataflow framework: unit-safe quantities, dataflow DAGs with an
    accounting executor, provenance stamps and lineage, version/grade/
    snapshot machinery, a discrete-event simulator, and cost models.
storage
    Storage hierarchy substrate: media models, robotic tape library, disk
    pools, a hierarchical storage manager, and a long-term archive with
    media-generation migration.
transport
    Data movement substrate: network links/routes, physical disk shipment
    ("sneakernet"), integrity manifests, and a transport planner.
db
    Thin backend-independent relational layer over the stdlib sqlite3.
eventstore
    The CLEO EventStore: runs/events/ASUs, a binary event-file format with
    provenance extensions, grades and timestamp snapshots, personal/group/
    collaboration scales, merge-based ingest, and hot/warm/cold partitioning.
cleo
    The CLEO physics pipeline: synthetic collision runs, track
    reconstruction, post-reconstruction, Monte Carlo, and analysis jobs.
arecibo
    The Arecibo ALFA pulsar survey: synthetic 7-beam dynamic spectra,
    dedispersion, Fourier periodicity search with harmonic summing,
    folding, acceleration search, single-pulse search, RFI excision,
    candidate sifting, and cross-pointing meta-analysis.
weblab
    The Cornell WebLab: synthetic evolving web, ARC/DAT formats, the
    preload subsystem, metadata database, retro browser, subset extraction
    and stratified sampling, web-graph analytics, burst detection, and a
    full-text index.
grid
    Section-5 "next steps": service registry, grid data movement, and
    NVO-style federation.
"""

__version__ = "1.0.0"
