"""Tiered read cache for the access-facing services.

The CDF data-processing model (PAPERS.md) carries a collider's analysis
load on read-side caching; this module is the reproduction's version of
that layer, shared by every access surface the workload engine hammers:
WebLab retro browsing and subset extraction, EventStore grade/file
resolution, and (through the recall queue) archive reads.

One :class:`ReadCache` is:

* an **LRU** over at most ``capacity`` entries, guarded by one lock so a
  facade shared across reader threads stays consistent;
* **frequency-admitted** — on a miss with a full cache, the new key is
  admitted only if it has been asked for at least as often as the LRU
  victim (a TinyLFU-style filter: one-hit wonders cannot wash out the
  Zipf head that makes caching pay);
* a **negative cache** — a loader returning ``None`` ("no capture at or
  before that date", "no file for that run/version/kind") is remembered
  too, so repeated misses for absent objects never re-run the query;
* **request-coalescing** — concurrent loads of the same key collapse to
  one loader call, with the other threads waiting on the winner;
* optionally **tiered over** a content-addressed
  :class:`~repro.core.cachestore.DiskCacheStore` — entries whose key is a
  content address (page blobs by hash) read through to the shared disk
  store and are promoted on hit, so a process restart or a sibling
  process starts warm.

Accounting: ``readcache.hits/misses/negative_hits/admitted/
admission_rejected/evictions/disk_hits/disk_writes`` counters on the
cache's registry, and (when a telemetry bus is attached)
``readcache.hit|miss|admit|evict`` events so a replayed trace's cache
behaviour is part of the canonical log.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.cachestore import DiskCacheStore
from repro.core.errors import CacheError
from repro.core.telemetry import MetricsRegistry, Telemetry


class _Negative:
    """Marker stored for cached absence (distinct from any real value)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return "<negative>"


_NEGATIVE = _Negative()

#: Frequency sketch aging: when the sketch's total count reaches
#: ``capacity * _SKETCH_DECAY_FACTOR``, every count is halved (and zeros
#: dropped), so popularity is recency-weighted rather than eternal.
_SKETCH_DECAY_FACTOR = 10


@dataclass
class ReadCacheStats:
    """Snapshot of a cache's counters (a registry view, like HsmStats)."""

    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    admitted: int = 0
    admission_rejected: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    coalesced: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.negative_hits + self.misses
        return (self.hits + self.negative_hits) / total if total else 0.0

    @classmethod
    def from_registry(cls, metrics: MetricsRegistry) -> "ReadCacheStats":
        return cls(
            hits=int(metrics.value("readcache.hits")),
            misses=int(metrics.value("readcache.misses")),
            negative_hits=int(metrics.value("readcache.negative_hits")),
            admitted=int(metrics.value("readcache.admitted")),
            admission_rejected=int(metrics.value("readcache.admission_rejected")),
            evictions=int(metrics.value("readcache.evictions")),
            disk_hits=int(metrics.value("readcache.disk_hits")),
            disk_writes=int(metrics.value("readcache.disk_writes")),
            coalesced=int(metrics.value("readcache.coalesced")),
        )


class ReadCache:
    """LRU + frequency admission + negative caching + optional disk tier.

    Parameters
    ----------
    capacity:
        Maximum in-memory entries.
    name:
        Event name used on the telemetry bus (one bus can carry several
        caches' streams apart).
    admission:
        With ``False``, plain LRU: every miss is admitted.  The C21
        benchmark compares both, after the CDF model's observation that
        admission filters are what keep scan traffic from flushing the
        hot set.
    disk:
        Optional shared :class:`DiskCacheStore` second tier.  Only loads
        that pass a ``content_key`` participate (content-addressed
        entries are immutable by construction, so cross-process sharing
        needs no invalidation protocol).
    telemetry:
        When given, the cache emits ``readcache.*`` events; counters are
        kept on the cache's own registry either way.
    """

    def __init__(
        self,
        capacity: int = 1024,
        name: str = "readcache",
        admission: bool = True,
        disk: Optional[DiskCacheStore] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if capacity < 1:
            raise CacheError(f"read cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.admission = admission
        self.disk = disk
        self.metrics = MetricsRegistry()
        self._telemetry = telemetry
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._freq: Dict[str, int] = {}
        self._freq_total = 0
        self._inflight: Dict[str, threading.Event] = {}
        # The hit path runs per request on the hot set; bind its counters
        # once instead of paying a registry lookup per access.
        self._hits = self.metrics.counter("readcache.hits")
        self._misses = self.metrics.counter("readcache.misses")
        self._negative_hits = self.metrics.counter("readcache.negative_hits")

    # -- introspection -----------------------------------------------------
    @property
    def stats(self) -> ReadCacheStats:
        return ReadCacheStats.from_registry(self.metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> List[str]:
        """Cached keys, LRU-first (the next victim leads)."""
        with self._lock:
            return list(self._entries)

    # -- internals ---------------------------------------------------------
    def _emit(self, kind: str, key: str, **attrs: object) -> None:
        if self._telemetry is not None:
            self._telemetry.emit(kind, self.name, key=key, **attrs)

    def _count_access(self, key: str) -> None:
        """Bump the popularity sketch, aging it when it saturates."""
        self._freq[key] = self._freq.get(key, 0) + 1
        self._freq_total += 1
        if self._freq_total >= self.capacity * _SKETCH_DECAY_FACTOR:
            aged = {k: c // 2 for k, c in self._freq.items() if c // 2 > 0}
            self._freq = aged
            self._freq_total = sum(aged.values())

    def _admit(self, key: str, value: object) -> bool:
        """Insert under the admission policy; True when the entry landed."""
        if key in self._entries:
            self._entries[key] = value
            self._entries.move_to_end(key)
            return True
        if len(self._entries) >= self.capacity:
            victim = next(iter(self._entries))
            if self.admission and self._freq.get(key, 0) < self._freq.get(victim, 0):
                self.metrics.counter("readcache.admission_rejected").inc()
                return False
            self._entries.popitem(last=False)
            self.metrics.counter("readcache.evictions").inc()
            self._emit("readcache.evict", victim)
        self._entries[key] = value
        self.metrics.counter("readcache.admitted").inc()
        self._emit("readcache.admit", key)
        return True

    # -- the API -----------------------------------------------------------
    def get_or_load(
        self,
        key: str,
        loader: Callable[[], object],
        content_key: Optional[str] = None,
    ) -> object:
        """The value for ``key``, loading (once) on a miss.

        ``loader`` returning ``None`` is a *negative* result: it is
        cached like any other entry and served back as ``None``.
        ``content_key`` opts this entry into the disk tier (pass the
        content address; the entry must be immutable under that key).
        """
        while True:
            wait_for: Optional[threading.Event] = None
            with self._lock:
                if key in self._entries:
                    value = self._entries[key]
                    self._entries.move_to_end(key)
                    self._count_access(key)
                    if value is _NEGATIVE:
                        self._negative_hits.inc()
                        self._emit("readcache.hit", key, negative=True)
                        return None
                    self._hits.inc()
                    self._emit("readcache.hit", key)
                    return value
                holder = self._inflight.get(key)
                if holder is None:
                    self._inflight[key] = threading.Event()
                else:
                    wait_for = holder
            if wait_for is not None:
                # Coalesce: another thread is loading this key right now.
                self.metrics.counter("readcache.coalesced").inc()
                wait_for.wait()
                continue  # re-check the cache (the winner usually filled it)
            try:
                value = self._load(key, loader, content_key)
            finally:
                with self._lock:
                    self._inflight.pop(key).set()
            return value

    def _load(
        self,
        key: str,
        loader: Callable[[], object],
        content_key: Optional[str],
    ) -> object:
        """Miss path: disk tier first, then the loader; then admission."""
        with self._lock:
            self._count_access(key)
        self._misses.inc()
        self._emit("readcache.miss", key)
        value: object = None
        loaded = False
        if content_key is not None and self.disk is not None:
            from_disk = self.disk.read(content_key)
            if from_disk is not None:
                self.metrics.counter("readcache.disk_hits").inc()
                value = from_disk
                loaded = True
        if not loaded:
            value = loader()
            if (
                value is not None
                and content_key is not None
                and self.disk is not None
            ):
                if self.disk.write(content_key, value):
                    self.metrics.counter("readcache.disk_writes").inc()
        with self._lock:
            self._admit(key, _NEGATIVE if value is None else value)
        return value

    def peek(self, key: str) -> object:
        """The cached value (or None), without counters, LRU, or loading."""
        with self._lock:
            value = self._entries.get(key)
            return None if value is _NEGATIVE else value

    # -- invalidation ------------------------------------------------------
    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it was cached."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop every entry whose key starts with ``prefix``."""
        with self._lock:
            doomed = [key for key in self._entries if key.startswith(prefix)]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> int:
        """Drop everything (memory tier only; the disk tier is shared)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._freq.clear()
            self._freq_total = 0
            return dropped

    def __repr__(self) -> str:
        return (
            f"ReadCache({self.name!r}, capacity={self.capacity}, "
            f"entries={len(self)}, admission={self.admission}, "
            f"disk={'yes' if self.disk is not None else 'no'})"
        )


__all__ = ["ReadCache", "ReadCacheStats"]
