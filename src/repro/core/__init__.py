"""Core dataflow framework: units, datasets, DAGs, execution, provenance,
versioning, discrete-event simulation, and resource/cost models."""

from repro.core.dataflow import DataFlow, Edge, Stage
from repro.core.dataset import Dataset
from repro.core.engine import Engine, FlowReport, StageContext, StageReport
from repro.core.errors import (
    CapacityError,
    DataflowError,
    DatabaseError,
    EventStoreError,
    ExecutionError,
    IntegrityError,
    MergeConflictError,
    ProvenanceError,
    ReproError,
    SearchError,
    StorageError,
    TransportError,
    UnitError,
    VersioningError,
    WebLabError,
)
from repro.core.provenance import (
    ProcessingStep,
    ProvenanceRecord,
    ProvenanceStamp,
    ProvenanceStore,
)
from repro.core.resources import (
    DISK_COST_2005,
    RAID_COST_2005,
    TAPE_COST_2005,
    CostLedger,
    CpuPool,
    PersonnelModel,
    StorageCostModel,
)
from repro.core.simulation import EventLog, SimulationError, Simulator
from repro.core.units import DataSize, Duration, Rate
from repro.core.versioning import GradeHistory, GradeRegistry, SnapshotEntry, VersionId

__all__ = [
    "DataFlow",
    "Edge",
    "Stage",
    "Dataset",
    "Engine",
    "FlowReport",
    "StageContext",
    "StageReport",
    "CapacityError",
    "DataflowError",
    "DatabaseError",
    "EventStoreError",
    "ExecutionError",
    "IntegrityError",
    "MergeConflictError",
    "ProvenanceError",
    "ReproError",
    "SearchError",
    "StorageError",
    "TransportError",
    "UnitError",
    "VersioningError",
    "WebLabError",
    "ProcessingStep",
    "ProvenanceRecord",
    "ProvenanceStamp",
    "ProvenanceStore",
    "CostLedger",
    "CpuPool",
    "DISK_COST_2005",
    "PersonnelModel",
    "RAID_COST_2005",
    "StorageCostModel",
    "TAPE_COST_2005",
    "EventLog",
    "SimulationError",
    "Simulator",
    "DataSize",
    "Duration",
    "Rate",
    "GradeHistory",
    "GradeRegistry",
    "SnapshotEntry",
    "VersionId",
]
