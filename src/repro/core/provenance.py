"""Provenance tracking.

The paper's CLEO section describes the scheme we implement here verbatim:

    "we collect, as strings, all the software module names, their
    parameters, plus all the input file information and make an MD5 hash of
    the strings. [...] We can detect the majority of usage discrepancies by
    comparing the hashes. In the event of a discrepancy, the physicists can
    view the strings to see what has changed."

Two layers are provided:

* :class:`ProvenanceStamp` — the compact, file-embeddable summary (version
  strings accumulated per processing step plus an MD5 digest over all of
  them), exactly the scheme CLEO retrofitted at the data-format level.
* :class:`ProvenanceStore` — a queryable lineage graph of
  :class:`ProvenanceRecord` objects, the "metadata DB" alternative the paper
  says full ASU-granularity tracking would require.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ProvenanceError

_record_counter = itertools.count(1)


def _next_record_id() -> str:
    return f"prov-{next(_record_counter):06d}"


def _canonical_params(params: Mapping[str, object]) -> str:
    """Render parameters deterministically so hashes are reproducible."""
    return json.dumps({k: params[k] for k in sorted(params)}, sort_keys=True, default=str)


@dataclass(frozen=True)
class ProcessingStep:
    """One software module invocation in a provenance chain."""

    module: str
    version: str
    params: Tuple[Tuple[str, str], ...] = ()
    inputs: Tuple[str, ...] = ()

    @classmethod
    def create(
        cls,
        module: str,
        version: str,
        params: Optional[Mapping[str, object]] = None,
        inputs: Sequence[str] = (),
    ) -> "ProcessingStep":
        frozen_params = tuple(sorted((str(k), str(v)) for k, v in (params or {}).items()))
        return cls(module=module, version=version, params=frozen_params, inputs=tuple(inputs))

    def describe(self) -> str:
        parts = [f"{self.module}@{self.version}"]
        if self.params:
            parts.append("params{" + ",".join(f"{k}={v}" for k, v in self.params) + "}")
        if self.inputs:
            parts.append("inputs[" + ",".join(self.inputs) + "]")
        return " ".join(parts)


@dataclass(frozen=True)
class ProvenanceStamp:
    """File-embeddable provenance summary: step strings plus an MD5 digest.

    Stamps accumulate: each processing step appends its description to the
    history carried forward from its inputs, and the digest covers the whole
    history.  Comparing digests is the cheap discrepancy test the paper
    describes; comparing :attr:`history` strings is the diagnostic fallback.
    """

    history: Tuple[str, ...]
    digest: str

    @classmethod
    def initial(cls, step: ProcessingStep) -> "ProvenanceStamp":
        history = (step.describe(),)
        return cls(history=history, digest=cls._digest_of(history))

    @classmethod
    def empty(cls) -> "ProvenanceStamp":
        return cls(history=(), digest=cls._digest_of(()))

    @staticmethod
    def _digest_of(history: Sequence[str]) -> str:
        md5 = hashlib.md5()
        for line in history:
            md5.update(line.encode("utf-8"))
            md5.update(b"\n")
        return md5.hexdigest()

    def extend(self, step: ProcessingStep) -> "ProvenanceStamp":
        history = self.history + (step.describe(),)
        return ProvenanceStamp(history=history, digest=self._digest_of(history))

    @classmethod
    def merged(cls, stamps: Sequence["ProvenanceStamp"], step: ProcessingStep) -> "ProvenanceStamp":
        """Combine several input stamps through one processing step."""
        history: List[str] = []
        for stamp in stamps:
            history.extend(stamp.history)
        history.append(step.describe())
        frozen = tuple(history)
        return cls(history=frozen, digest=cls._digest_of(frozen))

    def matches(self, other: "ProvenanceStamp") -> bool:
        """The cheap test: identical digests mean consistent provenance."""
        return self.digest == other.digest

    def diff(self, other: "ProvenanceStamp") -> List[str]:
        """Human-readable explanation of a digest mismatch."""
        lines: List[str] = []
        ours, theirs = list(self.history), list(other.history)
        for index in range(max(len(ours), len(theirs))):
            left = ours[index] if index < len(ours) else "<absent>"
            right = theirs[index] if index < len(theirs) else "<absent>"
            if left != right:
                lines.append(f"step {index}: {left!r} != {right!r}")
        return lines

    @property
    def metadata_bytes(self) -> int:
        """Approximate storage footprint of this stamp (for cost studies)."""
        return sum(len(line.encode("utf-8")) + 1 for line in self.history) + len(self.digest)


@dataclass
class ProvenanceRecord:
    """A node in the lineage graph: one derivation of one artifact."""

    artifact: str
    step: ProcessingStep
    parent_ids: Tuple[str, ...] = ()
    record_id: str = field(default_factory=_next_record_id)
    stamp: ProvenanceStamp = field(default_factory=ProvenanceStamp.empty)


class ProvenanceStore:
    """In-memory lineage graph with ancestry queries.

    This plays the role of the "metadata DB" that fine-grained tracking
    would need.  Records are immutable once added; lineage is queried by
    record id.

    Record ids are allocated from a per-store counter, so a fresh store
    always numbers its records ``prov-000001``, ``prov-000002``, ... in
    allocation order — which is what lets a parallel engine run reproduce a
    sequential run's ids exactly (ids are reserved in topological order,
    then attached to records as stages complete).  Recording is guarded by
    a lock, so concurrently completing stages may register records safely.
    """

    def __init__(self) -> None:
        self._records: Dict[str, ProvenanceRecord] = {}
        self._by_artifact: Dict[str, List[str]] = {}
        self._lock = threading.RLock()
        self._counter = itertools.count(1)

    def __len__(self) -> int:
        return len(self._records)

    def reserve_id(self) -> str:
        """Allocate the next record id without creating a record yet.

        Callers that need deterministic ids under concurrent recording
        (the parallel engine) reserve ids up front in a deterministic
        order and pass them to :meth:`record` later.
        """
        with self._lock:
            return f"prov-{next(self._counter):06d}"

    def record(
        self,
        artifact: str,
        step: ProcessingStep,
        parents: Sequence[str] = (),
        record_id: Optional[str] = None,
    ) -> ProvenanceRecord:
        """Register a new derivation and return its record.

        The new record's stamp extends the stamps of its parents, so the
        file-level summary and the graph stay consistent by construction.
        ``record_id`` may be a previously :meth:`reserve_id`-d id; if
        omitted, the next id is allocated here.
        """
        with self._lock:
            if record_id is None:
                record_id = self.reserve_id()
            elif record_id in self._records:
                raise ProvenanceError(f"duplicate provenance record id {record_id!r}")
            parent_records = [self._get(parent_id) for parent_id in parents]
            if parent_records:
                stamp = ProvenanceStamp.merged([p.stamp for p in parent_records], step)
            else:
                stamp = ProvenanceStamp.initial(step)
            rec = ProvenanceRecord(
                artifact=artifact,
                step=step,
                parent_ids=tuple(parents),
                record_id=record_id,
                stamp=stamp,
            )
            self._records[rec.record_id] = rec
            self._by_artifact.setdefault(artifact, []).append(rec.record_id)
            return rec

    def _get(self, record_id: str) -> ProvenanceRecord:
        try:
            return self._records[record_id]
        except KeyError:
            raise ProvenanceError(f"unknown provenance record {record_id!r}") from None

    def get(self, record_id: str) -> ProvenanceRecord:
        return self._get(record_id)

    def digest_of(self, record_id: str) -> str:
        """The record's stamp digest — the content address the paper's
        "compare the hashes" test (and the stage cache) keys on."""
        return self._get(record_id).stamp.digest

    def records_for(self, artifact: str) -> List[ProvenanceRecord]:
        """All derivations recorded for an artifact name, oldest first."""
        return [self._records[rid] for rid in self._by_artifact.get(artifact, [])]

    def latest_for(self, artifact: str) -> ProvenanceRecord:
        records = self.records_for(artifact)
        if not records:
            raise ProvenanceError(f"no provenance recorded for artifact {artifact!r}")
        return records[-1]

    def ancestors(self, record_id: str) -> Iterator[ProvenanceRecord]:
        """Yield all transitive ancestors (each exactly once), parents first."""
        seen = set()
        stack = list(self._get(record_id).parent_ids)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            rec = self._get(current)
            yield rec
            stack.extend(rec.parent_ids)

    def lineage_depth(self, record_id: str) -> int:
        """Length of the longest ancestor chain above this record."""
        rec = self._get(record_id)
        if not rec.parent_ids:
            return 0
        return 1 + max(self.lineage_depth(pid) for pid in rec.parent_ids)

    def consistent(self, record_ids: Sequence[str]) -> bool:
        """Check a set of artifacts was produced by identical histories."""
        if not record_ids:
            return True
        first = self._get(record_ids[0]).stamp
        return all(self._get(rid).stamp.matches(first) for rid in record_ids[1:])
