"""Version identifiers, data grades, and timestamped snapshots.

This module implements the consistency machinery the paper attributes to the
CLEO EventStore, in a domain-neutral form reused by all three pipelines:

* :class:`VersionId` — identifiers like ``Recon_Feb13_04_P2``: the software
  release that produced the data, plus the date of the most recent change to
  software or inputs "that might affect the results".
* :class:`GradeHistory` — the evolution of a named data grade over time.  A
  consistent set of data is fully identified by a grade name plus a
  timestamp; resolution finds the most recent snapshot *prior* to the
  timestamp, with the paper's one deliberate exception: data appearing for
  the *first time* after the timestamp is still visible, so physicists can
  pick up newly taken runs without moving their analysis date.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, List, Mapping, Tuple, TypeVar

from repro.core.errors import VersioningError

_VERSION_RE = re.compile(r"^([A-Za-z][A-Za-z0-9]*)_(.+)$")

Key = TypeVar("Key", bound=Hashable)


@dataclass(frozen=True, order=True)
class VersionId:
    """A data version: processing kind + software release tag.

    ``VersionId("Recon", "Feb13_04_P2")`` renders as ``Recon_Feb13_04_P2``,
    matching the paper's example identifier.
    """

    kind: str
    release: str

    def __post_init__(self) -> None:
        if not self.kind or not self.kind[0].isalpha():
            raise VersioningError(f"invalid version kind: {self.kind!r}")
        if not self.release:
            raise VersioningError("version release must be non-empty")

    @classmethod
    def parse(cls, text: str) -> "VersionId":
        match = _VERSION_RE.match(text)
        if not match:
            raise VersioningError(f"cannot parse version identifier: {text!r}")
        return cls(kind=match.group(1), release=match.group(2))

    def __str__(self) -> str:
        return f"{self.kind}_{self.release}"


@dataclass(frozen=True)
class SnapshotEntry(Generic[Key]):
    """One grade-history event: at ``timestamp``, ``assignments`` changed."""

    timestamp: float
    assignments: Tuple[Tuple[Key, str], ...]

    def as_mapping(self) -> Dict[Key, str]:
        return dict(self.assignments)


class GradeHistory(Generic[Key]):
    """The recorded evolution of one data grade.

    Keys are domain units of version assignment (CLEO uses run ranges; the
    Arecibo candidate DB uses pointing ids; WebLab uses crawl ids).  Each
    :meth:`assign` call appends a snapshot entry; queries never mutate.
    """

    def __init__(self, grade: str):
        if not grade:
            raise VersioningError("grade name must be non-empty")
        self.grade = grade
        self._entries: List[SnapshotEntry[Key]] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[SnapshotEntry[Key]]:
        return list(self._entries)

    def assign(self, timestamp: float, assignments: Mapping[Key, str]) -> None:
        """Record that at ``timestamp`` these keys were (re)assigned versions.

        Timestamps must be non-decreasing: grade evolution is append-only,
        mirroring the administrative procedure performed by "the CLEO
        officers".
        """
        if not assignments:
            raise VersioningError("a snapshot entry must assign at least one key")
        if self._entries and timestamp < self._entries[-1].timestamp:
            raise VersioningError(
                f"grade {self.grade!r}: snapshot timestamps must be non-decreasing "
                f"({timestamp} < {self._entries[-1].timestamp})"
            )
        frozen = tuple(sorted(assignments.items(), key=lambda kv: repr(kv[0])))
        self._entries.append(SnapshotEntry(timestamp=timestamp, assignments=frozen))

    def resolve(self, timestamp: float, include_new_data: bool = True) -> Dict[Key, str]:
        """Resolve the consistent version set for an analysis timestamp.

        Applies the paper's two rules:

        1. Use the most recent assignment of each key at or before
           ``timestamp`` ("EventStore finds the most recent snapshot prior
           to the specified date, so the date specified is not limited to a
           set of magic values").
        2. If ``include_new_data``, keys whose *first ever* assignment is
           after ``timestamp`` are also included, at that first assignment
           ("Data added for the first time [...] will appear in the
           snapshot").  Keys that already existed before the timestamp are
           pinned at their as-of version — later reprocessings stay hidden.
        """
        resolved: Dict[Key, str] = {}
        first_seen: Dict[Key, Tuple[float, str]] = {}
        for entry in self._entries:
            for key, version in entry.assignments:
                if key not in first_seen:
                    first_seen[key] = (entry.timestamp, version)
                if entry.timestamp <= timestamp:
                    resolved[key] = version
        if include_new_data:
            for key, (first_time, first_version) in first_seen.items():
                if key not in resolved and first_time > timestamp:
                    resolved[key] = first_version
        return resolved

    def versions_of(self, key: Key) -> List[Tuple[float, str]]:
        """Full assignment history of one key, oldest first."""
        return [
            (entry.timestamp, version)
            for entry in self._entries
            for entry_key, version in entry.assignments
            if entry_key == key
        ]

    def latest(self) -> Dict[Key, str]:
        """Current (most recent) version of every key ever assigned."""
        if not self._entries:
            return {}
        return self.resolve(self._entries[-1].timestamp)


@dataclass
class GradeRegistry(Generic[Key]):
    """All grades of one store, addressed by name."""

    _grades: Dict[str, GradeHistory[Key]] = field(default_factory=dict)

    def grade(self, name: str) -> GradeHistory[Key]:
        """Get or create the history for a grade name."""
        if name not in self._grades:
            self._grades[name] = GradeHistory(name)
        return self._grades[name]

    def names(self) -> List[str]:
        return sorted(self._grades)

    def __contains__(self, name: str) -> bool:
        return name in self._grades
