"""Resource and cost models.

The paper's engineering decisions are ultimately cost arguments: disk
shipping beats Arecibo's thin network pipe; tape beats disk for a Petabyte
archive; "manpower requirements for migrating the data are significant".
This module provides the small set of cost primitives those arguments need,
with defaults calibrated to mid-2000s constants so the reproduced crossovers
land where the paper's did.  Every constant can be overridden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.units import DataSize, Duration, Rate


@dataclass(frozen=True)
class CpuPool:
    """A homogeneous pool of processors at one site."""

    site: str
    processors: int
    per_cpu_throughput: Rate = field(
        default_factory=lambda: Rate.megabytes_per_second(2.0)
    )

    def __post_init__(self) -> None:
        if self.processors <= 0:
            raise ValueError("CpuPool needs at least one processor")

    @property
    def aggregate_throughput(self) -> Rate:
        return self.per_cpu_throughput * self.processors

    def time_to_process(self, size: DataSize) -> Duration:
        """Wall-clock time for the pool to chew through ``size`` of input."""
        return size / self.aggregate_throughput

    def processors_to_keep_up(self, size: DataSize, window: Duration) -> int:
        """Smallest processor count that finishes ``size`` within ``window``."""
        per_cpu = self.per_cpu_throughput * window
        if per_cpu.bytes == 0:
            raise ValueError("per-CPU throughput is zero")
        needed = size.bytes / per_cpu.bytes
        return max(1, int(needed) + (0 if needed == int(needed) else 1))


@dataclass(frozen=True)
class PersonnelModel:
    """Human effort accounting (the paper's recurring hidden cost)."""

    hourly_cost: float = 40.0

    def cost(self, effort: Duration) -> float:
        return self.hourly_cost * effort.hours_


@dataclass(frozen=True)
class StorageCostModel:
    """Media cost per GB plus yearly upkeep, for archive economics."""

    name: str
    dollars_per_gb: float
    upkeep_dollars_per_gb_year: float = 0.0

    def purchase_cost(self, size: DataSize) -> float:
        return self.dollars_per_gb * size.gb

    def retention_cost(self, size: DataSize, period: Duration) -> float:
        return self.purchase_cost(size) + (
            self.upkeep_dollars_per_gb_year * size.gb * period.years_
        )


# Mid-2000s reference constants.  Tape media were roughly an order of
# magnitude cheaper per GB than enterprise disk, which is what made robotic
# tape the only plausible Petabyte archive.
TAPE_COST_2005 = StorageCostModel("LTO tape", dollars_per_gb=0.40, upkeep_dollars_per_gb_year=0.05)
DISK_COST_2005 = StorageCostModel("SATA disk", dollars_per_gb=3.00, upkeep_dollars_per_gb_year=0.60)
RAID_COST_2005 = StorageCostModel("RAID array", dollars_per_gb=5.00, upkeep_dollars_per_gb_year=1.00)


@dataclass
class CostLedger:
    """Accumulates dollar costs by category for a scenario run."""

    entries: List[Dict[str, object]] = field(default_factory=list)

    def charge(self, category: str, amount: float, note: str = "") -> None:
        if amount < 0:
            raise ValueError(f"negative charge: {amount}")
        self.entries.append({"category": category, "amount": amount, "note": note})

    def total(self, category: str | None = None) -> float:
        return sum(
            float(entry["amount"])
            for entry in self.entries
            if category is None or entry["category"] == category
        )

    def by_category(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for entry in self.entries:
            key = str(entry["category"])
            totals[key] = totals.get(key, 0.0) + float(entry["amount"])
        return totals
