"""Exception hierarchy shared across the library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch a single base class at pipeline boundaries while still
being able to discriminate failures precisely.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class UnitError(ReproError, ValueError):
    """Invalid unit arithmetic or an unparseable quantity string."""


class DataflowError(ReproError):
    """Structural problem in a dataflow graph (cycle, unknown stage, ...)."""


class ExecutionError(ReproError):
    """A dataflow stage failed while the engine was running it."""

    def __init__(self, stage: str, message: str):
        super().__init__(f"stage {stage!r}: {message}")
        self.stage = stage


class ProvenanceError(ReproError):
    """Missing or inconsistent provenance information."""


class VersioningError(ReproError):
    """Invalid version identifier, grade, or snapshot request."""


class StorageError(ReproError):
    """Storage substrate failure (capacity exhausted, unknown file, ...)."""


class CapacityError(StorageError):
    """A storage medium or pool does not have room for a write."""


class IntegrityError(ReproError):
    """Checksum or fixity verification failed."""


class TelemetryError(ReproError):
    """Telemetry misuse: unknown event kind, malformed log, bad instrument."""


class KernelError(ReproError):
    """Batched numeric kernel misuse (bad shapes, degenerate inputs, ...)."""


class CacheError(ReproError):
    """Stage-result cache misuse (bad capacity, malformed entry, ...)."""


class UnverifiableInputError(CacheError):
    """A cache key cannot be computed because an input's stamp digest
    cannot be resolved.

    Raised when a dataset *claims* a provenance id but the provenance
    store cannot produce its digest: caching such a result would key two
    different datasets to the same ``"unstamped"`` descriptor.  The
    engine treats the stage as uncacheable and carries on.
    """


class ShardError(ReproError):
    """Shard-pool misuse (unknown executor, closed pool, bad worker count)."""


class FaultError(ReproError):
    """Fault-plan or retry-policy misuse (bad spec, invalid bounds, ...)."""


class InjectedFault(ReproError):
    """A deliberately injected failure fired at an injection site.

    Raised by fault-injector shims (engine stage attempts, storage and
    transport operations) when a ``"crash"`` fault fires.  Carries the
    spec name, the scope/target it struck, and the full
    :class:`~repro.core.faults.FaultRecord` for accounting.
    """

    def __init__(self, spec: str, scope: str, target: str, record: object = None):
        super().__init__(f"injected fault {spec!r} at {scope}:{target}")
        self.spec = spec
        self.scope = scope
        self.target = target
        self.record = record


class TransportError(ReproError):
    """Transfer planning or execution failure."""


class DatabaseError(ReproError):
    """Relational layer failure."""


class EventStoreError(ReproError):
    """EventStore API misuse or internal inconsistency."""


class MergeConflictError(EventStoreError):
    """A personal-store merge collided with existing collaboration data."""


class SearchError(ReproError):
    """Pulsar search pipeline failure (bad data shapes, empty input, ...)."""


class WebLabError(ReproError):
    """WebLab subsystem failure (malformed ARC/DAT records, ...)."""


class DuplicateCrawlError(WebLabError):
    """A crawl index was registered twice with conflicting metadata."""


class IncrementalError(ReproError):
    """Incremental-execution misuse: undeclared delta source, non-monotone
    watermark, malformed delta batch, or a window/backfill request the
    engine cannot honour."""


class WorkloadError(ReproError):
    """Workload-engine misuse: malformed spec or trace, unknown replay op,
    or non-monotone arrivals fed to admission control."""


class OpsError(ReproError):
    """Operations-console misuse: a corrupt interior log line, a malformed
    quality spec or alert rule, or a projection the store cannot serve."""
