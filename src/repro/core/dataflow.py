"""Dataflow graphs: the unifying abstraction of the paper.

All three case studies are "sophisticated data processing pipelines that
meld raw data through expensive processing steps into finished data
products".  This module gives those pipelines a common shape: a directed
acyclic graph of named :class:`Stage` objects connected by labelled edges,
validated structurally, and renderable as text (our executable stand-in for
the paper's Figure 1 and Figure 2).

Execution and accounting live in :mod:`repro.core.engine`; this module is
purely structural so graphs can be built, inspected, and drawn without
running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.dataset import Dataset
from repro.core.errors import DataflowError
from repro.core.recovery import RetryPolicy

# A stage transform receives {upstream stage name: dataset} and a context
# object supplied by the engine, and returns its output dataset.
StageFn = Callable[[Mapping[str, Dataset], "object"], Dataset]


def structural_stub(name: str) -> StageFn:
    """A placeholder transform for flows built only to be *inspected*.

    Pipeline modules expose their figure topologies through builder
    functions (``figure1_flow``/``figure2_flow``) so static tooling —
    :mod:`repro.analysis.flowcheck` in particular — can construct and
    check the exact graph the runtime executes without running any
    science code.  The stub raises if the engine ever calls it, so a
    structural flow can never silently masquerade as a runnable one.
    """

    def stub(inputs: Mapping[str, Dataset], ctx: object) -> Dataset:
        raise DataflowError(
            f"stage {name!r} was built structurally (no transform bound); "
            "structural flows are for inspection only"
        )

    stub.__name__ = f"structural_stub_{name}"
    return stub


@dataclass
class Stage:
    """One processing step in a dataflow.

    Parameters
    ----------
    name:
        Unique name within the flow (``"dedispersion"``, ``"reconstruction"``).
    fn:
        The transform.  Called by the engine with the mapping of upstream
        outputs and a :class:`~repro.core.engine.StageContext`.
    site:
        Where the step runs (``"Arecibo"``, ``"CTC"``, ``"consortium"``).
        Purely descriptive; used in figure rendering and per-site accounting.
    cpu_seconds_per_gb:
        Cost model: simulated CPU time consumed per GB of input processed.
    description:
        One-line summary shown in rendered figures.
    cache_params:
        Parameters the stage's behaviour depends on beyond its inputs and
        seed (pipeline configuration, release versions, thresholds).
        Folded into the stage-cache key: a stage whose ``cache_params``
        differ never reuses a cached result.  ``None`` disables nothing —
        it simply contributes an empty parameter set to the key.
    retry:
        Per-stage :class:`~repro.core.recovery.RetryPolicy` override.
        ``None`` falls back to the engine's run-wide policy (which
        defaults to no retry).
    """

    name: str
    fn: StageFn
    site: str = "local"
    cpu_seconds_per_gb: float = 0.0
    description: str = ""
    cache_params: Optional[Mapping[str, object]] = None
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise DataflowError("stage name must be non-empty")
        if self.cpu_seconds_per_gb < 0:
            raise DataflowError(f"stage {self.name!r}: negative CPU cost")


@dataclass(frozen=True)
class Edge:
    """A directed channel between two stages."""

    src: str
    dst: str
    label: str = ""


class DataFlow:
    """A named DAG of stages.

    Stages are added first, then connected; :meth:`validate` (called
    automatically by :meth:`topological_order`) rejects cycles, dangling
    edges, and duplicate stage names at build time rather than mid-run.
    """

    def __init__(self, name: str):
        if not name:
            raise DataflowError("dataflow name must be non-empty")
        self.name = name
        self._stages: Dict[str, Stage] = {}
        self._edges: List[Edge] = []
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}
        self._incremental: Dict[str, str] = {}

    # -- construction ------------------------------------------------------
    def add_stage(self, stage: Stage) -> Stage:
        if stage.name in self._stages:
            raise DataflowError(f"duplicate stage name {stage.name!r} in flow {self.name!r}")
        self._stages[stage.name] = stage
        self._succ[stage.name] = []
        self._pred[stage.name] = []
        return stage

    def stage(
        self,
        name: str,
        fn: StageFn,
        site: str = "local",
        cpu_seconds_per_gb: float = 0.0,
        description: str = "",
        cache_params: Optional[Mapping[str, object]] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Stage:
        """Convenience: build and add a stage in one call."""
        return self.add_stage(
            Stage(
                name=name,
                fn=fn,
                site=site,
                cpu_seconds_per_gb=cpu_seconds_per_gb,
                description=description,
                cache_params=cache_params,
                retry=retry,
            )
        )

    def connect(self, src: str, dst: str, label: str = "") -> Edge:
        for endpoint in (src, dst):
            if endpoint not in self._stages:
                raise DataflowError(
                    f"flow {self.name!r}: cannot connect unknown stage "
                    f"{endpoint!r} (edge {src!r} -> {dst!r})"
                )
        if src == dst:
            raise DataflowError(f"flow {self.name!r}: self-loop on stage {src!r}")
        if dst in self._succ[src]:
            raise DataflowError(
                f"flow {self.name!r}: duplicate edge {src!r} -> {dst!r}"
            )
        edge = Edge(src=src, dst=dst, label=label)
        self._edges.append(edge)
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        return edge

    def chain(self, *names: str, labels: Optional[Sequence[str]] = None) -> None:
        """Connect a linear sequence of already-added stages."""
        if labels is not None and len(labels) != len(names) - 1:
            raise DataflowError(
                f"flow {self.name!r}: chain {list(names)} labels must have one "
                f"entry per edge ({len(names) - 1}), got {len(labels)}"
            )
        for index in range(len(names) - 1):
            label = labels[index] if labels is not None else ""
            self.connect(names[index], names[index + 1], label=label)

    def declare_incremental(self, name: str, description: str = "") -> None:
        """Mark a *source* stage as fed by deltas rather than a fixed batch.

        Incremental sources are where :class:`~repro.core.deltas.DeltaSource`
        batches enter the flow: an :class:`~repro.core.deltas.IncrementalEngine`
        only accepts delta feeds aimed at declared sources, and the static
        flow checker (FLW002) exempts declared sources from its
        dangling-dataset prong — their inputs arrive from outside the graph
        by design.  Only stages with no predecessors may be declared.
        """
        stage = self._require(name)
        if self._pred[stage.name]:
            raise DataflowError(
                f"flow {self.name!r}: stage {name!r} has predecessors "
                f"{self._pred[name]}; only source stages can be incremental"
            )
        self._incremental[name] = description

    @property
    def incremental_sources(self) -> Dict[str, str]:
        """Declared incremental sources, ``{stage name: description}``."""
        return dict(self._incremental)

    # -- inspection --------------------------------------------------------
    @property
    def stages(self) -> Dict[str, Stage]:
        return dict(self._stages)

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    def predecessors(self, name: str) -> List[str]:
        self._require(name)
        return list(self._pred[name])

    def successors(self, name: str) -> List[str]:
        self._require(name)
        return list(self._succ[name])

    def sources(self) -> List[str]:
        return [name for name in self._stages if not self._pred[name]]

    def sinks(self) -> List[str]:
        return [name for name in self._stages if not self._succ[name]]

    def sites(self) -> Set[str]:
        return {stage.site for stage in self._stages.values()}

    def _require(self, name: str) -> Stage:
        if name not in self._stages:
            raise DataflowError(f"unknown stage {name!r} in flow {self.name!r}")
        return self._stages[name]

    # -- validation / ordering ---------------------------------------------
    def validate(self) -> None:
        """Raise :class:`DataflowError` if the graph is unusable."""
        if not self._stages:
            raise DataflowError(f"flow {self.name!r} has no stages")
        for name in self._incremental:
            if self._pred.get(name):
                raise DataflowError(
                    f"flow {self.name!r}: incremental source {name!r} "
                    f"gained predecessors {self._pred[name]}"
                )
        self.topological_order()

    def find_cycle(self) -> Optional[List[str]]:
        """One directed cycle as a stage path ``[a, b, ..., a]``, or ``None``.

        Iterative colouring DFS in insertion order, so the same graph
        always names the same cycle — error messages and flowcheck
        reports stay deterministic.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in self._stages}
        for root in self._stages:
            if colour[root] != WHITE:
                continue
            path: List[str] = []
            stack: List[Tuple[str, Iterator[str]]] = [(root, iter(self._succ[root]))]
            colour[root] = GREY
            path.append(root)
            while stack:
                node, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if colour[succ] == GREY:
                        return path[path.index(succ):] + [succ]
                    if colour[succ] == WHITE:
                        colour[succ] = GREY
                        path.append(succ)
                        stack.append((succ, iter(self._succ[succ])))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    path.pop()
                    stack.pop()
        return None

    def topological_order(self) -> List[str]:
        """Kahn's algorithm; raises on cycles.  Deterministic by insertion order."""
        in_degree = {name: len(self._pred[name]) for name in self._stages}
        ready = [name for name in self._stages if in_degree[name] == 0]
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for succ in self._succ[current]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._stages):
            cycle = self.find_cycle() or sorted(
                name for name, degree in in_degree.items() if degree > 0
            )
            raise DataflowError(
                f"flow {self.name!r} contains a cycle: {' -> '.join(cycle)}"
            )
        return order

    def levels(self) -> List[List[str]]:
        """Stages grouped by dependency depth.

        All stages within one level are mutually independent, so the width
        of the widest level bounds how many stages a parallel engine can
        have in flight at once.  Levels are ordered root-to-sink and each
        level preserves topological (insertion) order.
        """
        order = self.topological_order()
        depth: Dict[str, int] = {}
        for name in order:
            depth[name] = max(
                (depth[pred] + 1 for pred in self._pred[name]), default=0
            )
        grouped: List[List[str]] = [[] for _ in range(max(depth.values()) + 1)]
        for name in order:
            grouped[depth[name]].append(name)
        return grouped

    def max_parallelism(self) -> int:
        """Width of the widest :meth:`levels` level (>= 1 for a valid flow)."""
        return max(len(level) for level in self.levels())

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        """ASCII rendering of the flow, grouped by site, in topological order.

        This is the executable counterpart of the paper's data-flow figures:
        one line per stage with its site and incoming channels.
        """
        lines = [f"DataFlow: {self.name}"]
        for name in self.topological_order():
            stage = self._stages[name]
            incoming = [
                f"{edge.src}{f' ({edge.label})' if edge.label else ''}"
                for edge in self._edges
                if edge.dst == name
            ]
            arrow = f" <- {', '.join(incoming)}" if incoming else " (source)"
            summary = f"  [{stage.site}] {name}{arrow}"
            if stage.description:
                summary += f"  -- {stage.description}"
            lines.append(summary)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"DataFlow({self.name!r}, stages={len(self._stages)}, edges={len(self._edges)})"
