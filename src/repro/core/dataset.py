"""Dataset abstraction flowing through the pipelines.

A :class:`Dataset` is the unit of exchange between dataflow stages: a named,
sized collection of items carrying a version identifier and a pointer into
the provenance store.  The payload is deliberately opaque to the core — the
Arecibo pipeline puts filterbank blocks in it, CLEO puts event files, WebLab
puts ARC batches — so the engine can do uniform volume and lineage
accounting without knowing any domain detail.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from repro.core.units import DataSize

_dataset_counter = itertools.count(1)


def _next_dataset_id() -> str:
    return f"ds-{next(_dataset_counter):06d}"


@dataclass
class Dataset:
    """A named, sized, versioned bundle of data items.

    Parameters
    ----------
    name:
        Human-readable role of the data (``"raw-spectra"``, ``"candidates"``).
    size:
        Total volume.  Used by the engine for storage and transport
        accounting.
    items:
        Optional payload objects.  The core never inspects them.
    version:
        Version identifier string (see :mod:`repro.core.versioning`).
    provenance_id:
        Id of the provenance record describing how this dataset was made.
    attrs:
        Free-form domain metadata (e.g. number of pointings, run numbers).
    """

    name: str
    size: DataSize
    items: list = field(default_factory=list)
    version: str = "unversioned"
    provenance_id: Optional[str] = None
    attrs: dict = field(default_factory=dict)
    dataset_id: str = field(default_factory=_next_dataset_id)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Dataset name must be non-empty")
        if not isinstance(self.size, DataSize):
            raise TypeError(f"size must be a DataSize, got {type(self.size).__name__}")

    @property
    def item_count(self) -> int:
        return len(self.items)

    def with_items(self, items: Iterable[Any], size: Optional[DataSize] = None) -> "Dataset":
        """Return a copy carrying ``items`` (and optionally a new size)."""
        return Dataset(
            name=self.name,
            size=size if size is not None else self.size,
            items=list(items),
            version=self.version,
            provenance_id=self.provenance_id,
            attrs=dict(self.attrs),
        )

    def derive(
        self,
        name: str,
        size: DataSize,
        items: Optional[Iterable[Any]] = None,
        version: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> "Dataset":
        """Create a downstream dataset, inheriting version unless overridden."""
        merged_attrs = dict(self.attrs)
        if attrs:
            merged_attrs.update(attrs)
        return Dataset(
            name=name,
            size=size,
            items=list(items) if items is not None else [],
            version=version if version is not None else self.version,
            attrs=merged_attrs,
        )

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, {self.size}, items={self.item_count}, "
            f"version={self.version!r})"
        )
