"""Deterministic fault injection: declarative plans, seeded triggers, shims.

The paper's three flows are defined as much by how they fail as by how
they move bytes: Arecibo loses tapes and disk drives in the mail, CLEO
re-derives corrupted products from provenance, and the WebLab must ride
out crawler and preload stalls.  This module gives the reproduction one
declarative failure model instead of scattered ad-hoc damage knobs:

* a :class:`FaultSpec` names a *scope* (``"stage"``, ``"storage"``,
  ``"lane"``, ``"beam"``, ``"preload"``), a target pattern, a *kind*
  (``"crash"``, ``"delay"``, ``"corrupt"``, ``"drop"``, ``"stale"``),
  and trigger predicates over invocation count, site, simulated time,
  and a seeded per-target probability;
* a :class:`FaultPlan` is an ordered, digestable set of specs — the
  digest is folded into stage-cache keys so faulted runs never poison a
  warm cache primed without faults (or under a different plan);
* a :class:`FaultInjector` is one *armed* plan: it owns all mutable
  trigger state (per-target invocation counters, fire counts, RNG
  streams) so that two runs armed from the same plan fire identically,
  and a shared injector carried across a crash/resume boundary does not
  re-fire exhausted faults.

Determinism contract: every piece of injector state is keyed by
``(spec, target)``, and per-target RNG streams are seeded from
``(plan seed, spec name, target)`` with SHA-256.  Whether stages run
sequentially or on a thread pool, each target sees the same sequence of
decisions, so fault-injected runs replay byte-identically.

Injection *sites* (the shims) live with the subsystems they wrap: the
engine consults the injector before each stage attempt (see
:mod:`repro.core.engine`), :class:`~repro.storage.tape.RoboticTapeLibrary`
and :class:`~repro.transport.sneakernet.ShippingLane` check their
operations, and pipelines make fine-grained checks through
``StageContext.fault_fires`` (the Arecibo beam cull, the WebLab stale
preload).
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import FaultError, InjectedFault
from repro.core.telemetry import SimClock

#: Fault kinds with engine/shim interpretations.  The vocabulary is open
#: (shims interpret kinds they understand and ignore others), but these
#: are the ones wired in this library.
KNOWN_KINDS = ("crash", "delay", "corrupt", "drop", "stale")


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: where it strikes and when it triggers.

    Parameters
    ----------
    name:
        Unique name within a plan; seeds the spec's RNG streams and
        labels every record the fault leaves behind.
    scope:
        The class of injection site: ``"stage"`` (engine stage attempts,
        target ``"<flow>/<stage>"``), ``"storage"`` (tape/HSM operations,
        target = store name), ``"lane"`` (shipping/network lanes, target
        = lane/link name), or pipeline-defined scopes such as ``"beam"``
        and ``"preload"``.
    target:
        ``fnmatch`` pattern over the site's target string
        (``"arecibo-figure1/process"``, ``"*/ship"``, ``"ctc-*"``).
    kind:
        What happens on fire.  ``"crash"`` raises :class:`InjectedFault`
        at the site; ``"delay"`` charges ``param`` simulated seconds;
        ``"corrupt"``/``"drop"``/``"stale"`` are interpreted by the shim
        (corrupt media in transit, drop a beam, serve a stale preload).
    site:
        Optional ``fnmatch`` pattern over the site's declared location
        (stage sites like ``"CTC"``); ``""`` matches everywhere.
    first_invocation:
        The fault arms from this 1-based invocation of each matching
        target onward.
    max_fires:
        Per-target budget of fires; ``None`` means unlimited (a
        *permanent* fault — pair it with a fallback or expect a
        dead-letter).  The default of 1 models a transient glitch that a
        retry gets past.
    probability:
        Chance of firing per armed invocation, drawn from the spec's
        per-target seeded stream; 1.0 is deterministic.
    after_sim_time:
        Only fire once the injector's clock has reached this many
        simulated seconds (0.0 disables the predicate).
    param:
        Kind-specific magnitude: seconds for ``"delay"``, a fraction for
        ``"corrupt"``.
    """

    name: str
    scope: str
    target: str
    kind: str = "crash"
    site: str = ""
    first_invocation: int = 1
    max_fires: Optional[int] = 1
    probability: float = 1.0
    after_sim_time: float = 0.0
    param: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultError("fault spec name must be non-empty")
        if not self.scope:
            raise FaultError(f"fault {self.name!r}: scope must be non-empty")
        if not self.target:
            raise FaultError(f"fault {self.name!r}: target pattern must be non-empty")
        if not self.kind:
            raise FaultError(f"fault {self.name!r}: kind must be non-empty")
        if self.first_invocation < 1:
            raise FaultError(
                f"fault {self.name!r}: first_invocation must be >= 1, "
                f"got {self.first_invocation}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise FaultError(
                f"fault {self.name!r}: max_fires must be >= 1 or None, "
                f"got {self.max_fires}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(
                f"fault {self.name!r}: probability must be within [0, 1], "
                f"got {self.probability}"
            )
        if self.after_sim_time < 0.0:
            raise FaultError(
                f"fault {self.name!r}: after_sim_time must be >= 0"
            )
        if self.param < 0.0:
            raise FaultError(f"fault {self.name!r}: param must be >= 0")

    def matches(self, scope: str, target: str, site: str = "") -> bool:
        """Structural match (scope, target pattern, site pattern)."""
        if scope != self.scope:
            return False
        if not fnmatch.fnmatchcase(target, self.target):
            return False
        if self.site and not fnmatch.fnmatchcase(site, self.site):
            return False
        return True

    def canonical(self) -> Dict[str, object]:
        """JSON-stable form, the unit of the plan digest."""
        return {
            "name": self.name,
            "scope": self.scope,
            "target": self.target,
            "kind": self.kind,
            "site": self.site,
            "first_invocation": self.first_invocation,
            "max_fires": self.max_fires,
            "probability": repr(self.probability),
            "after_sim_time": repr(self.after_sim_time),
            "param": repr(self.param),
        }


@dataclass(frozen=True)
class FaultRecord:
    """One fired fault: what struck, where, on which invocation."""

    spec: str
    scope: str
    target: str
    kind: str
    invocation: int
    param: float = 0.0

    def as_attrs(self) -> Dict[str, object]:
        """Telemetry-attribute form (also the cache snapshot form)."""
        return {
            "spec": self.spec,
            "scope": self.scope,
            "target": self.target,
            "kind": self.kind,
            "invocation": self.invocation,
            "param": self.param,
        }

    @classmethod
    def from_attrs(cls, attrs: Dict[str, object]) -> "FaultRecord":
        return cls(
            spec=str(attrs["spec"]),
            scope=str(attrs["scope"]),
            target=str(attrs["target"]),
            kind=str(attrs["kind"]),
            invocation=int(attrs["invocation"]),  # type: ignore[arg-type]
            param=float(attrs["param"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded, digestable set of fault specs.

    Plans are immutable values: arm one (:meth:`arm`) to get the mutable
    runtime state.  The :meth:`digest` is the plan's content address —
    the engine folds it into every stage-cache key so results computed
    under one failure model are never replayed under another.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise FaultError(f"duplicate fault spec names in plan: {duplicates}")

    def __len__(self) -> int:
        return len(self.specs)

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form of seed + every spec."""
        payload = {
            "seed": self.seed,
            "specs": [spec.canonical() for spec in self.specs],
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def arm(self, clock: Optional[SimClock] = None) -> "FaultInjector":
        """Create the runtime injector for this plan."""
        return FaultInjector(self, clock=clock)


def _target_seed(plan_seed: int, spec_name: str, target: str) -> int:
    """Per-(spec, target) RNG seed; SHA-256 so it survives restarts."""
    blob = f"{plan_seed}\x1f{spec_name}\x1f{target}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


class FaultInjector:
    """One armed :class:`FaultPlan`: all mutable trigger state lives here.

    Every counter and RNG stream is keyed by ``(spec, target)``, so the
    decision sequence each target observes is independent of thread
    interleaving — the property that keeps parallel-engine runs
    byte-identical to sequential ones under injection.  Reusing one
    injector across a crash/resume boundary preserves fire budgets:
    a transient fault that already struck does not strike the resumed
    run again, which is exactly how checkpoint/resume makes progress.
    """

    def __init__(self, plan: FaultPlan, clock: Optional[SimClock] = None):
        self.plan = plan
        self.clock = clock
        self._lock = threading.Lock()
        self._invocations: Dict[Tuple[str, str], int] = {}
        self._fires: Dict[Tuple[str, str], int] = {}
        self._rngs: Dict[Tuple[str, str], random.Random] = {}
        #: Every record this injector ever produced, in fire order.  Used
        #: for operator-facing counts only — replayable streams take the
        #: records from the call sites, which own deterministic ordering.
        self.fired: List[FaultRecord] = []

    def __len__(self) -> int:
        return len(self.fired)

    @property
    def digest(self) -> str:
        return self.plan.digest()

    def _rng_for(self, key: Tuple[str, str]) -> random.Random:
        rng = self._rngs.get(key)
        if rng is None:
            rng = random.Random(_target_seed(self.plan.seed, key[0], key[1]))
            self._rngs[key] = rng
        return rng

    def fire(self, scope: str, target: str, site: str = "") -> List[FaultRecord]:
        """Evaluate one invocation of ``target``; return the faults that fire.

        Bumps the per-``(spec, target)`` invocation counter of every
        matching spec whether or not it fires, so triggers phrased as
        "the first N invocations" mean real invocations, not prior
        near-misses.
        """
        records: List[FaultRecord] = []
        now = self.clock.now if self.clock is not None else 0.0
        with self._lock:
            for spec in self.plan.specs:
                if not spec.matches(scope, target, site):
                    continue
                key = (spec.name, target)
                invocation = self._invocations.get(key, 0) + 1
                self._invocations[key] = invocation
                if invocation < spec.first_invocation:
                    continue
                if spec.max_fires is not None and self._fires.get(key, 0) >= spec.max_fires:
                    continue
                if spec.after_sim_time and now < spec.after_sim_time:
                    continue
                if spec.probability < 1.0 and not (
                    self._rng_for(key).random() < spec.probability
                ):
                    continue
                self._fires[key] = self._fires.get(key, 0) + 1
                record = FaultRecord(
                    spec=spec.name,
                    scope=scope,
                    target=target,
                    kind=spec.kind,
                    invocation=invocation,
                    param=spec.param,
                )
                records.append(record)
                self.fired.append(record)
        return records

    def check(self, scope: str, target: str, site: str = "") -> List[FaultRecord]:
        """Like :meth:`fire`, but raises on any ``"crash"`` fault.

        Non-crash records (delays, corruption directives) are returned to
        the caller for interpretation; the first crash wins and carries
        its record so handlers can account for it.
        """
        records = self.fire(scope, target, site)
        for record in records:
            if record.kind == "crash":
                raise InjectedFault(record.spec, scope, target, record=record)
        return records

    def fire_counts(self) -> Dict[str, int]:
        """Per-spec lifetime fire totals (operator view)."""
        counts: Dict[str, int] = {}
        with self._lock:
            for (spec_name, _target), fires in sorted(self._fires.items()):
                counts[spec_name] = counts.get(spec_name, 0) + fires
        return counts


def delay_seconds(records: Sequence[FaultRecord]) -> float:
    """Total simulated stall the ``"delay"`` faults in ``records`` demand."""
    return sum(record.param for record in records if record.kind == "delay")


__all__ = (
    "KNOWN_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "delay_seconds",
)
