"""Content-addressed on-disk store for stage-cache entries.

The paper's farm model keeps one *central store* that every worker reads
from and writes back to; the Pipeline-Centric Provenance Model (PAPERS.md)
supplies the key.  This module is the meeting point: a directory of
pickled :class:`~repro.core.stagecache.CachedStage` snapshots addressed by
the ``stage_key`` SHA-256, shared by every worker process of a run and by
every *run* that points at the same root.

Layout and concurrency contract:

* an entry lives at ``root/<key[:2]>/<key>.pkl`` — two-level fan-out so a
  large store never piles every file into one directory;
* writes are **atomic**: the payload is pickled to a temp file in the
  same directory and ``os.replace``d into place, so a reader can never
  observe a torn entry — it sees the old file, the new file, or no file;
* reads are **lock-free**: a missing, truncated, or unpicklable file is
  simply a miss (another process may GC or replace a file at any moment —
  that is allowed and only costs a recompute);
* keys are content addresses, so two processes racing to write the same
  key write byte-equivalent payloads and either winner is correct.

Recency is tracked through file mtimes — a read touches the file — and
:meth:`DiskCacheStore.gc` evicts oldest-first until the store fits the
configured ``max_bytes`` / ``max_entries`` bounds (write-triggered, so
the store is self-bounding without a daemon).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.errors import CacheError

_SUFFIX = ".pkl"


class DiskCacheStore:
    """A shared, size-bounded, content-addressed entry store on disk.

    Parameters
    ----------
    root:
        Directory the store lives in (created on first use).
    max_bytes / max_entries:
        GC bounds; ``None`` leaves that dimension unbounded.  Bounds are
        enforced by :meth:`gc`, which runs after every write.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
    ):
        if max_bytes is not None and max_bytes < 1:
            raise CacheError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_entries is not None and max_entries < 1:
            raise CacheError(f"max_entries must be >= 1, got {max_entries}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.root.mkdir(parents=True, exist_ok=True)

    # -- addressing --------------------------------------------------------
    def path_for(self, key: str) -> Path:
        if not key or any(ch in key for ch in "/\\."):
            raise CacheError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}{_SUFFIX}"

    def _entries_on_disk(self) -> List[Tuple[Path, int, int]]:
        """``(path, mtime_ns, size)`` for every entry file, stat-race safe."""
        found: List[Tuple[Path, int, int]] = []
        for path in self.root.glob(f"*/*{_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:
                continue  # GC'd or replaced underneath us: fine
            found.append((path, stat.st_mtime_ns, stat.st_size))
        return found

    # -- the store API -----------------------------------------------------
    def read(self, key: str) -> Optional[object]:
        """The entry for ``key``, or ``None``.

        Lock-free: a vanished, truncated, or unpicklable file reads as a
        miss.  A successful read touches the file's mtime so GC sees it
        as recently used.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 - torn/corrupt entry == miss
            return None
        try:
            os.utime(path)
        except OSError:
            pass  # GC won the race; the value we read is still good
        return entry

    def write(self, key: str, entry: object) -> bool:
        """Atomically persist ``entry`` under ``key``; then enforce bounds.

        Returns ``False`` (and stores nothing) when the entry does not
        pickle — an unpicklable stash degrades that stage to
        memory-only caching rather than failing the run.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            blob = pickle.dumps(entry)
        except Exception:  # noqa: BLE001 - graceful: skip, don't fail the run
            return False
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.gc()
        return True

    def delete(self, key: str) -> bool:
        """Drop one entry; returns whether a file was removed."""
        try:
            self.path_for(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def keys(self) -> List[str]:
        """All stored keys, sorted (a stable inventory, not LRU order)."""
        return sorted(path.stem for path, _, _ in self._entries_on_disk())

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return len(self._entries_on_disk())

    def total_bytes(self) -> int:
        return sum(size for _, _, size in self._entries_on_disk())

    def gc(self) -> int:
        """Evict least-recently-used entries until the bounds hold.

        Returns the number of entries removed.  Ordering is by mtime
        (reads touch), key as tie-break; racing processes may each try to
        remove the same file — only the winner counts it.
        """
        if self.max_bytes is None and self.max_entries is None:
            return 0
        entries = sorted(
            self._entries_on_disk(), key=lambda item: (item[1], item[0].name)
        )
        count = len(entries)
        volume = sum(size for _, _, size in entries)
        evicted = 0
        for path, _, size in entries:
            over_entries = self.max_entries is not None and count > self.max_entries
            over_bytes = self.max_bytes is not None and volume > self.max_bytes
            if not (over_entries or over_bytes):
                break
            try:
                path.unlink()
                evicted += 1
            except OSError:
                pass  # another process evicted or replaced it first
            count -= 1
            volume -= size
        return evicted

    def clear(self) -> int:
        """Remove every entry; returns how many were dropped."""
        dropped = 0
        for path, _, _ in self._entries_on_disk():
            try:
                path.unlink()
                dropped += 1
            except OSError:
                pass
        return dropped

    def stats(self) -> Dict[str, int]:
        entries = self._entries_on_disk()
        return {
            "entries": len(entries),
            "bytes": sum(size for _, _, size in entries),
        }

    def __repr__(self) -> str:
        return (
            f"DiskCacheStore({str(self.root)!r}, max_bytes={self.max_bytes}, "
            f"max_entries={self.max_entries})"
        )


__all__: Tuple[str, ...] = ("DiskCacheStore",)
