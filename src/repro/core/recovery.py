"""Recovery: per-stage retry policies, dead letters, checkpoint/resume.

The paper's flows survive their environments by retrying (reshipped
disks, re-derived CLEO products) and by degrading gracefully (a dropped
beam, a stale WebLab preload) rather than aborting a survey over one bad
component.  This module holds the policy side of that story; the engine
(:mod:`repro.core.engine`) enforces it around every stage attempt.

* :class:`RetryPolicy` — bounded attempts with exponential backoff.
  Backoff is charged to the *simulated* clock (the telemetry
  ``SimClock``), so retry overhead shows up in flow accounting exactly
  like CPU time does, and runs stay wall-clock-free and replayable.
* A policy may carry a ``fallback``: a graceful-degradation hook invoked
  when attempts are exhausted.  The stage's report row is then marked
  ``degraded`` and a :class:`DeadLetter` records the original failure.
* :class:`DeadLetter` / :class:`DeadLetterLog` — durable records of
  exhausted retries, one per abandoned stage, exposed on the engine and
  emitted as ``stage.dead_letter`` telemetry.
* :func:`run_to_completion` — the checkpoint/resume driver: run a flow,
  and on a crash re-run it against the same :class:`StageCache` and the
  same armed :class:`~repro.core.faults.FaultInjector`.  Completed
  stages replay from cache with byte-identical accounting (the replayed
  prefix), exhausted transient faults do not re-fire, and the flow makes
  forward progress each restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.errors import ExecutionError, FaultError

#: Signature of a graceful-degradation hook: ``(stage_inputs, context,
#: error) -> Dataset``.  Runs in a fresh StageContext after the last
#: failed attempt; whatever it returns flows downstream as the stage
#: output, flagged ``degraded`` in every report row.
FallbackFn = Callable[[Mapping[str, object], object, Exception], object]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff on the simulated clock.

    ``delay_for(attempt)`` is the backoff charged *after* failed attempt
    ``attempt`` (1-based): ``backoff_base_s * backoff_factor**(attempt-1)``
    capped at ``max_backoff_s``.  ``max_attempts=1`` disables retry
    entirely (the engine default).
    """

    max_attempts: int = 3
    backoff_base_s: float = 30.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 3600.0
    fallback: Optional[FallbackFn] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0:
            raise FaultError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise FaultError("backoff_factor must be >= 1")
        if self.max_backoff_s < 0:
            raise FaultError("max_backoff_s must be >= 0")

    def delay_for(self, attempt: int) -> float:
        """Simulated backoff seconds after failed attempt ``attempt``."""
        if attempt < 1:
            raise FaultError(f"attempt numbers are 1-based, got {attempt}")
        return min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )

    def __repr__(self) -> str:
        # Stable across processes: the fallback is rendered by name, not
        # by object identity, because this repr feeds stage-cache keys
        # through pipeline config fingerprints.
        fallback = getattr(self.fallback, "__qualname__", None) if self.fallback else None
        return (
            "RetryPolicy("
            f"max_attempts={self.max_attempts}, "
            f"backoff_base_s={self.backoff_base_s!r}, "
            f"backoff_factor={self.backoff_factor!r}, "
            f"max_backoff_s={self.max_backoff_s!r}, "
            f"fallback={fallback!r})"
        )


#: Policy preset that never retries (and never falls back).
NO_RETRY = RetryPolicy(max_attempts=1, backoff_base_s=0.0)


@dataclass(frozen=True)
class DeadLetter:
    """One abandoned stage: retries exhausted, failure preserved."""

    flow: str
    stage: str
    site: str
    attempts: int
    error: str
    retry_wait_s: float = 0.0
    degraded: bool = False

    def as_attrs(self) -> Dict[str, object]:
        """Telemetry-attribute form of the record."""
        return {
            "flow": self.flow,
            "stage": self.stage,
            "site": self.site,
            "attempts": self.attempts,
            "error": self.error,
            "retry_wait_s": self.retry_wait_s,
            "degraded": self.degraded,
        }


class DeadLetterLog:
    """Append-only record of exhausted-retry failures."""

    def __init__(self) -> None:
        self._letters: List[DeadLetter] = []

    def append(self, letter: DeadLetter) -> None:
        self._letters.append(letter)

    def __len__(self) -> int:
        return len(self._letters)

    def __iter__(self):
        return iter(list(self._letters))

    def for_stage(self, stage: str) -> List[DeadLetter]:
        return [letter for letter in self._letters if letter.stage == stage]

    def rows(self) -> List[Dict[str, object]]:
        """Benchmark/report rows, one per letter."""
        return [letter.as_attrs() for letter in self._letters]


def run_to_completion(
    make_engine: Callable[[], object],
    flow: object,
    inputs: Optional[Mapping[str, object]] = None,
    max_restarts: int = 3,
) -> Tuple[object, int]:
    """Drive a flow to completion across engine crashes: the resume loop.

    ``make_engine`` builds a fresh engine per restart; to get
    checkpoint/resume semantics the factory must hand every engine the
    *same* :class:`~repro.core.stagecache.StageCache` and the same armed
    :class:`~repro.core.faults.FaultInjector` (same fault digest, same
    exhausted fire budgets).  Stages the crashed run completed were
    committed to the cache as they finished, so the resumed run replays
    that prefix — byte-identical accounting — and first executes the
    stage that failed.

    Returns ``(report, restarts)`` where ``restarts`` counts the crashed
    runs before the one that completed.  Raises the final
    :class:`ExecutionError` once ``max_restarts`` is exhausted.
    """
    if max_restarts < 0:
        raise FaultError(f"max_restarts must be >= 0, got {max_restarts}")
    restarts = 0
    while True:
        engine = make_engine()
        try:
            return engine.run(flow, inputs=inputs), restarts  # type: ignore[attr-defined]
        except ExecutionError:
            if restarts >= max_restarts:
                raise
            restarts += 1


@dataclass
class AvailabilitySummary:
    """Flow-level availability accounting (the C17 experiment's columns)."""

    stages: int = 0
    completed: int = 0
    degraded: int = 0
    dead_letters: int = 0
    attempts: int = 0
    faults_injected: int = 0
    retry_wait_s: float = 0.0

    @property
    def completion_rate(self) -> float:
        """Fraction of stages that produced a non-degraded result."""
        if self.stages == 0:
            return 1.0
        return (self.completed - self.degraded) / self.stages

    @property
    def retries(self) -> int:
        """Attempts beyond the first, summed over stages."""
        return self.attempts - self.completed

    def rows(self) -> List[Dict[str, object]]:
        return [
            {"metric": "availability.stages", "value": self.stages},
            {"metric": "availability.completed", "value": self.completed},
            {"metric": "availability.degraded", "value": self.degraded},
            {"metric": "availability.dead_letters", "value": self.dead_letters},
            {"metric": "availability.attempts", "value": self.attempts},
            {"metric": "availability.retries", "value": self.retries},
            {"metric": "availability.faults_injected", "value": self.faults_injected},
            {"metric": "availability.retry_wait_s", "value": self.retry_wait_s},
            {"metric": "availability.completion_rate", "value": self.completion_rate},
        ]


__all__ = (
    "NO_RETRY",
    "AvailabilitySummary",
    "DeadLetter",
    "DeadLetterLog",
    "FallbackFn",
    "RetryPolicy",
    "run_to_completion",
)
