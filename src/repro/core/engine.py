"""Dataflow execution with resource and lineage accounting.

The engine runs a :class:`~repro.core.dataflow.DataFlow` in topological
order, threading :class:`~repro.core.dataset.Dataset` objects along the
edges.  While doing so it keeps the books the paper's operators keep by
hand: bytes produced per stage, simulated CPU time per site, the
instantaneous storage high-water mark (the "minimum of 30 Terabytes of
storage required instantaneously" argument for Arecibo), and a provenance
record per stage output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.dataflow import DataFlow, Stage
from repro.core.dataset import Dataset
from repro.core.errors import ExecutionError
from repro.core.provenance import ProcessingStep, ProvenanceStore
from repro.core.units import DataSize, Duration


@dataclass
class StageReport:
    """Accounting for one executed stage."""

    name: str
    site: str
    input_size: DataSize
    output_size: DataSize
    cpu_time: Duration
    provenance_id: str

    @property
    def reduction_factor(self) -> float:
        """input/output volume ratio (>1 means the stage condenses data)."""
        if self.output_size.bytes == 0:
            return float("inf")
        return self.input_size.bytes / self.output_size.bytes


@dataclass
class FlowReport:
    """Accounting for a whole flow run."""

    flow_name: str
    stages: List[StageReport] = field(default_factory=list)
    outputs: Dict[str, Dataset] = field(default_factory=dict)
    peak_live_storage: DataSize = field(default_factory=DataSize.zero)

    @property
    def total_cpu_time(self) -> Duration:
        return Duration(sum(stage.cpu_time.seconds for stage in self.stages))

    @property
    def total_output(self) -> DataSize:
        return DataSize(sum(stage.output_size.bytes for stage in self.stages))

    def cpu_time_by_site(self) -> Dict[str, Duration]:
        by_site: Dict[str, float] = {}
        for stage in self.stages:
            by_site[stage.site] = by_site.get(stage.site, 0.0) + stage.cpu_time.seconds
        return {site: Duration(seconds) for site, seconds in by_site.items()}

    def stage(self, name: str) -> StageReport:
        for report in self.stages:
            if report.name == name:
                return report
        raise KeyError(f"no stage report named {name!r}")

    def processors_needed(self, realtime: Duration) -> float:
        """How many CPUs keep up with this flow arriving every ``realtime``.

        This reproduces the paper's "about 50 to 200 processors would be
        needed to keep up with the flow of data" style of estimate: total
        simulated CPU time divided by the wall-clock window in which the
        next batch of data arrives.
        """
        if realtime.seconds == 0:
            return float("inf")
        return self.total_cpu_time.seconds / realtime.seconds

    def summary_rows(self) -> List[Dict[str, object]]:
        """Tabular stage summary (used by benchmarks and EXPERIMENTS.md)."""
        return [
            {
                "stage": report.name,
                "site": report.site,
                "in": str(report.input_size),
                "out": str(report.output_size),
                "cpu": str(report.cpu_time),
            }
            for report in self.stages
        ]


class StageContext:
    """Facilities the engine hands to each stage transform."""

    def __init__(
        self,
        stage: Stage,
        engine: "Engine",
        provenance: ProvenanceStore,
        rng: random.Random,
    ):
        self.stage = stage
        self.engine = engine
        self.provenance = provenance
        self.rng = rng
        self._extra_cpu_seconds = 0.0

    def charge_cpu(self, duration: Duration) -> None:
        """Let a stage report extra simulated CPU work beyond the size model."""
        self._extra_cpu_seconds += duration.seconds

    @property
    def extra_cpu(self) -> Duration:
        return Duration(self._extra_cpu_seconds)


class Engine:
    """Sequential topological executor with accounting.

    Parameters
    ----------
    provenance:
        Shared provenance store; one is created if not supplied.
    seed:
        Seed for the per-run RNG handed to stages, keeping stochastic
        pipelines (detector noise, synthetic web growth) reproducible.
    """

    def __init__(self, provenance: Optional[ProvenanceStore] = None, seed: int = 0):
        self.provenance = provenance if provenance is not None else ProvenanceStore()
        self._seed = seed

    def run(
        self,
        flow: DataFlow,
        inputs: Optional[Mapping[str, Dataset]] = None,
    ) -> FlowReport:
        """Execute ``flow`` and return its :class:`FlowReport`.

        ``inputs`` optionally maps *source stage names* to seed datasets;
        source stages receive them under the key ``"input"``.
        """
        flow.validate()
        order = flow.topological_order()
        report = FlowReport(flow_name=flow.name)
        produced: Dict[str, Dataset] = {}
        prov_ids: Dict[str, str] = {}
        # Reference counts drive the live-storage high-water accounting: a
        # stage output stays "on disk" until every consumer has run.
        remaining_consumers = {name: len(flow.successors(name)) for name in order}
        live_bytes = 0.0
        peak_bytes = 0.0
        rng = random.Random(self._seed)

        for name in order:
            stage = flow.stages[name]
            stage_inputs: Dict[str, Dataset] = {
                pred: produced[pred] for pred in flow.predecessors(name)
            }
            if not stage_inputs and inputs and name in inputs:
                stage_inputs = {"input": inputs[name]}
            context = StageContext(stage, self, self.provenance, rng)
            try:
                output = stage.fn(stage_inputs, context)
            except ExecutionError:
                raise
            except Exception as exc:  # noqa: BLE001 - wrap with stage identity
                raise ExecutionError(name, str(exc)) from exc
            if not isinstance(output, Dataset):
                raise ExecutionError(
                    name, f"stage returned {type(output).__name__}, expected Dataset"
                )

            input_size = DataSize(
                sum(dataset.size.bytes for dataset in stage_inputs.values())
            )
            cpu_seconds = stage.cpu_seconds_per_gb * (input_size.gb) + context.extra_cpu.seconds

            step = ProcessingStep.create(
                module=name,
                version=output.version,
                params={"site": stage.site},
                inputs=sorted(dataset.dataset_id for dataset in stage_inputs.values()),
            )
            parents = [
                prov_ids[pred] for pred in flow.predecessors(name) if pred in prov_ids
            ]
            record = self.provenance.record(artifact=output.name, step=step, parents=parents)
            output.provenance_id = record.record_id
            prov_ids[name] = record.record_id

            produced[name] = output
            live_bytes += output.size.bytes
            peak_bytes = max(peak_bytes, live_bytes)
            for pred in flow.predecessors(name):
                remaining_consumers[pred] -= 1
                if remaining_consumers[pred] == 0:
                    live_bytes -= produced[pred].size.bytes

            report.stages.append(
                StageReport(
                    name=name,
                    site=stage.site,
                    input_size=input_size,
                    output_size=output.size,
                    cpu_time=Duration(cpu_seconds),
                    provenance_id=record.record_id,
                )
            )

        report.outputs = {name: produced[name] for name in flow.sinks()}
        report.peak_live_storage = DataSize(peak_bytes)
        return report
