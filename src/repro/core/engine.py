"""Dataflow execution with resource and lineage accounting.

The engine runs a :class:`~repro.core.dataflow.DataFlow` in topological
order, threading :class:`~repro.core.dataset.Dataset` objects along the
edges.  While doing so it keeps the books the paper's operators keep by
hand: bytes produced per stage, simulated CPU time per site, the
instantaneous storage high-water mark (the "minimum of 30 Terabytes of
storage required instantaneously" argument for Arecibo), and a provenance
record per stage output.

Two execution strategies share all of that accounting:

* ``Engine(max_workers=1)`` (the default) calls every stage in the calling
  thread, one at a time, in topological order.
* ``Engine(max_workers=N)`` / :class:`ParallelEngine` runs independent
  stages concurrently on a thread pool — the paper's "50 to 200
  processors" argument, exercised instead of merely quoted.
* ``Engine(max_workers=N, executor="process")`` / :class:`ProcessEngine`
  additionally moves the data-parallel inner loops of transforms — the
  shards a stage routes through ``StageContext.map_shards`` — onto worker
  processes, the paper's farm model (a central store feeding independent
  reconstruction/search workers).  Stage scheduling itself stays on
  threads; large arrays cross the process boundary via shared memory and
  child telemetry is forwarded home in shard order.

Parallel execution preserves *exact* sequential semantics:

* every stage draws randomness from its own ``random.Random`` seeded from
  ``(run seed, stage name)``, so no stage's stream depends on when any
  other stage ran;
* provenance record ids are reserved per stage in topological order
  before execution, so the lineage graph (ids, parent chains, stamps) is
  byte-identical to the sequential run's no matter the completion order;
* storage and CPU accounting are replayed over the completed stages in
  topological order, so ``peak_live_storage`` and every
  :class:`StageReport` row match the sequential run exactly.

Accounting itself lives on the :mod:`repro.core.telemetry` substrate: the
replay emits a typed event stream (``flow.start``, ``stage.start/finish``,
``bytes.produced``, ``provenance.record``, ``flow.finish``, wrapped in
nested trace spans) and the :class:`FlowReport` is a *view* rebuilt from
that stream.  Because emission happens during the topological replay, a
parallel run's event log is byte-identical to the sequential run's once
wall-clock fields are stripped — and a persisted JSONL log can regenerate
the report offline (see :func:`repro.core.telemetry.flow_summary_from_log`).

Passing a :class:`~repro.core.stagecache.StageCache` lets the engine skip
stages whose content address — flow, stage identity, per-stage seed,
declared ``cache_params``, and input provenance digests — matches a prior
execution.  A hit restores the recorded output, CPU charge, and stage
stash, then commits provenance and replays accounting exactly as if the
stage had run, so cached and uncached runs produce identical reports and
event logs.  Because the same byte-identical contract holds across worker
counts, a cache primed by a sequential run services a parallel rerun.

Failure handling rides the same determinism contract.  An armed
:class:`~repro.core.faults.FaultInjector` is consulted before every stage
attempt (``"crash"`` faults abort the attempt, ``"delay"`` faults charge
simulated stall); a :class:`~repro.core.recovery.RetryPolicy` — engine
default or per-stage override — bounds re-attempts with exponential
backoff charged to the simulated clock.  Exhausted retries produce a
:class:`~repro.core.recovery.DeadLetter` and either invoke the policy's
graceful-degradation fallback or abort the run.  All of it is recorded in
the per-stage result and *replayed* in topological order (``fault.injected``,
``stage.retry``, ``stage.degraded``, ``stage.dead_letter`` events), so
fault-injected runs are as replayable as clean ones.  The active fault
plan's digest salts every stage-cache key: results computed under
injection never service a clean run, and a crashed run's completed prefix
(already committed to the cache) replays byte-identically when the flow
is resumed — see :func:`repro.core.recovery.run_to_completion`.
"""

from __future__ import annotations

import hashlib
import random
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.dataflow import DataFlow, Stage
from repro.core.dataset import Dataset
from repro.core.errors import (
    ExecutionError,
    InjectedFault,
    ProvenanceError,
    UnverifiableInputError,
)
from repro.core.faults import FaultInjector, FaultPlan, FaultRecord, delay_seconds
from repro.core.provenance import ProcessingStep, ProvenanceStore
from repro.core.recovery import NO_RETRY, DeadLetter, RetryPolicy
from repro.core.shards import ShardPool
from repro.core.stagecache import CachedStage, StageCache, shard_key, stage_key
from repro.core.telemetry import (
    Telemetry,
    TelemetryEvent,
    availability_from_log,
    peak_storage_from_log,
    stage_rows_from_log,
)
from repro.core.units import DataSize, Duration


def _stage_seed(run_seed: int, stage_name: str) -> int:
    """Stable per-stage RNG seed derived from the run seed and stage name.

    Uses SHA-256 rather than ``hash()`` so the derivation survives
    interpreter restarts (``PYTHONHASHSEED``) and is identical across
    sequential and parallel runs.
    """
    digest = hashlib.sha256(f"{run_seed}\x1f{stage_name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _input_descriptor(dataset: Dataset) -> str:
    """Stable provenance description of one input dataset.

    Deliberately excludes the process-global ``dataset_id`` counter: two
    runs of the same flow must produce byte-identical provenance stamps,
    which is the property the determinism suite (and the paper's
    digest-comparison scheme) relies on.
    """
    return f"{dataset.name}@{dataset.version}"


@dataclass
class StageReport:
    """Accounting for one executed stage."""

    name: str
    site: str
    input_size: DataSize
    output_size: DataSize
    cpu_time: Duration
    provenance_id: str
    #: Availability columns: how many attempts the stage took, the
    #: simulated backoff charged between them, and whether the output
    #: came from a graceful-degradation fallback.
    attempts: int = 1
    retry_wait: Duration = field(default_factory=Duration.zero)
    degraded: bool = False

    @property
    def reduction_factor(self) -> float:
        """input/output volume ratio (>1 means the stage condenses data)."""
        if self.output_size.bytes == 0:
            return float("inf")
        return self.input_size.bytes / self.output_size.bytes


@dataclass
class FlowReport:
    """Accounting for a whole flow run."""

    flow_name: str
    stages: List[StageReport] = field(default_factory=list)
    outputs: Dict[str, Dataset] = field(default_factory=dict)
    peak_live_storage: DataSize = field(default_factory=DataSize.zero)
    provenance: Optional[ProvenanceStore] = field(default=None, repr=False)
    #: The substrate this run emitted into, and the run's own event slice.
    #: ``summary_rows()`` and friends are views over ``events`` — a
    #: persisted copy of the slice regenerates the report offline.
    telemetry: Optional[Telemetry] = field(default=None, repr=False)
    events: List[TelemetryEvent] = field(default_factory=list, repr=False)
    #: Per-stage out-of-band results: ``{stage name: ctx.stash mapping}``.
    #: Pipelines publish side-channel state (ground truth, domain objects)
    #: here instead of into closures, which is what lets a cache hit
    #: restore everything a warm rerun's post-processing needs.
    stashes: Dict[str, Mapping[str, object]] = field(
        default_factory=dict, repr=False
    )
    #: Which stages actually ran vs. replayed from the stage cache, in
    #: topological order.  Deliberately *not* part of the telemetry event
    #: slice: the cache contract is that warm and cold runs emit
    #: byte-identical canonical logs, so cache provenance lives on the
    #: report object only (incremental runs use it to pin dirty cones).
    executed_stages: List[str] = field(default_factory=list, repr=False)
    cached_stages: List[str] = field(default_factory=list, repr=False)

    @property
    def total_cpu_time(self) -> Duration:
        return Duration(sum(stage.cpu_time.seconds for stage in self.stages))

    @property
    def total_output(self) -> DataSize:
        return DataSize(sum(stage.output_size.bytes for stage in self.stages))

    def cpu_time_by_site(self) -> Dict[str, Duration]:
        by_site: Dict[str, float] = {}
        for stage in self.stages:
            by_site[stage.site] = by_site.get(stage.site, 0.0) + stage.cpu_time.seconds
        return {site: Duration(seconds) for site, seconds in by_site.items()}

    def stage(self, name: str) -> StageReport:
        for report in self.stages:
            if report.name == name:
                return report
        raise KeyError(f"no stage report named {name!r}")

    def processors_needed(self, realtime: Duration) -> float:
        """How many CPUs keep up with this flow arriving every ``realtime``.

        This reproduces the paper's "about 50 to 200 processors would be
        needed to keep up with the flow of data" style of estimate: total
        simulated CPU time divided by the wall-clock window in which the
        next batch of data arrives.
        """
        if realtime.seconds == 0:
            return float("inf")
        return self.total_cpu_time.seconds / realtime.seconds

    @property
    def total_retry_wait(self) -> Duration:
        """Simulated backoff charged across all stages (retry overhead)."""
        return Duration(sum(stage.retry_wait.seconds for stage in self.stages))

    @property
    def total_attempts(self) -> int:
        return sum(stage.attempts for stage in self.stages)

    def summary_rows(self) -> List[Dict[str, object]]:
        """Tabular stage summary (used by benchmarks and EXPERIMENTS.md)."""
        return [
            {
                "stage": report.name,
                "site": report.site,
                "in": str(report.input_size),
                "out": str(report.output_size),
                "cpu": str(report.cpu_time),
                "attempts": report.attempts,
                "wait": str(report.retry_wait),
                "degraded": report.degraded,
            }
            for report in self.stages
        ]

    def availability(self) -> Dict[str, object]:
        """Flow availability accounting, regenerated from this run's log."""
        return availability_from_log(self.events)


class StageContext:
    """Facilities the engine hands to each stage transform."""

    def __init__(
        self,
        stage: Stage,
        engine: "Engine",
        provenance: ProvenanceStore,
        rng: random.Random,
        stashes: Optional[Mapping[str, Mapping[str, object]]] = None,
        faults: Optional[FaultInjector] = None,
        flow_name: str = "",
    ):
        self.stage = stage
        self.engine = engine
        self.provenance = provenance
        self.rng = rng
        #: Name of the flow this stage runs in; namespaces shard-cache keys.
        self.flow_name = flow_name
        #: The run's armed fault injector, or None.  Transforms use
        #: :meth:`fault_fires` for fine-grained degradation decisions
        #: (drop a beam, serve stale data) below stage granularity.
        self.faults = faults
        #: Out-of-band results this stage publishes for ancestors-agnostic
        #: consumers: downstream stages (via :meth:`dep_stash`), the final
        #: FlowReport (``report.stashes``), and the stage cache.  Treat the
        #: mapping as frozen once the transform returns.
        self.stash: Dict[str, object] = {}
        self._stashes = stashes if stashes is not None else {}
        self._extra_cpu_seconds = 0.0
        self._fault_records: List[FaultRecord] = []

    def charge_cpu(self, duration: Duration) -> None:
        """Let a stage report extra simulated CPU work beyond the size model."""
        self._extra_cpu_seconds += duration.seconds

    @property
    def shard_executor(self) -> str:
        """Where :meth:`map_shards` will run: ``serial``/``thread``/``process``.

        Transforms consult this to decide how to package shard inputs —
        e.g. wrapping large arrays in
        :class:`~repro.core.shards.SharedArray` only when they are about
        to cross a process boundary.
        """
        return self.engine.shard_executor

    def map_shards(self, fn, items, cache_keys=None, cache_params=None):
        """Fan ``fn`` out over ``items`` on the engine's shard pool.

        Results return in item order for every executor, so a transform
        that merges positionally stays byte-identical across sequential,
        threaded, and process runs.  Under ``executor="process"``, ``fn``
        and each item must be picklable (module-level functions, plain
        data); telemetry the shards emit is forwarded home in item order.

        With ``cache_keys`` (one stable descriptor string per item) and an
        attached engine stage cache, each shard result is memoized under a
        :func:`~repro.core.stagecache.shard_key` content address: items
        seen in a prior run (or a prior incremental window) replay from the
        cache and only never-seen items are computed.  The descriptor must
        cover everything the shard's result depends on beyond
        ``cache_params`` (which should pin the pipeline configuration) —
        seeds, item identity, neighbour-dependent inputs.  Shard traffic is
        counted in ``stage_cache.shard_hits``/``shard_misses``, apart from
        whole-stage hits.
        """
        if cache_keys is None or self.engine.cache is None:
            return self.engine.map_shards(fn, items)
        items = list(items)
        cache_keys = list(cache_keys)
        if len(cache_keys) != len(items):
            raise ExecutionError(
                self.stage.name,
                f"map_shards: {len(items)} items but {len(cache_keys)} cache keys",
            )
        fault_digest = (
            self.engine.faults.digest if self.engine.faults is not None else ""
        )
        fn_name = getattr(fn, "__qualname__", repr(fn))
        keys = [
            shard_key(
                flow_name=self.flow_name,
                stage_name=self.stage.name,
                fn_name=fn_name,
                item_descriptor=descriptor,
                cache_params=cache_params,
                fault_digest=fault_digest,
            )
            for descriptor in cache_keys
        ]
        cache = self.engine.cache
        results: List[object] = []
        missing: List[int] = []
        for index, key in enumerate(keys):
            entry = cache.lookup_shard(key)
            if entry is None:
                missing.append(index)
                results.append(None)
            else:
                results.append(entry.value)
        if missing:
            computed = self.engine.map_shards(fn, [items[i] for i in missing])
            for index, value in zip(missing, computed):
                cache.store_shard(keys[index], value)
                results[index] = value
        return results

    def fault_fires(self, scope: str, target: str, site: str = "") -> List[FaultRecord]:
        """Evaluate an in-transform injection point; record what fired.

        Returns the fired records (empty when no injector is armed) and
        folds them into the stage's accounting so they replay in the
        telemetry stream.  Transforms that fan work out across threads
        must call this in a deterministic order (e.g. merge per-item
        results in item order and record then) — see
        :meth:`record_faults`.
        """
        if self.faults is None:
            return []
        records = self.faults.fire(scope, target, site)
        self._fault_records.extend(records)
        return records

    def record_faults(self, records: List[FaultRecord]) -> None:
        """Fold already-fired records into this stage's accounting.

        For transforms that evaluate injection points on worker threads:
        fire via ``ctx.faults.fire(...)`` inside the worker, then record
        the results here in deterministic (input) order.
        """
        self._fault_records.extend(records)

    def dep_stash(self, stage_name: str) -> Mapping[str, object]:
        """The stash a completed ancestor stage published.

        Available for any stage that finished before this one was started
        (the engine registers stashes before submitting successors, under
        both execution strategies); cached stages restore their recorded
        stash, so hits and real executions are indistinguishable here.
        """
        try:
            return self._stashes[stage_name]
        except KeyError:
            raise ExecutionError(
                self.stage.name, f"no stash published by stage {stage_name!r}"
            ) from None

    @property
    def extra_cpu(self) -> Duration:
        return Duration(self._extra_cpu_seconds)


@dataclass
class _StageResult:
    """What execution hands to the accounting replay for one stage."""

    output: Dataset
    extra_cpu_seconds: float
    stash: Dict[str, object] = field(default_factory=dict)
    from_cache: bool = False
    # Availability accounting, replayed into the telemetry stream in
    # topological order so parallel runs log identically to sequential.
    attempts: int = 1
    retry_wait_seconds: float = 0.0
    faults: List[FaultRecord] = field(default_factory=list)
    degraded: bool = False
    dead_letter: Optional[DeadLetter] = None


class Engine:
    """Topological executor with accounting; sequential or thread-parallel.

    Parameters
    ----------
    provenance:
        Shared provenance store; one is created if not supplied.
    seed:
        Run seed.  Each stage gets its own ``random.Random`` seeded from
        ``(seed, stage name)``, keeping stochastic pipelines reproducible
        under any execution order.
    max_workers:
        ``1`` executes stages sequentially in the calling thread;
        ``N > 1`` runs independent stages concurrently on a thread pool
        while producing byte-identical reports and provenance.
    telemetry:
        The substrate runs emit into.  Each engine owns a private
        :class:`~repro.core.telemetry.Telemetry` by default, so a run's
        event log starts at sequence 0 and is reproducible — pass a shared
        instance to interleave several flows into one stream.
    cache:
        Optional :class:`~repro.core.stagecache.StageCache`.  When
        supplied, each stage is looked up by its content address before
        execution; hits restore the recorded result (output, CPU charge,
        stash) and skip the transform entirely, while provenance,
        accounting, and telemetry replay identically to a real execution.
        Share one cache across engines to make whole reruns warm.
    retry:
        Run-wide default :class:`~repro.core.recovery.RetryPolicy`;
        per-stage ``Stage.retry`` overrides it.  ``None`` means no
        retry: a stage failure aborts the run on the first attempt.
    faults:
        A :class:`~repro.core.faults.FaultPlan` (armed privately) or an
        already-armed :class:`~repro.core.faults.FaultInjector` (shared —
        the resume idiom, and how pipelines aim one plan at their
        storage/transport shims too).  The plan digest salts every
        stage-cache key.
    """

    def __init__(
        self,
        provenance: Optional[ProvenanceStore] = None,
        seed: int = 0,
        max_workers: int = 1,
        telemetry: Optional[Telemetry] = None,
        cache: Optional[StageCache] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
        executor: str = "thread",
    ):
        if max_workers < 1:
            raise ExecutionError("engine", f"max_workers must be >= 1, got {max_workers}")
        if executor not in ("thread", "process"):
            raise ExecutionError(
                "engine",
                f"executor must be 'thread' or 'process', got {executor!r}",
            )
        self.provenance = provenance if provenance is not None else ProvenanceStore()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.cache = cache
        self.retry = retry if retry is not None else NO_RETRY
        if isinstance(faults, FaultPlan):
            faults = faults.arm(clock=self.telemetry.clock)
        self.faults: Optional[FaultInjector] = faults
        #: Dead letters this engine produced: degraded stages append
        #: during the accounting replay (deterministic order); fatal
        #: exhaustions append as the run aborts.
        self.dead_letters: List[DeadLetter] = []
        self._seed = seed
        self._max_workers = int(max_workers)
        self._executor = executor
        self._shard_pool: Optional[ShardPool] = None

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def executor(self) -> str:
        """The shard executor this engine fans transform work out on."""
        return self._executor

    @property
    def shard_executor(self) -> str:
        """Effective executor for :meth:`map_shards` (``serial`` when
        ``max_workers == 1``)."""
        if self._max_workers == 1:
            return "serial"
        return self._executor

    def map_shards(self, fn, items) -> List:
        """Fan ``fn`` over ``items`` on this run's shard pool, item-ordered.

        Stage *scheduling* always stays on threads (transforms are
        closures over live pipeline state and cannot cross a process
        boundary); what ``executor="process"`` moves to worker processes
        is this call — the data-parallel inner loop of a transform, whose
        shard functions are module-level and picklable.  Outside a run
        (no pool), shards execute inline.
        """
        if self._shard_pool is None:
            return [fn(item) for item in items]
        return self._shard_pool.map(fn, items)

    def run(
        self,
        flow: DataFlow,
        inputs: Optional[Mapping[str, Dataset]] = None,
    ) -> FlowReport:
        """Execute ``flow`` and return its :class:`FlowReport`.

        ``inputs`` optionally maps *source stage names* to seed datasets;
        source stages receive them under the key ``"input"``.  Seed
        datasets count toward live storage from the start of the run until
        their consumer stage completes (externally-fed data occupies disk
        just as stage outputs do).
        """
        flow.validate()
        order = flow.topological_order()
        seeds = self._seed_datasets(flow, order, inputs)
        # Reserve provenance ids in topological order so the lineage graph
        # is numbered identically regardless of execution strategy.
        reserved = {name: self.provenance.reserve_id() for name in order}
        stashes: Dict[str, Mapping[str, object]] = {}
        self._shard_pool = ShardPool(
            executor=self._executor, workers=self._max_workers
        )
        try:
            if self._max_workers == 1:
                results = self._execute_sequential(
                    flow, order, seeds, reserved, stashes
                )
            else:
                results = self._execute_parallel(
                    flow, order, seeds, reserved, stashes
                )
        finally:
            pool, self._shard_pool = self._shard_pool, None
            pool.close()
        return self._build_report(flow, order, seeds, reserved, results, stashes)

    # -- execution ---------------------------------------------------------
    @staticmethod
    def _seed_datasets(
        flow: DataFlow,
        order: List[str],
        inputs: Optional[Mapping[str, Dataset]],
    ) -> Dict[str, Dataset]:
        """Seed datasets keyed by the source stage that consumes them."""
        if not inputs:
            return {}
        return {
            name: inputs[name]
            for name in order
            if name in inputs and not flow.predecessors(name)
        }

    @staticmethod
    def _stage_inputs(
        flow: DataFlow,
        name: str,
        seeds: Mapping[str, Dataset],
        results: Mapping[str, _StageResult],
    ) -> Dict[str, Dataset]:
        stage_inputs = {
            pred: results[pred].output for pred in flow.predecessors(name)
        }
        if not stage_inputs and name in seeds:
            stage_inputs = {"input": seeds[name]}
        return stage_inputs

    def _attempt_stage(
        self,
        flow: DataFlow,
        name: str,
        stage_inputs: Mapping[str, Dataset],
        stashes: Mapping[str, Mapping[str, object]],
        faults: List[FaultRecord],
    ) -> Tuple[Dataset, StageContext]:
        """One attempt: consult the injector, then run the transform.

        Injected faults fire *before* the transform executes (a scheduler
        or environment failure, not a mid-write one), so a failed attempt
        leaves no partial side effects behind for the retry to trip over.
        ``"delay"`` faults are recorded and charged by the caller.
        """
        stage = flow.stages[name]
        rng = random.Random(_stage_seed(self._seed, name))
        context = StageContext(
            stage, self, self.provenance, rng, stashes, faults=self.faults,
            flow_name=flow.name,
        )
        if self.faults is not None:
            try:
                faults.extend(
                    self.faults.check("stage", f"{flow.name}/{name}", stage.site)
                )
            except InjectedFault as exc:
                if exc.record is not None:
                    faults.append(exc.record)
                raise
        output = stage.fn(stage_inputs, context)
        faults.extend(context._fault_records)
        if not isinstance(output, Dataset):
            raise ExecutionError(
                name, f"stage returned {type(output).__name__}, expected Dataset"
            )
        return output, context

    def _run_stage(
        self,
        flow: DataFlow,
        name: str,
        stage_inputs: Mapping[str, Dataset],
        stashes: Mapping[str, Mapping[str, object]],
    ) -> _StageResult:
        """Run one stage under its retry policy; account every attempt.

        Each attempt gets a fresh context and the *same* per-stage RNG
        seed, so the attempt that finally succeeds is byte-identical to
        a first-try success.  Backoff accumulates into the result as
        simulated stall, replayed onto the clock during accounting.
        """
        stage = flow.stages[name]
        policy = stage.retry if stage.retry is not None else self.retry
        faults: List[FaultRecord] = []
        wait_seconds = 0.0
        attempt = 0
        while True:
            attempt += 1
            try:
                output, context = self._attempt_stage(
                    flow, name, stage_inputs, stashes, faults
                )
            except Exception as exc:  # noqa: BLE001 - classified below
                error = exc
            else:
                wait_seconds += delay_seconds(faults)
                return _StageResult(
                    output=output,
                    extra_cpu_seconds=context.extra_cpu.seconds,
                    stash=context.stash,
                    attempts=attempt,
                    retry_wait_seconds=wait_seconds,
                    faults=faults,
                )
            if attempt < policy.max_attempts:
                wait_seconds += policy.delay_for(attempt)
                continue
            # Retries exhausted: dead-letter, then degrade or abort.
            letter = DeadLetter(
                flow=flow.name,
                stage=name,
                site=stage.site,
                attempts=attempt,
                error=str(error),
                retry_wait_s=wait_seconds,
                degraded=policy.fallback is not None,
            )
            if policy.fallback is None:
                self.dead_letters.append(letter)
                if isinstance(error, ExecutionError):
                    raise error
                if attempt == 1:
                    raise ExecutionError(name, str(error)) from error
                raise ExecutionError(
                    name, f"{error} (after {attempt} attempts)"
                ) from error
            fallback_context = StageContext(
                stage,
                self,
                self.provenance,
                random.Random(_stage_seed(self._seed, name)),
                stashes,
                faults=self.faults,
                flow_name=flow.name,
            )
            try:
                output = policy.fallback(stage_inputs, fallback_context, error)
            except Exception as exc:  # noqa: BLE001 - wrap with stage identity
                self.dead_letters.append(letter)
                raise ExecutionError(
                    name, f"fallback failed after {attempt} attempts: {exc}"
                ) from exc
            if not isinstance(output, Dataset):
                self.dead_letters.append(letter)
                raise ExecutionError(
                    name,
                    f"fallback returned {type(output).__name__}, expected Dataset",
                )
            faults.extend(fallback_context._fault_records)
            wait_seconds += delay_seconds(faults)
            return _StageResult(
                output=output,
                extra_cpu_seconds=fallback_context.extra_cpu.seconds,
                stash=fallback_context.stash,
                attempts=attempt,
                retry_wait_seconds=wait_seconds,
                faults=faults,
                degraded=True,
                dead_letter=letter,
            )

    # -- stage cache -------------------------------------------------------
    def _cache_descriptor(self, slot: str, dataset: Dataset) -> str:
        """Content description of one stage input for cache keying.

        Extends the provenance descriptor (name@version) with the input's
        stamp digest and exact byte size: the digest covers the entire
        upstream derivation history (the paper's MD5-comparison test), and
        the size catches seed datasets fed from outside the flow, which
        carry no stamp.

        Two different cases must not be conflated: a dataset with *no*
        provenance id is a legitimate seed fed from outside the flow
        (keyed ``"unstamped"``); a dataset that *claims* an id whose
        digest cannot be resolved has a broken lineage, and keying it
        ``"unstamped"`` too would let two different datasets collide onto
        one cache key.  The latter raises
        :class:`~repro.core.errors.UnverifiableInputError` — the lookup
        path treats the stage as uncacheable and counts the event.
        """
        if dataset.provenance_id is None:
            digest = "unstamped"
        else:
            try:
                digest = self.provenance.digest_of(dataset.provenance_id)
            except ProvenanceError as exc:
                raise UnverifiableInputError(
                    f"input {slot!r} ({_input_descriptor(dataset)}) claims "
                    f"provenance id {dataset.provenance_id!r} but its stamp "
                    f"digest cannot be resolved: {exc}"
                ) from exc
        return f"{slot}={_input_descriptor(dataset)}#{digest}:{dataset.size.bytes!r}"

    def _cache_key(
        self,
        flow: DataFlow,
        name: str,
        stage_inputs: Mapping[str, Dataset],
    ) -> str:
        stage = flow.stages[name]
        return stage_key(
            flow_name=flow.name,
            stage_name=name,
            site=stage.site,
            cpu_seconds_per_gb=stage.cpu_seconds_per_gb,
            stage_seed=_stage_seed(self._seed, name),
            input_descriptors=[
                self._cache_descriptor(slot, dataset)
                for slot, dataset in stage_inputs.items()
            ],
            cache_params=stage.cache_params,
            fault_digest=self.faults.digest if self.faults is not None else "",
        )

    def _cache_lookup(
        self,
        flow: DataFlow,
        name: str,
        stage_inputs: Mapping[str, Dataset],
    ) -> Tuple[Optional[str], Optional[_StageResult]]:
        """Try to service a stage from the cache.

        Returns ``(key, result)``: key is None when no cache is attached
        or the stage is uncacheable (an input's stamp digest cannot be
        resolved — such stages always execute and are never stored);
        result is None on a miss.  A hit rebuilds a fresh output Dataset
        (re-committed with this run's reserved provenance id) and restores
        the recorded stash.
        """
        if self.cache is None:
            return None, None
        try:
            key = self._cache_key(flow, name, stage_inputs)
        except UnverifiableInputError:
            self.cache.registry.counter("stage_cache.unverified_inputs").inc()
            return None, None
        entry = self.cache.lookup(key)
        if entry is None:
            return key, None
        return key, _StageResult(
            output=entry.rebuild_output(),
            extra_cpu_seconds=entry.extra_cpu_seconds,
            stash=dict(entry.stash),
            from_cache=True,
            attempts=entry.attempts,
            retry_wait_seconds=entry.retry_wait_seconds,
            faults=[FaultRecord.from_attrs(dict(attrs)) for attrs in entry.fault_attrs],
            degraded=entry.degraded,
            dead_letter=(
                DeadLetter(**entry.dead_letter_attrs)  # type: ignore[arg-type]
                if entry.dead_letter_attrs is not None
                else None
            ),
        )

    def _cache_store(self, key: Optional[str], result: _StageResult) -> None:
        if self.cache is None or key is None or result.from_cache:
            return
        self.cache.store(
            key,
            CachedStage.capture(
                result.output,
                result.extra_cpu_seconds,
                result.stash,
                attempts=result.attempts,
                retry_wait_seconds=result.retry_wait_seconds,
                degraded=result.degraded,
                fault_attrs=[record.as_attrs() for record in result.faults],
                dead_letter_attrs=(
                    result.dead_letter.as_attrs()
                    if result.dead_letter is not None
                    else None
                ),
            ),
        )

    def _commit(
        self,
        flow: DataFlow,
        name: str,
        stage_inputs: Mapping[str, Dataset],
        result: _StageResult,
        reserved: Mapping[str, str],
    ) -> None:
        """Record provenance for a completed stage.

        Runs before any successor is started, so downstream transforms see
        their inputs' ``provenance_id`` exactly as under sequential
        execution.
        """
        stage = flow.stages[name]
        step = ProcessingStep.create(
            module=name,
            version=result.output.version,
            params={"site": stage.site},
            inputs=sorted(_input_descriptor(ds) for ds in stage_inputs.values()),
        )
        parents = [reserved[pred] for pred in flow.predecessors(name)]
        record = self.provenance.record(
            artifact=result.output.name,
            step=step,
            parents=parents,
            record_id=reserved[name],
        )
        result.output.provenance_id = record.record_id

    def _execute_sequential(
        self,
        flow: DataFlow,
        order: List[str],
        seeds: Mapping[str, Dataset],
        reserved: Mapping[str, str],
        stashes: Dict[str, Mapping[str, object]],
    ) -> Dict[str, _StageResult]:
        results: Dict[str, _StageResult] = {}
        for name in order:
            stage_inputs = self._stage_inputs(flow, name, seeds, results)
            key, result = self._cache_lookup(flow, name, stage_inputs)
            if result is None:
                result = self._run_stage(flow, name, stage_inputs, stashes)
            self._commit(flow, name, stage_inputs, result, reserved)
            results[name] = result
            stashes[name] = result.stash
            self._cache_store(key, result)
        return results

    def _execute_parallel(
        self,
        flow: DataFlow,
        order: List[str],
        seeds: Mapping[str, Dataset],
        reserved: Mapping[str, str],
        stashes: Dict[str, Mapping[str, object]],
    ) -> Dict[str, _StageResult]:
        """Run independent stages concurrently; commit on completion.

        The scheduler (this thread) owns all bookkeeping: workers only
        execute stage transforms, so no shared mutable state crosses the
        pool boundary except what stage functions themselves share.  Cache
        lookups also happen here, at submit time: a hit completes the
        stage synchronously (never reaching the pool) and may ready
        further stages, so a fully warm run finishes without a single
        worker dispatch.
        """
        results: Dict[str, _StageResult] = {}
        remaining_preds = {name: len(flow.predecessors(name)) for name in order}
        failures: Dict[str, ExecutionError] = {}
        # A cache hit at submit time completes a stage synchronously and can
        # drop a successor's pred-count to zero before the initial seeding
        # loop reaches it; `scheduled` keeps any stage from running twice.
        scheduled: set = set()
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            pending: Dict[Future, Tuple[str, Dict[str, Dataset], Optional[str]]] = {}

            def complete(
                name: str,
                stage_inputs: Dict[str, Dataset],
                key: Optional[str],
                result: _StageResult,
            ) -> List[str]:
                """Commit a finished stage; return newly-ready successors."""
                self._commit(flow, name, stage_inputs, result, reserved)
                results[name] = result
                stashes[name] = result.stash
                self._cache_store(key, result)
                ready = []
                for succ in flow.successors(name):
                    remaining_preds[succ] -= 1
                    if remaining_preds[succ] == 0:
                        ready.append(succ)
                return ready

            def submit(name: str) -> None:
                worklist = [name]
                while worklist:
                    current = worklist.pop(0)
                    if current in scheduled:
                        continue
                    scheduled.add(current)
                    stage_inputs = self._stage_inputs(flow, current, seeds, results)
                    key, result = self._cache_lookup(flow, current, stage_inputs)
                    if result is not None:
                        ready = complete(current, stage_inputs, key, result)
                        if not failures:
                            worklist.extend(ready)
                        continue
                    future = pool.submit(
                        self._run_stage, flow, current, stage_inputs, stashes
                    )
                    pending[future] = (current, stage_inputs, key)

            for name in order:
                if remaining_preds[name] == 0:
                    submit(name)
            while pending:
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    name, stage_inputs, key = pending.pop(future)
                    try:
                        result = future.result()
                    except ExecutionError as exc:
                        failures[name] = exc
                        continue
                    for ready_name in complete(name, stage_inputs, key, result):
                        if not failures:
                            submit(ready_name)
        if failures:
            # Surface the failure a sequential run would have hit first.
            first = min(failures, key=order.index)
            raise failures[first]
        return results

    # -- accounting --------------------------------------------------------
    def _build_report(
        self,
        flow: DataFlow,
        order: List[str],
        seeds: Mapping[str, Dataset],
        reserved: Mapping[str, str],
        results: Mapping[str, _StageResult],
        stashes: Mapping[str, Mapping[str, object]],
    ) -> FlowReport:
        """Replay accounting over completed stages in topological order,
        emitting the telemetry event stream, then rebuild the report as a
        view over that stream — identical output for any completion order."""
        telemetry = self.telemetry
        metrics = telemetry.registry
        start_index = len(telemetry)
        # Reference counts drive the live-storage high-water accounting: a
        # stage output stays "on disk" until every consumer has run, and a
        # seed dataset is live from the start until its consumer completes.
        remaining_consumers = {name: len(flow.successors(name)) for name in order}
        live_bytes = sum(dataset.size.bytes for dataset in seeds.values())
        peak_bytes = live_bytes
        total_cpu_seconds = 0.0
        with telemetry.span(flow.name):
            telemetry.emit(
                "flow.start", flow.name, stages=len(order), seed_bytes=live_bytes
            )
            for name in order:
                stage = flow.stages[name]
                result = results[name]
                stage_inputs = self._stage_inputs(flow, name, seeds, results)
                input_size = DataSize(
                    sum(dataset.size.bytes for dataset in stage_inputs.values())
                )
                cpu_seconds = (
                    stage.cpu_seconds_per_gb * input_size.gb + result.extra_cpu_seconds
                )
                total_cpu_seconds += cpu_seconds

                with telemetry.span(name, site=stage.site):
                    telemetry.emit(
                        "stage.start",
                        name,
                        site=stage.site,
                        input_bytes=input_size.bytes,
                    )
                    for record in result.faults:
                        # ``kind`` is the event kind's parameter name, so
                        # the fault's own kind travels as ``fault_kind``.
                        fault_attrs = record.as_attrs()
                        fault_attrs["fault_kind"] = fault_attrs.pop("kind")
                        telemetry.emit("fault.injected", name, **fault_attrs)
                        metrics.counter("engine.faults_injected").inc()
                    if result.attempts > 1:
                        telemetry.emit(
                            "stage.retry",
                            name,
                            site=stage.site,
                            attempts=result.attempts,
                            retries=result.attempts - 1,
                            retry_wait_s=result.retry_wait_seconds,
                        )
                        metrics.counter("engine.retries").inc(result.attempts - 1)
                    if result.retry_wait_seconds:
                        # Backoff and injected delays are simulated stall:
                        # they advance the clock without charging CPU.
                        telemetry.clock.advance(result.retry_wait_seconds)
                    telemetry.clock.advance(cpu_seconds)
                    live_bytes += result.output.size.bytes
                    peak_bytes = max(peak_bytes, live_bytes)
                    if name in seeds:
                        live_bytes -= seeds[name].size.bytes
                    for pred in flow.predecessors(name):
                        remaining_consumers[pred] -= 1
                        if remaining_consumers[pred] == 0:
                            live_bytes -= results[pred].output.size.bytes
                    telemetry.emit(
                        "bytes.produced",
                        name,
                        bytes=result.output.size.bytes,
                        artifact=result.output.name,
                    )
                    telemetry.emit(
                        "provenance.record",
                        name,
                        record_id=reserved[name],
                        artifact=result.output.name,
                        parents=[reserved[pred] for pred in flow.predecessors(name)],
                    )
                    if result.degraded:
                        letter = result.dead_letter
                        if letter is None:
                            letter = DeadLetter(
                                flow=flow.name,
                                stage=name,
                                site=stage.site,
                                attempts=result.attempts,
                                error="(degraded result replayed from cache)",
                                retry_wait_s=result.retry_wait_seconds,
                                degraded=True,
                            )
                        self.dead_letters.append(letter)
                        metrics.counter("engine.dead_letters").inc()
                        telemetry.emit(
                            "stage.degraded", name, site=stage.site,
                            attempts=result.attempts,
                        )
                        telemetry.emit(
                            "stage.dead_letter", name, **letter.as_attrs()
                        )
                    telemetry.emit(
                        "stage.finish",
                        name,
                        site=stage.site,
                        input_bytes=input_size.bytes,
                        output_bytes=result.output.size.bytes,
                        cpu_seconds=cpu_seconds,
                        provenance_id=reserved[name],
                        live_bytes=live_bytes,
                        attempts=result.attempts,
                        retry_wait_s=result.retry_wait_seconds,
                        degraded=result.degraded,
                    )
                metrics.counter("engine.stages").inc()
                metrics.counter("engine.bytes_produced").inc(result.output.size.bytes)
                metrics.counter("engine.cpu_seconds").inc(cpu_seconds)
                metrics.highwater("engine.peak_live_bytes").observe(peak_bytes)
            telemetry.emit(
                "flow.finish",
                flow.name,
                stages=len(order),
                peak_bytes=peak_bytes,
                total_cpu_seconds=total_cpu_seconds,
            )

        # The report is a *view* over the event slice this run emitted:
        # every StageReport row and the high-water mark are read back from
        # the log, so a persisted copy regenerates the report exactly.
        run_events = telemetry.events(start_index)
        report = FlowReport(
            flow_name=flow.name,
            provenance=self.provenance,
            telemetry=telemetry,
            events=run_events,
        )
        for row in stage_rows_from_log(run_events):
            report.stages.append(
                StageReport(
                    name=str(row["name"]),
                    site=str(row["site"]),
                    input_size=DataSize(float(row["input_bytes"])),
                    output_size=DataSize(float(row["output_bytes"])),
                    cpu_time=Duration(float(row["cpu_seconds"])),
                    provenance_id=str(row["provenance_id"]),
                    attempts=int(row["attempts"]),  # type: ignore[arg-type]
                    retry_wait=Duration(float(row["retry_wait_s"])),  # type: ignore[arg-type]
                    degraded=bool(row["degraded"]),
                )
            )
        report.outputs = {name: results[name].output for name in flow.sinks()}
        report.stashes = dict(stashes)
        report.peak_live_storage = peak_storage_from_log(run_events)
        report.executed_stages = [
            name for name in order if not results[name].from_cache
        ]
        report.cached_stages = [
            name for name in order if results[name].from_cache
        ]
        return report


class ParallelEngine(Engine):
    """An :class:`Engine` preset that fans independent stages out across a
    thread pool.  ``ParallelEngine(max_workers=N)`` ==
    ``Engine(max_workers=N)``; the subclass exists so call sites can name
    the execution strategy they require."""

    def __init__(
        self,
        provenance: Optional[ProvenanceStore] = None,
        seed: int = 0,
        max_workers: int = 4,
        telemetry: Optional[Telemetry] = None,
        cache: Optional[StageCache] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
        executor: str = "thread",
    ):
        super().__init__(
            provenance=provenance,
            seed=seed,
            max_workers=max_workers,
            telemetry=telemetry,
            cache=cache,
            retry=retry,
            faults=faults,
            executor=executor,
        )


class ProcessEngine(ParallelEngine):
    """An :class:`Engine` preset that shards transform work across worker
    *processes* — ``ProcessEngine(max_workers=N)`` ==
    ``Engine(max_workers=N, executor="process")``.

    Stage scheduling stays on threads (transforms close over live
    pipeline state); the data-parallel inner loops that transforms route
    through :meth:`StageContext.map_shards` — per-pointing searches,
    per-run reconstruction batches, per-snapshot packing — run in a
    ``ProcessPoolExecutor``, with large arrays crossing via shared memory
    and child telemetry forwarded home in shard order.  The determinism
    contract is unchanged: reports, provenance, and canonical event logs
    are byte-identical to sequential and thread-parallel runs.
    """

    def __init__(
        self,
        provenance: Optional[ProvenanceStore] = None,
        seed: int = 0,
        max_workers: int = 4,
        telemetry: Optional[Telemetry] = None,
        cache: Optional[StageCache] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    ):
        super().__init__(
            provenance=provenance,
            seed=seed,
            max_workers=max_workers,
            telemetry=telemetry,
            cache=cache,
            retry=retry,
            faults=faults,
            executor="process",
        )
