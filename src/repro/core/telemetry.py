"""Structured telemetry: one substrate for every book the paper keeps.

The three case studies live or die by bookkeeping — bytes per stage, tape
recalls, transfer rates, "50 to 200 processors" — and the reproduction
used to keep those books in half a dozen disconnected counter structs.
This module is the single substrate they all now share:

* a process-local **event bus** of typed, ordered
  :class:`TelemetryEvent` records (``stage.start/finish``,
  ``bytes.produced``, ``storage.write/recall/evict``,
  ``transfer.start/finish``, ``provenance.record``, ...);
* a **metrics registry** of named instruments — :class:`Counter`,
  :class:`Gauge`, and :class:`HighWaterMark` — that subsystem stats
  properties (``HsmStats``, ``TapeStats``, ingest stats, service
  counters) are thin adapters over;
* nested **trace spans** stamped by a :class:`SimClock` (simulated
  seconds, not wall-clock), so a log is reproducible run to run;
* a **replayable JSONL log** — :func:`write_event_log` /
  :func:`read_event_log` — plus view functions
  (:func:`flow_summary_from_log`, :func:`stage_rows_from_log`,
  :func:`peak_storage_from_log`) that regenerate a flow report offline
  from a persisted log, with no engine or pipeline objects in sight.

Determinism contract: every event carries a ``wall_time`` field (the only
wall-clock field anywhere in the stream) and :meth:`TelemetryEvent.canonical`
strips it.  Two runs of the same flow — sequential or thread-parallel —
produce byte-identical canonical logs.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.errors import TelemetryError
from repro.core.units import DataSize, Duration

#: The typed vocabulary.  Emitting an unknown kind is a programming error:
#: the whole point of a shared substrate is that consumers can rely on the
#: schema of each kind.
EVENT_KINDS = frozenset(
    {
        "flow.start",
        "flow.finish",
        "stage.start",
        "stage.finish",
        "bytes.produced",
        "storage.write",
        "storage.recall",
        "storage.evict",
        "transfer.start",
        "transfer.finish",
        "provenance.record",
        "span.start",
        "span.finish",
        "service.call",
        "integrity.verify",
        "fault.injected",
        "stage.retry",
        "stage.degraded",
        "stage.dead_letter",
        "window.open",
        "window.close",
        "window.reopen",
        "workload.request",
        "readcache.hit",
        "readcache.miss",
        "readcache.admit",
        "readcache.evict",
        "serve.rejected",
        "ops.rollup",
        "ops.report",
        "alert.raised",
        "alert.cleared",
    }
)

_Scalar = Union[str, int, float, bool, None]


def _freeze_attr(value: object) -> object:
    """Coerce an attribute value to a JSON-stable, hashable form."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, DataSize):
        return value.bytes
    if isinstance(value, Duration):
        return value.seconds
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_attr(item) for item in value)
    return str(value)


def _thaw(value: object) -> object:
    return list(value) if isinstance(value, tuple) else value


@dataclass(frozen=True)
class TelemetryEvent:
    """One record on the bus.

    ``sim_time`` is the emitting :class:`SimClock`'s virtual seconds;
    ``wall_time`` is the only wall-clock field and is dropped by
    :meth:`canonical` so logs can be compared across runs.
    """

    seq: int
    kind: str
    name: str
    sim_time: float
    attrs: Tuple[Tuple[str, object], ...] = ()
    span: Tuple[str, ...] = ()
    wall_time: float = 0.0

    def attr(self, key: str, default: object = None) -> object:
        for attr_key, value in self.attrs:
            if attr_key == key:
                return _thaw(value)
        return default

    def canonical(self) -> Dict[str, object]:
        """Stable dict form with every wall-clock field stripped."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "sim_time": self.sim_time,
            "span": list(self.span),
            "attrs": {key: _thaw(value) for key, value in self.attrs},
        }

    def to_dict(self) -> Dict[str, object]:
        record = self.canonical()
        record["wall_time"] = self.wall_time
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "TelemetryEvent":
        try:
            attrs = record.get("attrs", {})
            return cls(
                seq=int(record["seq"]),  # type: ignore[arg-type]
                kind=str(record["kind"]),
                name=str(record["name"]),
                sim_time=float(record["sim_time"]),  # type: ignore[arg-type]
                attrs=tuple(
                    (str(key), _freeze_attr(value))
                    for key, value in attrs.items()  # type: ignore[union-attr]
                ),
                span=tuple(str(part) for part in record.get("span", ())),  # type: ignore[union-attr]
                wall_time=float(record.get("wall_time", 0.0)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed telemetry record: {exc}") from exc


class SimClock:
    """A simulated clock: starts at zero, advances only when told to.

    The engine advances it by each stage's simulated CPU seconds while it
    replays accounting, so span and stage timestamps mean "simulated
    seconds into the run" and are identical across execution strategies.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise TelemetryError(f"cannot advance the clock by {seconds}")
        with self._lock:
            self._now += seconds
            return self._now

    def reset(self, to: float = 0.0) -> None:
        with self._lock:
            self._now = float(to)


# -- instruments ---------------------------------------------------------
class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._value = 0.0
        self._lock = lock

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> float:
        if amount < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount
            return self._value


class Gauge:
    """A value that can move both ways (live bytes, busy seconds)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._value = 0.0
        self._lock = lock

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> float:
        with self._lock:
            self._value = float(value)
            return self._value

    def add(self, amount: float) -> float:
        with self._lock:
            self._value += amount
            return self._value


class HighWaterMark:
    """Tracks the maximum a quantity ever reached (peak live storage)."""

    __slots__ = ("name", "_peak", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._peak = 0.0
        self._lock = lock

    @property
    def peak(self) -> float:
        return self._peak

    def observe(self, value: float) -> float:
        with self._lock:
            if value > self._peak:
                self._peak = float(value)
            return self._peak


Instrument = Union[Counter, Gauge, HighWaterMark]


class MetricsRegistry:
    """Named instruments, created on first use.

    A name is bound to exactly one instrument type for the registry's
    lifetime; asking for the same name as a different type raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, factory: Callable[..., Instrument]) -> Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory(name, threading.Lock())
                self._instruments[name] = instrument
            elif not isinstance(instrument, factory):  # type: ignore[arg-type]
                raise TelemetryError(
                    f"instrument {name!r} is a {type(instrument).__name__}, "
                    f"not a {factory.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def highwater(self, name: str) -> HighWaterMark:
        return self._get_or_create(name, HighWaterMark)  # type: ignore[return-value]

    def value(self, name: str, default: float = 0.0) -> float:
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, HighWaterMark):
            return instrument.peak
        return instrument.value

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def as_dict(self) -> Dict[str, float]:
        return {name: self.value(name) for name in self.names()}

    def rows(self, prefix: str = "") -> List[Dict[str, object]]:
        """Benchmark-table rows (``metric``/``value``) for instruments whose
        name starts with ``prefix`` — the bridge from live counters to the
        ``report_rows`` tables the benchmark suite emits."""
        return [
            {"metric": name, "value": self.value(name)}
            for name in self.names()
            if name.startswith(prefix)
        ]

    # -- cross-process transfer ------------------------------------------
    def export(self) -> Dict[str, Tuple[str, float]]:
        """Picklable snapshot ``{name: (instrument type, value)}``.

        The transfer format for moving a worker process's registry home:
        plain strings and floats, nothing that needs this module on the
        unpickling side.
        """
        with self._lock:
            instruments = list(self._instruments.items())
        snapshot: Dict[str, Tuple[str, float]] = {}
        for name, instrument in instruments:
            if isinstance(instrument, Counter):
                snapshot[name] = ("counter", instrument.value)
            elif isinstance(instrument, Gauge):
                snapshot[name] = ("gauge", instrument.value)
            else:
                snapshot[name] = ("highwater", instrument.peak)
        return snapshot

    def absorb(self, snapshot: Mapping[str, Tuple[str, float]]) -> None:
        """Merge an :meth:`export` snapshot into this registry.

        Counters accumulate (a child's total is added), gauges adopt the
        snapshot value (last write wins), high-water marks observe it.
        Names are merged in sorted order so instrument creation order —
        and therefore :meth:`names`/:meth:`as_dict` — is deterministic no
        matter which worker finished first.
        """
        for name in sorted(snapshot):
            kind, value = snapshot[name]
            if kind == "counter":
                self.counter(name).inc(float(value))
            elif kind == "gauge":
                self.gauge(name).set(float(value))
            elif kind == "highwater":
                self.highwater(name).observe(float(value))
            else:
                raise TelemetryError(
                    f"cannot absorb unknown instrument type {kind!r} for {name!r}"
                )


# -- the bus -------------------------------------------------------------
class Telemetry:
    """The process-local substrate: event bus + registry + clock + spans.

    Emission is thread-safe (sequence numbers and the log are guarded by
    one lock); span nesting is tracked per thread so a worker pool cannot
    corrupt another thread's span path.
    """

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self.registry = MetricsRegistry()
        self._events: List[TelemetryEvent] = []
        self._lock = threading.Lock()
        self._subscribers: List[Callable[[TelemetryEvent], None]] = []
        self._spans = threading.local()

    # -- events ----------------------------------------------------------
    def emit(self, kind: str, name: str = "", **attrs: object) -> TelemetryEvent:
        if kind not in EVENT_KINDS:
            raise TelemetryError(
                f"unknown event kind {kind!r}; expected one of {sorted(EVENT_KINDS)}"
            )
        frozen = tuple(sorted((key, _freeze_attr(value)) for key, value in attrs.items()))
        span_path = tuple(getattr(self._spans, "stack", ()))
        with self._lock:
            event = TelemetryEvent(
                seq=len(self._events),
                kind=kind,
                name=name,
                sim_time=self.clock.now,
                attrs=frozen,
                span=span_path,
                wall_time=time.time(),
            )
            self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        self._subscribers.append(callback)

    def events(self, start: int = 0, kind: Optional[str] = None) -> List[TelemetryEvent]:
        with self._lock:
            window = self._events[start:]
        if kind is None:
            return window
        return [event for event in window if event.kind == kind]

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def canonical_log(self, start: int = 0) -> List[Dict[str, object]]:
        return [event.canonical() for event in self.events(start)]

    # -- spans -----------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[TelemetryEvent]:
        """Nested trace span; emits ``span.start``/``span.finish``.

        The finish event records the span's simulated duration — the
        clock delta between entry and exit.
        """
        stack: List[str] = getattr(self._spans, "stack", None) or []
        started = self.clock.now
        start_event = self.emit("span.start", name, depth=len(stack), **attrs)
        self._spans.stack = stack + [name]
        try:
            yield start_event
        finally:
            self._spans.stack = stack
            self.emit(
                "span.finish",
                name,
                depth=len(stack),
                elapsed_s=self.clock.now - started,
                **attrs,
            )


# -- process default -----------------------------------------------------
_default_lock = threading.Lock()
_default: Optional[Telemetry] = None


def get_telemetry() -> Telemetry:
    """The process-local default substrate (created on first use).

    Subsystems that are not handed an explicit :class:`Telemetry` publish
    here, so one operational stream covers a whole process by default.
    The engine deliberately does *not* use it: each engine owns a private
    instance so a run's log is self-contained and deterministic.
    """
    global _default
    with _default_lock:
        if _default is None:
            _default = Telemetry()
        return _default


def set_telemetry(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install (or, with ``None``, reset) the process default; returns the old one."""
    global _default
    with _default_lock:
        previous = _default
        _default = telemetry
        return previous


@contextmanager
def telemetry_session(telemetry: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """Scoped default-telemetry override (tests, benchmark isolation)."""
    session = telemetry if telemetry is not None else Telemetry()
    previous = set_telemetry(session)
    try:
        yield session
    finally:
        set_telemetry(previous)


# -- child-process event forwarding ---------------------------------------
# A worker process cannot emit onto the parent's bus, so shard execution
# runs each unit of work under a fresh process-default substrate, captures
# what it emitted, and the parent replays it in shard order.  The replay
# assigns fresh sequence numbers from the parent's bus and timestamps from
# the parent's clock — exactly what a thread-mode shard emitting directly
# would have gotten — so thread and process runs forward to identical
# canonical logs.
def capture_events(
    fn: Callable[[], object],
) -> Tuple[object, List[TelemetryEvent], Dict[str, Tuple[str, float]]]:
    """Run ``fn`` under a private default substrate; return what it emitted.

    Returns ``(fn's result, emitted events, registry export)``.
    """
    with telemetry_session() as session:
        value = fn()
        return value, session.events(), session.registry.export()


def forward_events(
    telemetry: Telemetry,
    events: Iterable[Union[TelemetryEvent, Mapping[str, object]]],
    counters: Optional[Mapping[str, Tuple[str, float]]] = None,
) -> List[TelemetryEvent]:
    """Re-emit captured child events (objects or dict records) onto a bus.

    Each event lands with a fresh sequence number and the receiving bus's
    clock; the optional ``counters`` snapshot is absorbed afterwards.
    """
    forwarded: List[TelemetryEvent] = []
    for record in events:
        event = (
            record
            if isinstance(record, TelemetryEvent)
            else TelemetryEvent.from_dict(record)
        )
        attrs = {key: _thaw(value) for key, value in event.attrs}
        forwarded.append(telemetry.emit(event.kind, event.name, **attrs))
    if counters:
        telemetry.registry.absorb(counters)
    return forwarded


# -- JSONL persistence ---------------------------------------------------
def write_event_log(
    path: Union[str, Path],
    events: Union[Telemetry, Sequence[TelemetryEvent]],
) -> int:
    """Persist events as one JSON object per line; returns the count."""
    if isinstance(events, Telemetry):
        events = events.events()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
    return len(events)


class EventLog(List[TelemetryEvent]):
    """A loaded event log: a plain event list plus read accounting.

    ``truncated_lines`` counts trailing lines that could not be parsed —
    the signature a writer crashed mid-append and left a torn final
    record.  Such a line is *skipped*, not raised, so an operations
    reader can always serve the intact prefix of a live log; the count
    keeps the skip visible instead of silent.
    """

    __slots__ = ("truncated_lines",)

    def __init__(
        self,
        events: Iterable[TelemetryEvent] = (),
        truncated_lines: int = 0,
    ):
        super().__init__(events)
        self.truncated_lines = truncated_lines


def read_event_log(path: Union[str, Path]) -> EventLog:
    """Load a JSONL event log back into :class:`TelemetryEvent` objects.

    A torn *final* line (crash mid-write) is skipped and accounted in
    the returned log's ``truncated_lines``; invalid JSON anywhere else
    is corruption and still raises :class:`TelemetryError`.
    """
    path = Path(path)
    lines: List[Tuple[int, str]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                lines.append((line_number, line))
    events = EventLog()
    for index, (line_number, line) in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if index == len(lines) - 1:
                events.truncated_lines += 1
                continue
            raise TelemetryError(
                f"{path}:{line_number}: not valid JSON: {exc}"
            ) from exc
        events.append(TelemetryEvent.from_dict(record))
    return events


def strip_wall_clock(
    events: Iterable[TelemetryEvent],
) -> List[Dict[str, object]]:
    """Canonical (comparable) form of a log: wall-clock fields removed."""
    return [event.canonical() for event in events]


# -- views over a flow log -----------------------------------------------
# These functions regenerate engine reports *offline* from a persisted
# log.  They must stay in lock-step with what the engine emits — the
# round-trip is pinned by tests (live FlowReport == replayed report).
def stage_rows_from_log(
    events: Iterable[TelemetryEvent],
) -> List[Dict[str, object]]:
    """Raw per-stage accounting from the ``stage.finish`` events."""
    rows: List[Dict[str, object]] = []
    for event in events:
        if event.kind != "stage.finish":
            continue
        rows.append(
            {
                "name": event.name,
                "site": event.attr("site"),
                "input_bytes": float(event.attr("input_bytes", 0.0)),  # type: ignore[arg-type]
                "output_bytes": float(event.attr("output_bytes", 0.0)),  # type: ignore[arg-type]
                "cpu_seconds": float(event.attr("cpu_seconds", 0.0)),  # type: ignore[arg-type]
                "provenance_id": event.attr("provenance_id"),
                # Availability columns (absent from pre-fault logs, so
                # default to a clean single attempt).
                "attempts": int(event.attr("attempts", 1)),  # type: ignore[arg-type]
                "retry_wait_s": float(event.attr("retry_wait_s", 0.0)),  # type: ignore[arg-type]
                "degraded": bool(event.attr("degraded", False)),
            }
        )
    return rows


def flow_summary_from_log(
    events: Iterable[TelemetryEvent],
) -> List[Dict[str, object]]:
    """Regenerate ``FlowReport.summary_rows()`` from a log alone."""
    return [
        {
            "stage": row["name"],
            "site": row["site"],
            "in": str(DataSize(row["input_bytes"])),  # type: ignore[arg-type]
            "out": str(DataSize(row["output_bytes"])),  # type: ignore[arg-type]
            "cpu": str(Duration(row["cpu_seconds"])),  # type: ignore[arg-type]
            "attempts": row["attempts"],
            "wait": str(Duration(row["retry_wait_s"])),  # type: ignore[arg-type]
            "degraded": row["degraded"],
        }
        for row in stage_rows_from_log(events)
    ]


def peak_storage_from_log(events: Iterable[TelemetryEvent]) -> DataSize:
    """The run's live-storage high-water mark, from ``flow.finish``."""
    for event in events:
        if event.kind == "flow.finish":
            return DataSize(float(event.attr("peak_bytes", 0.0)))  # type: ignore[arg-type]
    raise TelemetryError("log holds no flow.finish event")


def total_cpu_from_log(events: Iterable[TelemetryEvent]) -> Duration:
    """Total simulated CPU across all stages of a logged run."""
    return Duration(
        sum(row["cpu_seconds"] for row in stage_rows_from_log(events))  # type: ignore[misc]
    )


def availability_from_log(events: Iterable[TelemetryEvent]) -> Dict[str, object]:
    """Flow availability accounting regenerated from a persisted log.

    Counts stage completions, retry attempts and their simulated wait,
    injected faults, graceful degradations, and dead letters — the
    columns the resilience experiment (C17) reports.  Works on pre-fault
    logs too: absent attributes read as a clean single attempt.
    """
    summary: Dict[str, object] = {
        "stages": 0,
        "completed": 0,
        "degraded": 0,
        "dead_letters": 0,
        "attempts": 0,
        "faults_injected": 0,
        "retry_wait_s": 0.0,
    }
    for event in events:
        if event.kind == "stage.finish":
            summary["stages"] += 1  # type: ignore[operator]
            summary["completed"] += 1  # type: ignore[operator]
            summary["attempts"] += int(event.attr("attempts", 1))  # type: ignore[arg-type, operator]
            summary["retry_wait_s"] += float(event.attr("retry_wait_s", 0.0))  # type: ignore[arg-type, operator]
            if event.attr("degraded", False):
                summary["degraded"] += 1  # type: ignore[operator]
        elif event.kind == "fault.injected":
            summary["faults_injected"] += 1  # type: ignore[operator]
        elif event.kind == "stage.dead_letter":
            summary["dead_letters"] += 1  # type: ignore[operator]
    return summary
