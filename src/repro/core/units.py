"""Unit-safe quantities used throughout the library.

The paper reasons almost exclusively in data sizes (``14 Terabytes of raw
data``), rates (``250 GB/day``, ``100 Mb/sec``), and durations (``3-hour
observing sessions``).  These three quantity types, with a small algebra
connecting them (size / rate = duration, rate * duration = size), keep the
simulators honest: a bandwidth expressed in megabits per second cannot be
silently added to a disk throughput expressed in megabytes per second.

All quantities are immutable and hashable, compare by magnitude, and render
with a human-friendly unit chosen automatically.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Union

from repro.core.errors import UnitError

# Decimal prefixes: storage vendors, network engineers, and the paper itself
# all use powers of ten (a "Terabyte" of telescope data is 1e12 bytes).
_KB = 1_000.0
_MB = 1_000_000.0
_GB = 1_000_000_000.0
_TB = 1_000_000_000_000.0
_PB = 1_000_000_000_000_000.0

_SECOND = 1.0
_MINUTE = 60.0
_HOUR = 3600.0
_DAY = 86400.0
_WEEK = 7 * _DAY
_YEAR = 365.25 * _DAY

_SIZE_SUFFIXES = {
    "b": 1.0 / 8.0,
    "byte": 1.0,
    "bytes": 1.0,
    "kb": _KB,
    "mb": _MB,
    "gb": _GB,
    "tb": _TB,
    "pb": _PB,
}

_DURATION_SUFFIXES = {
    "s": _SECOND,
    "sec": _SECOND,
    "second": _SECOND,
    "seconds": _SECOND,
    "min": _MINUTE,
    "minute": _MINUTE,
    "minutes": _MINUTE,
    "h": _HOUR,
    "hr": _HOUR,
    "hour": _HOUR,
    "hours": _HOUR,
    "d": _DAY,
    "day": _DAY,
    "days": _DAY,
    "w": _WEEK,
    "week": _WEEK,
    "weeks": _WEEK,
    "y": _YEAR,
    "yr": _YEAR,
    "year": _YEAR,
    "years": _YEAR,
}

_QUANTITY_RE = re.compile(r"^\s*([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([a-zA-Z/]+)\s*$")

Number = Union[int, float]


def _check_finite(value: float, what: str) -> float:
    if not math.isfinite(value):
        raise UnitError(f"{what} must be finite, got {value!r}")
    return float(value)


@dataclass(frozen=True, order=True)
class DataSize:
    """An amount of data, stored internally in bytes."""

    bytes: float

    def __post_init__(self) -> None:
        _check_finite(self.bytes, "DataSize")
        if self.bytes < 0:
            raise UnitError(f"DataSize cannot be negative: {self.bytes}")

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_bytes(cls, n: Number) -> "DataSize":
        return cls(float(n))

    @classmethod
    def kilobytes(cls, n: Number) -> "DataSize":
        return cls(float(n) * _KB)

    @classmethod
    def megabytes(cls, n: Number) -> "DataSize":
        return cls(float(n) * _MB)

    @classmethod
    def gigabytes(cls, n: Number) -> "DataSize":
        return cls(float(n) * _GB)

    @classmethod
    def terabytes(cls, n: Number) -> "DataSize":
        return cls(float(n) * _TB)

    @classmethod
    def petabytes(cls, n: Number) -> "DataSize":
        return cls(float(n) * _PB)

    @classmethod
    def zero(cls) -> "DataSize":
        return cls(0.0)

    @classmethod
    def parse(cls, text: str) -> "DataSize":
        """Parse strings like ``"14 TB"``, ``"100MB"``, or ``"1.5 pb"``."""
        match = _QUANTITY_RE.match(text)
        if not match:
            raise UnitError(f"cannot parse data size: {text!r}")
        value, suffix = float(match.group(1)), match.group(2).lower()
        if suffix not in _SIZE_SUFFIXES:
            raise UnitError(f"unknown data size unit {suffix!r} in {text!r}")
        return cls(value * _SIZE_SUFFIXES[suffix])

    # -- accessors ---------------------------------------------------------
    @property
    def kb(self) -> float:
        return self.bytes / _KB

    @property
    def mb(self) -> float:
        return self.bytes / _MB

    @property
    def gb(self) -> float:
        return self.bytes / _GB

    @property
    def tb(self) -> float:
        return self.bytes / _TB

    @property
    def pb(self) -> float:
        return self.bytes / _PB

    # -- algebra -----------------------------------------------------------
    def __add__(self, other: "DataSize") -> "DataSize":
        if not isinstance(other, DataSize):
            return NotImplemented
        return DataSize(self.bytes + other.bytes)

    def __sub__(self, other: "DataSize") -> "DataSize":
        if not isinstance(other, DataSize):
            return NotImplemented
        if other.bytes > self.bytes:
            raise UnitError(f"data size would go negative: {self} - {other}")
        return DataSize(self.bytes - other.bytes)

    def __mul__(self, factor: Number) -> "DataSize":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return DataSize(self.bytes * float(factor))

    __rmul__ = __mul__

    def __truediv__(self, other: "Union[DataSize, Rate, Number]"):
        if isinstance(other, DataSize):
            if other.bytes == 0:
                raise UnitError("division by zero data size")
            return self.bytes / other.bytes
        if isinstance(other, Rate):
            if other.bytes_per_second == 0:
                raise UnitError("division by zero rate")
            return Duration(self.bytes / other.bytes_per_second)
        if isinstance(other, (int, float)):
            if other == 0:
                raise UnitError("division of data size by zero")
            return DataSize(self.bytes / float(other))
        return NotImplemented

    def __bool__(self) -> bool:
        return self.bytes > 0

    def __str__(self) -> str:
        for threshold, suffix in ((_PB, "PB"), (_TB, "TB"), (_GB, "GB"), (_MB, "MB"), (_KB, "KB")):
            if abs(self.bytes) >= threshold:
                return f"{self.bytes / threshold:.2f} {suffix}"
        return f"{self.bytes:.0f} B"


@dataclass(frozen=True, order=True)
class Duration:
    """A span of time, stored internally in seconds."""

    seconds: float

    def __post_init__(self) -> None:
        _check_finite(self.seconds, "Duration")
        if self.seconds < 0:
            raise UnitError(f"Duration cannot be negative: {self.seconds}")

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_seconds(cls, n: Number) -> "Duration":
        return cls(float(n))

    @classmethod
    def minutes(cls, n: Number) -> "Duration":
        return cls(float(n) * _MINUTE)

    @classmethod
    def hours(cls, n: Number) -> "Duration":
        return cls(float(n) * _HOUR)

    @classmethod
    def days(cls, n: Number) -> "Duration":
        return cls(float(n) * _DAY)

    @classmethod
    def weeks(cls, n: Number) -> "Duration":
        return cls(float(n) * _WEEK)

    @classmethod
    def years(cls, n: Number) -> "Duration":
        return cls(float(n) * _YEAR)

    @classmethod
    def zero(cls) -> "Duration":
        return cls(0.0)

    @classmethod
    def parse(cls, text: str) -> "Duration":
        """Parse strings like ``"3 hours"``, ``"45min"``, or ``"5 years"``."""
        match = _QUANTITY_RE.match(text)
        if not match:
            raise UnitError(f"cannot parse duration: {text!r}")
        value, suffix = float(match.group(1)), match.group(2).lower()
        if suffix not in _DURATION_SUFFIXES:
            raise UnitError(f"unknown duration unit {suffix!r} in {text!r}")
        return cls(value * _DURATION_SUFFIXES[suffix])

    # -- accessors ---------------------------------------------------------
    @property
    def minutes_(self) -> float:
        return self.seconds / _MINUTE

    @property
    def hours_(self) -> float:
        return self.seconds / _HOUR

    @property
    def days_(self) -> float:
        return self.seconds / _DAY

    @property
    def years_(self) -> float:
        return self.seconds / _YEAR

    # -- algebra -----------------------------------------------------------
    def __add__(self, other: "Duration") -> "Duration":
        if not isinstance(other, Duration):
            return NotImplemented
        return Duration(self.seconds + other.seconds)

    def __sub__(self, other: "Duration") -> "Duration":
        if not isinstance(other, Duration):
            return NotImplemented
        if other.seconds > self.seconds:
            raise UnitError(f"duration would go negative: {self} - {other}")
        return Duration(self.seconds - other.seconds)

    def __mul__(self, factor: Number) -> "Duration":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return Duration(self.seconds * float(factor))

    __rmul__ = __mul__

    def __truediv__(self, other: "Union[Duration, Number]"):
        if isinstance(other, Duration):
            if other.seconds == 0:
                raise UnitError("division by zero duration")
            return self.seconds / other.seconds
        if isinstance(other, (int, float)):
            if other == 0:
                raise UnitError("division of duration by zero")
            return Duration(self.seconds / float(other))
        return NotImplemented

    def __bool__(self) -> bool:
        return self.seconds > 0

    def __str__(self) -> str:
        for threshold, suffix in ((_YEAR, "yr"), (_WEEK, "wk"), (_DAY, "d"), (_HOUR, "h"), (_MINUTE, "min")):
            if abs(self.seconds) >= threshold:
                return f"{self.seconds / threshold:.2f} {suffix}"
        return f"{self.seconds:.2f} s"


@dataclass(frozen=True, order=True)
class Rate:
    """A data rate, stored internally in bytes per second.

    Constructors exist for both network-style units (megabits per second)
    and storage-style units (megabytes per second or gigabytes per day),
    because the paper mixes the two freely.
    """

    bytes_per_second: float

    def __post_init__(self) -> None:
        _check_finite(self.bytes_per_second, "Rate")
        if self.bytes_per_second < 0:
            raise UnitError(f"Rate cannot be negative: {self.bytes_per_second}")

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_bytes_per_second(cls, n: Number) -> "Rate":
        return cls(float(n))

    @classmethod
    def megabits_per_second(cls, n: Number) -> "Rate":
        return cls(float(n) * _MB / 8.0)

    @classmethod
    def gigabits_per_second(cls, n: Number) -> "Rate":
        return cls(float(n) * _GB / 8.0)

    @classmethod
    def megabytes_per_second(cls, n: Number) -> "Rate":
        return cls(float(n) * _MB)

    @classmethod
    def gigabytes_per_day(cls, n: Number) -> "Rate":
        return cls(float(n) * _GB / _DAY)

    @classmethod
    def terabytes_per_day(cls, n: Number) -> "Rate":
        return cls(float(n) * _TB / _DAY)

    @classmethod
    def per(cls, size: DataSize, duration: Duration) -> "Rate":
        if duration.seconds == 0:
            raise UnitError("rate over a zero duration")
        return cls(size.bytes / duration.seconds)

    @classmethod
    def zero(cls) -> "Rate":
        return cls(0.0)

    # -- accessors ---------------------------------------------------------
    @property
    def mbps(self) -> float:
        """Megabits per second."""
        return self.bytes_per_second * 8.0 / _MB

    @property
    def mb_per_second(self) -> float:
        return self.bytes_per_second / _MB

    @property
    def gb_per_day(self) -> float:
        return self.bytes_per_second * _DAY / _GB

    @property
    def tb_per_day(self) -> float:
        return self.bytes_per_second * _DAY / _TB

    # -- algebra -----------------------------------------------------------
    def __add__(self, other: "Rate") -> "Rate":
        if not isinstance(other, Rate):
            return NotImplemented
        return Rate(self.bytes_per_second + other.bytes_per_second)

    def __sub__(self, other: "Rate") -> "Rate":
        if not isinstance(other, Rate):
            return NotImplemented
        if other.bytes_per_second > self.bytes_per_second:
            raise UnitError(f"rate would go negative: {self} - {other}")
        return Rate(self.bytes_per_second - other.bytes_per_second)

    def __mul__(self, other: "Union[Duration, Number]"):
        if isinstance(other, Duration):
            return DataSize(self.bytes_per_second * other.seconds)
        if isinstance(other, (int, float)):
            return Rate(self.bytes_per_second * float(other))
        return NotImplemented

    def __rmul__(self, other: "Union[Duration, Number]"):
        return self.__mul__(other)

    def __truediv__(self, other: "Union[Rate, Number]"):
        if isinstance(other, Rate):
            if other.bytes_per_second == 0:
                raise UnitError("division by zero rate")
            return self.bytes_per_second / other.bytes_per_second
        if isinstance(other, (int, float)):
            if other == 0:
                raise UnitError("division of rate by zero")
            return Rate(self.bytes_per_second / float(other))
        return NotImplemented

    def __bool__(self) -> bool:
        return self.bytes_per_second > 0

    def __str__(self) -> str:
        if self.bytes_per_second >= _GB:
            return f"{self.bytes_per_second / _GB:.2f} GB/s"
        if self.bytes_per_second >= _MB:
            return f"{self.bytes_per_second / _MB:.2f} MB/s"
        if self.bytes_per_second >= _KB:
            return f"{self.bytes_per_second / _KB:.2f} KB/s"
        return f"{self.bytes_per_second:.2f} B/s"


# Convenience module-level constructors mirroring the paper's vocabulary.
def terabytes(n: Number) -> DataSize:
    return DataSize.terabytes(n)


def gigabytes(n: Number) -> DataSize:
    return DataSize.gigabytes(n)


def megabytes(n: Number) -> DataSize:
    return DataSize.megabytes(n)


def petabytes(n: Number) -> DataSize:
    return DataSize.petabytes(n)


def hours(n: Number) -> Duration:
    return Duration.hours(n)


def days(n: Number) -> Duration:
    return Duration.days(n)


def weeks(n: Number) -> Duration:
    return Duration.weeks(n)


def years(n: Number) -> Duration:
    return Duration.years(n)
