"""Trace-driven workload engine: seeded heavy traffic for the access surfaces.

The paper's three flows all end at an access surface — WebLab's retro
browser and subset views, the EventStore's mixed-grade reads, the
archive's recalls — and each of those surfaces lives or dies under *load*,
not under single calls.  This module generates that load the same way the
rest of the reproduction generates everything: seeded, simulated, and
replayable.

The pieces:

* a :class:`Trace` — a frozen, content-addressed stream of
  :class:`TraceRequest` arrivals on the sim clock, serializable to JSONL
  so the exact same traffic can be replayed against any policy or
  backend ("every new policy gets judged under the same replayable
  traffic", ROADMAP item 5);
* :func:`generate_trace` over a :class:`WorkloadSpec` — per-tenant
  Poisson arrival streams with **Zipfian key popularity**
  (:class:`ZipfianSampler`), **diurnal cycles** (:class:`DiurnalCycle`),
  and **burst storms** (:class:`BurstStorm`, the traffic-side sibling of
  the C13 content bursts), merged deterministically into one
  multi-tenant stream;
* a :class:`TraceReplayer` that drives a trace against handler callables
  (the service facades), advancing its telemetry bus's
  :class:`~repro.core.telemetry.SimClock` to each arrival and emitting
  one ``workload.request`` event per request — so two replays of the
  same trace produce byte-identical canonical telemetry;
* an :class:`AdmissionController` — a sim-time token bucket providing
  backpressure: requests beyond the configured service rate are turned
  away with a ``serve.rejected`` event and accounted, never silently
  dropped.

Determinism contract: everything observable — the trace bytes, the
telemetry stream, the accounting counters — is a pure function of the
:class:`WorkloadSpec` (including its seed).  Wall-clock only appears in
the replayer's *latency measurements*, which live in the
:class:`ReplayReport` (benchmark material) and never enter the event log.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import time
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.errors import WorkloadError
from repro.core.telemetry import Telemetry, get_telemetry

_Param = Tuple[str, Union[str, int, float, bool, None]]


# -- the trace ------------------------------------------------------------
@dataclass(frozen=True)
class TraceRequest:
    """One request arrival in a workload trace.

    ``arrival_s`` is simulated seconds from trace start; ``op`` names the
    access path being exercised (``browse``, ``events_for``, ``recall``,
    ...); ``key`` is the hot object the request asks for (a URL, a grade,
    a file name).  ``params`` carries any extra call arguments, frozen
    as sorted pairs so the request hashes stably.
    """

    seq: int
    arrival_s: float
    tenant: str
    op: str
    key: str
    params: Tuple[_Param, ...] = ()

    def param(self, name: str, default: object = None) -> object:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "arrival_s": self.arrival_s,
            "tenant": self.tenant,
            "op": self.op,
            "key": self.key,
            "params": {key: value for key, value in self.params},
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "TraceRequest":
        try:
            params = record.get("params", {})
            return cls(
                seq=int(record["seq"]),  # type: ignore[arg-type]
                arrival_s=float(record["arrival_s"]),  # type: ignore[arg-type]
                tenant=str(record["tenant"]),
                op=str(record["op"]),
                key=str(record["key"]),
                params=tuple(sorted(params.items())),  # type: ignore[union-attr]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(f"malformed trace record: {exc}") from exc


class Trace:
    """An ordered, replayable request stream with a content digest.

    Two generations from the same :class:`WorkloadSpec` produce traces
    whose :meth:`digest` — and whose :meth:`save`\\ d bytes — are
    identical; that identity is what makes policy comparisons fair.
    """

    def __init__(self, requests: Sequence[TraceRequest], name: str = "trace",
                 seed: int = 0, duration_s: float = 0.0):
        self.requests: Tuple[TraceRequest, ...] = tuple(requests)
        self.name = name
        self.seed = seed
        self.duration_s = float(duration_s)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[TraceRequest]:
        return iter(self.requests)

    def ops(self) -> List[str]:
        """The distinct ops exercised, sorted."""
        return sorted({request.op for request in self.requests})

    def keys_by_frequency(self, op: Optional[str] = None) -> List[Tuple[str, int]]:
        """(key, hit count) pairs, most popular first — the Zipf head."""
        counts: Dict[str, int] = {}
        for request in self.requests:
            if op is not None and request.op != op:
                continue
            counts[request.key] = counts.get(request.key, 0) + 1
        return sorted(counts.items(), key=lambda item: (-item[1], item[0]))

    def header(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "requests": len(self.requests),
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON stream (header + requests)."""
        hasher = hashlib.sha256()
        hasher.update(json.dumps(self.header(), sort_keys=True).encode("utf-8"))
        for request in self.requests:
            hasher.update(b"\n")
            hasher.update(json.dumps(request.to_dict(), sort_keys=True).encode("utf-8"))
        return hasher.hexdigest()

    def save(self, path: Union[str, Path]) -> int:
        """Persist as JSONL (one header line, one line per request)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(self.header(), sort_keys=True) + "\n")
            for request in self.requests:
                handle.write(json.dumps(request.to_dict(), sort_keys=True) + "\n")
        return len(self.requests)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line.strip()]
        if not lines:
            raise WorkloadError(f"{path} holds no trace header")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"{path}: bad trace header: {exc}") from exc
        requests = [TraceRequest.from_dict(json.loads(line)) for line in lines[1:]]
        trace = cls(
            requests,
            name=str(header.get("name", "trace")),
            seed=int(header.get("seed", 0)),
            duration_s=float(header.get("duration_s", 0.0)),
        )
        declared = header.get("requests")
        if declared is not None and int(declared) != len(requests):
            raise WorkloadError(
                f"{path}: header declares {declared} requests, file holds "
                f"{len(requests)}"
            )
        return trace


# -- popularity, cycles, storms -------------------------------------------
class ZipfianSampler:
    """Rank-based Zipfian key popularity: P(rank r) ∝ 1 / r**s.

    The key universe's order *is* the popularity ranking (first key is
    hottest).  Sampling is inverse-CDF over precomputed cumulative
    weights, so one draw costs one RNG call and a bisect.
    """

    def __init__(self, keys: Sequence[str], s: float = 1.1):
        if not keys:
            raise WorkloadError("Zipfian sampler needs at least one key")
        if s < 0:
            raise WorkloadError(f"Zipf exponent must be >= 0, got {s}")
        self.keys: Tuple[str, ...] = tuple(keys)
        self.s = float(s)
        weights = [1.0 / (rank ** self.s) for rank in range(1, len(self.keys) + 1)]
        total = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0  # guard against float drift at the tail
        self._cumulative = cumulative

    def sample(self, rng: Random) -> str:
        return self.keys[bisect.bisect_left(self._cumulative, rng.random())]

    def head(self, mass: float = 0.5) -> List[str]:
        """The hottest keys carrying at least ``mass`` of the probability."""
        if not 0.0 < mass <= 1.0:
            raise WorkloadError(f"probability mass must be in (0, 1], got {mass}")
        cut = bisect.bisect_left(self._cumulative, mass)
        return list(self.keys[: cut + 1])


@dataclass(frozen=True)
class DiurnalCycle:
    """Day/night rate modulation on the sim clock.

    The multiplier follows a raised cosine between ``trough`` (quietest)
    and 1.0 (peak), peaking at ``peak_s`` into each ``period_s`` cycle.
    """

    period_s: float = 86_400.0
    trough: float = 0.25
    peak_s: float = 43_200.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise WorkloadError(f"diurnal period must be positive, got {self.period_s}")
        if not 0.0 < self.trough <= 1.0:
            raise WorkloadError(f"diurnal trough must be in (0, 1], got {self.trough}")

    def multiplier(self, t: float) -> float:
        phase = 2.0 * math.pi * ((t - self.peak_s) % self.period_s) / self.period_s
        # cos(0) = 1 at the peak instant, -1 half a period away.
        shape = (1.0 + math.cos(phase)) / 2.0
        return self.trough + (1.0 - self.trough) * shape


@dataclass(frozen=True)
class BurstStorm:
    """A traffic storm: the arrival rate is multiplied inside a window.

    The load-side sibling of the C13 *content* bursts — there, terms
    spike inside crawls; here, requests spike inside a sim-time window
    (a hot news story hammering the retro browser, a conference deadline
    hammering the EventStore).
    """

    start_s: float
    end_s: float
    multiplier: float = 5.0

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise WorkloadError(
                f"storm window [{self.start_s}, {self.end_s}) is empty"
            )
        if self.multiplier <= 0:
            raise WorkloadError(f"storm multiplier must be positive, got {self.multiplier}")

    def active(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


# -- the spec --------------------------------------------------------------
@dataclass(frozen=True)
class OpSpec:
    """One access path in a tenant's mix: weight, key universe, skew."""

    op: str
    weight: float
    keys: Tuple[str, ...]
    zipf_s: float = 1.1
    params: Tuple[_Param, ...] = ()

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(f"op {self.op!r} needs a positive weight")
        if not self.keys:
            raise WorkloadError(f"op {self.op!r} needs a non-empty key universe")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's arrival stream: rate, mix, and temporal shape."""

    name: str
    rate_per_s: float
    ops: Tuple[OpSpec, ...]
    diurnal: Optional[DiurnalCycle] = None
    storms: Tuple[BurstStorm, ...] = ()

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise WorkloadError(f"tenant {self.name!r} needs a positive rate")
        if not self.ops:
            raise WorkloadError(f"tenant {self.name!r} has no ops in its mix")

    def rate_at(self, t: float) -> float:
        rate = self.rate_per_s
        if self.diurnal is not None:
            rate *= self.diurnal.multiplier(t)
        for storm in self.storms:
            if storm.active(t):
                rate *= storm.multiplier
        return rate

    def peak_rate(self) -> float:
        """An upper bound on the instantaneous rate (for thinning)."""
        rate = self.rate_per_s
        storm_boost = 1.0
        for storm in self.storms:
            storm_boost = max(storm_boost, storm.multiplier)
        return rate * storm_boost


@dataclass(frozen=True)
class WorkloadSpec:
    """The full multi-tenant workload: generate once, replay everywhere."""

    tenants: Tuple[TenantSpec, ...]
    duration_s: float
    seed: int = 0
    name: str = "workload"

    def __post_init__(self) -> None:
        if not self.tenants:
            raise WorkloadError("workload needs at least one tenant")
        if self.duration_s <= 0:
            raise WorkloadError(f"duration must be positive, got {self.duration_s}")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate tenant names: {sorted(names)}")


def _tenant_rng(seed: int, tenant: str) -> Random:
    """An independent, reproducible stream per (workload seed, tenant)."""
    material = f"workload:{seed}:{tenant}".encode("utf-8")
    return Random(int.from_bytes(hashlib.sha256(material).digest()[:8], "big"))


def generate_trace(spec: WorkloadSpec) -> Trace:
    """Deterministically expand a :class:`WorkloadSpec` into a :class:`Trace`.

    Each tenant gets an independent seeded RNG stream; arrivals are a
    thinned Poisson process (candidates at the tenant's peak rate, kept
    with probability ``rate_at(t) / peak``), so diurnal troughs and storm
    windows shape the stream without breaking determinism.  Tenant
    streams merge sorted by ``(arrival time, tenant name, tenant seq)``
    — a total order, so the merged trace is unique.
    """
    merged: List[Tuple[float, str, int, OpSpec, str]] = []
    for tenant in spec.tenants:
        rng = _tenant_rng(spec.seed, tenant.name)
        samplers = [ZipfianSampler(op.keys, op.zipf_s) for op in tenant.ops]
        weights = [op.weight for op in tenant.ops]
        total_weight = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total_weight
            cumulative.append(running)
        cumulative[-1] = 1.0
        peak = tenant.peak_rate()
        t = 0.0
        tenant_seq = 0
        while True:
            t += rng.expovariate(peak)
            if t >= spec.duration_s:
                break
            if rng.random() >= tenant.rate_at(t) / peak:
                continue  # thinned away (trough / outside a storm)
            choice = bisect.bisect_left(cumulative, rng.random())
            op = tenant.ops[choice]
            key = samplers[choice].sample(rng)
            merged.append((t, tenant.name, tenant_seq, op, key))
            tenant_seq += 1
    merged.sort(key=lambda item: (item[0], item[1], item[2]))
    requests = [
        TraceRequest(
            seq=seq,
            arrival_s=round(t, 9),
            tenant=tenant_name,
            op=op.op,
            key=key,
            params=op.params,
        )
        for seq, (t, tenant_name, _, op, key) in enumerate(merged)
    ]
    return Trace(requests, name=spec.name, seed=spec.seed, duration_s=spec.duration_s)


# -- admission control ----------------------------------------------------
class AdmissionController:
    """Sim-time token bucket: the serving layer's backpressure valve.

    Tokens replenish at ``rate_per_s`` simulated seconds up to ``burst``;
    each admitted request spends one.  A request arriving to an empty
    bucket is rejected — the caller accounts it as ``serve.rejected``
    rather than queueing unboundedly (the paper's services survive by
    shedding, not by buffering forever).  Deterministic: admission
    depends only on the arrival times, never on wall-clock service time.
    """

    def __init__(self, rate_per_s: float, burst: float = 1.0):
        if rate_per_s <= 0:
            raise WorkloadError(f"admission rate must be positive, got {rate_per_s}")
        if burst < 1:
            raise WorkloadError(f"burst must allow at least one token, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_arrival = 0.0
        self.admitted = 0
        self.rejected = 0

    def admit(self, arrival_s: float) -> bool:
        if arrival_s < self._last_arrival:
            raise WorkloadError(
                f"arrivals must be non-decreasing ({arrival_s} after "
                f"{self._last_arrival})"
            )
        elapsed = arrival_s - self._last_arrival
        self._last_arrival = arrival_s
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.admitted += 1
            return True
        self.rejected += 1
        return False


# -- replay ----------------------------------------------------------------
@dataclass
class RequestOutcome:
    """What one replayed request did (latency is wall-clock, benchmark-only)."""

    request: TraceRequest
    ok: bool
    rejected: bool = False
    latency_s: float = 0.0
    error: str = ""


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values (q in [0, 100])."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise WorkloadError(f"percentile must be in [0, 100], got {q}")
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without math
    return sorted_values[int(rank) - 1]


@dataclass
class LatencySummary:
    """Throughput and tail latency for one op (or the whole replay)."""

    op: str
    count: int
    wall_s: float
    p50_ms: float
    p95_ms: float
    p99_ms: float

    @property
    def throughput_rps(self) -> float:
        return self.count / self.wall_s if self.wall_s > 0 else 0.0

    def row(self) -> Dict[str, object]:
        return {
            "path": self.op,
            "requests": self.count,
            "throughput rps": f"{self.throughput_rps:.0f}",
            "p50 ms": f"{self.p50_ms:.3f}",
            "p95 ms": f"{self.p95_ms:.3f}",
            "p99 ms": f"{self.p99_ms:.3f}",
        }


class ReplayReport:
    """Everything a replay produced: outcomes, accounting, percentiles."""

    def __init__(self, trace: Trace, outcomes: List[RequestOutcome], wall_s: float):
        self.trace = trace
        self.outcomes = outcomes
        self.wall_s = wall_s

    @property
    def served(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def rejected(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.rejected)

    @property
    def failed(self) -> int:
        return sum(
            1
            for outcome in self.outcomes
            if not outcome.ok and not outcome.rejected
        )

    def latency_summary(self, op: Optional[str] = None) -> LatencySummary:
        latencies = sorted(
            outcome.latency_s
            for outcome in self.outcomes
            if outcome.ok and (op is None or outcome.request.op == op)
        )
        return LatencySummary(
            op=op if op is not None else "all",
            count=len(latencies),
            wall_s=self.wall_s,
            p50_ms=percentile(latencies, 50) * 1e3,
            p95_ms=percentile(latencies, 95) * 1e3,
            p99_ms=percentile(latencies, 99) * 1e3,
        )

    def summary_rows(self) -> List[Dict[str, object]]:
        return [self.latency_summary(op).row() for op in self.trace.ops()]


Handler = Callable[[TraceRequest], object]


class TraceReplayer:
    """Drive a trace against handler callables, one op name each.

    The replayer owns the mapping from trace ops to service calls; the
    telemetry side effects (``workload.request`` per arrival,
    ``serve.rejected`` on backpressure, plus whatever the handlers emit)
    land on the given bus with the bus's :class:`SimClock` advanced to
    each arrival — so canonical logs of two replays of one trace are
    byte-identical, while wall-clock latencies stay confined to the
    returned :class:`ReplayReport`.
    """

    def __init__(
        self,
        handlers: Mapping[str, Handler],
        telemetry: Optional[Telemetry] = None,
        admission: Optional[AdmissionController] = None,
    ):
        if not handlers:
            raise WorkloadError("replayer needs at least one op handler")
        self.handlers = dict(handlers)
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.admission = admission

    def replay(self, trace: Trace) -> ReplayReport:
        bus = self.telemetry
        registry = bus.registry
        outcomes: List[RequestOutcome] = []
        replay_start = time.perf_counter()  # repro: noqa[RPR002] benchmark latency only
        for request in trace:
            handler = self.handlers.get(request.op)
            if handler is None:
                raise WorkloadError(
                    f"trace op {request.op!r} has no handler; "
                    f"replayer knows {sorted(self.handlers)}"
                )
            ahead = request.arrival_s - bus.clock.now
            if ahead > 0:
                bus.clock.advance(ahead)
            registry.counter("workload.requests").inc()
            registry.counter(f"workload.requests.{request.op}").inc()
            bus.emit(
                "workload.request",
                request.op,
                seq=request.seq,
                tenant=request.tenant,
                key=request.key,
            )
            if self.admission is not None and not self.admission.admit(
                request.arrival_s
            ):
                registry.counter("workload.rejected").inc()
                bus.emit(
                    "serve.rejected",
                    request.op,
                    seq=request.seq,
                    tenant=request.tenant,
                    key=request.key,
                )
                outcomes.append(
                    RequestOutcome(request=request, ok=False, rejected=True)
                )
                continue
            started = time.perf_counter()  # repro: noqa[RPR002] benchmark latency only
            try:
                handler(request)
            except Exception as exc:  # noqa: BLE001 - a failed request is data
                registry.counter("workload.failed").inc()
                outcomes.append(
                    RequestOutcome(
                        request=request,
                        ok=False,
                        latency_s=time.perf_counter() - started,  # repro: noqa[RPR002]
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            registry.counter("workload.served").inc()
            outcomes.append(
                RequestOutcome(
                    request=request,
                    ok=True,
                    latency_s=time.perf_counter() - started,  # repro: noqa[RPR002]
                )
            )
        wall_s = time.perf_counter() - replay_start  # repro: noqa[RPR002]
        return ReplayReport(trace, outcomes, wall_s)


__all__ = [
    "AdmissionController",
    "BurstStorm",
    "DiurnalCycle",
    "LatencySummary",
    "OpSpec",
    "ReplayReport",
    "RequestOutcome",
    "TenantSpec",
    "Trace",
    "TraceReplayer",
    "TraceRequest",
    "WorkloadSpec",
    "ZipfianSampler",
    "generate_trace",
    "percentile",
]
