"""Batched numeric kernels for the hot search paths.

The ROADMAP's north star is a system that runs "as fast as the hardware
allows"; the compute that dominates every Figure-1 run is shift-and-sum
dedispersion, Fourier search, and folding.  This module holds the
vectorized cores those paths share, each one paired with the naive loop it
replaces (kept as ``*_reference``) so equivalence is testable forever.

Every kernel here is **bitwise-equivalent** to its reference, not merely
close: batched execution performs the same floating-point operations in
the same order as the per-item loops (per-channel accumulation order,
per-row reductions along ``axis=1``), so pipelines may switch between the
two freely without perturbing any seeded result.  The equivalence suite
(``tests/core/test_kernels.py``) asserts ``np.array_equal``, and the
figure benchmarks pin exact recall — either would catch a ULP of drift.

Kernels raise :class:`~repro.core.errors.KernelError` on misuse; domain
wrappers (``repro.arecibo.dedisperse`` etc.) translate to their own error
types so callers see the same exceptions the naive paths raised.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.errors import KernelError


def shift_sum(data: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """Sum ``data`` rows under per-(trial, channel) circular left-shifts.

    ``data`` is ``(n_channels, n_samples)``; ``shifts`` is
    ``(n_trials, n_channels)`` of integer left-shifts.  Returns the
    ``(n_trials, n_samples)`` float64 block where row ``t`` is
    ``sum_c roll(data[c], -shifts[t, c])`` — incoherent dedispersion's
    inner loop for every trial DM at once.

    The batch is a gather, not ``n_trials * n_channels`` rolls: the array
    is doubled along the sample axis so every circular shift is one
    contiguous window (``roll(x, -s)[i] == x[(i + s) % n]``), and
    ``sliding_window_view`` exposes all windows without copying.  Channels
    accumulate in index order into a float64 output, which is exactly the
    reference loop's addition order — hence bitwise equality.
    """
    data = np.asarray(data)
    shifts = np.asarray(shifts)
    if data.ndim != 2 or shifts.ndim != 2:
        raise KernelError("shift_sum needs 2-D data and 2-D shifts")
    n_channels, n_samples = data.shape
    if shifts.shape[1] != n_channels:
        raise KernelError(
            f"shifts has {shifts.shape[1]} columns for {n_channels} channels"
        )
    if n_samples == 0:
        raise KernelError("shift_sum needs at least one sample")
    wrapped = np.mod(shifts, n_samples)
    doubled = np.concatenate([data, data], axis=1)
    # (n_channels, n_samples + 1, n_samples): windows[c][s] == roll(data[c], -s)
    windows = np.lib.stride_tricks.sliding_window_view(doubled, n_samples, axis=1)
    out = np.zeros((shifts.shape[0], n_samples), dtype=np.float64)
    for channel in range(n_channels):
        out += windows[channel][wrapped[:, channel]]
    return out


def shift_sum_reference(data: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """The naive per-trial ``np.roll`` loop :func:`shift_sum` replaces."""
    data = np.asarray(data)
    shifts = np.asarray(shifts)
    if data.ndim != 2 or shifts.ndim != 2:
        raise KernelError("shift_sum needs 2-D data and 2-D shifts")
    if shifts.shape[1] != data.shape[0]:
        raise KernelError(
            f"shifts has {shifts.shape[1]} columns for {data.shape[0]} channels"
        )
    if data.shape[1] == 0:
        raise KernelError("shift_sum needs at least one sample")
    out = np.zeros((shifts.shape[0], data.shape[1]), dtype=np.float64)
    for trial in range(shifts.shape[0]):
        for channel in range(data.shape[0]):
            out[trial] += np.roll(data[channel], -int(shifts[trial, channel]))
    return out


def batched_power_spectra(block: np.ndarray) -> np.ndarray:
    """Normalized power spectra of every row of a ``(n_series, n_samples)``
    block in one rfft call.

    Row ``r`` equals ``repro.arecibo.fourier.power_spectrum(block[r])``
    bitwise: mean subtraction, ``|rfft|**2``, DC-bin drop, and the
    median/ln2 noise normalization are all per-row reductions along
    ``axis=1``, which numpy evaluates identically to the 1-D calls.
    """
    series = np.asarray(block, dtype=np.float64)
    if series.ndim != 2 or series.shape[1] < 16:
        raise KernelError("need a 2-D block of series with at least 16 samples")
    series = series - series.mean(axis=1, keepdims=True)
    spectra = np.abs(np.fft.rfft(series, axis=1)) ** 2
    spectra = spectra[:, 1:]  # drop DC
    medians = np.median(spectra, axis=1, keepdims=True)
    if np.any(medians <= 0):
        raise KernelError("degenerate spectrum (zero median power)")
    return spectra / (medians / np.log(2.0))


def harmonic_snr_block(
    spectra: np.ndarray, n_harmonics: int
) -> np.ndarray:
    """Harmonic-summed detection S/N for every row of a spectra block.

    Row ``r`` equals ``summed_snr(harmonic_sum(spectra[r], n), n)``: the
    h-fold compressed copies are gathered for all rows with one fancy
    index per harmonic, accumulated in ladder order.
    """
    spectra = np.asarray(spectra, dtype=np.float64)
    if spectra.ndim != 2:
        raise KernelError("harmonic_snr_block needs a 2-D spectra block")
    if n_harmonics < 1:
        raise KernelError("need at least one harmonic")
    n_bins = spectra.shape[1] // n_harmonics
    if n_bins < 1:
        raise KernelError("spectra too short for this many harmonics")
    total = np.zeros((spectra.shape[0], n_bins), dtype=np.float64)
    base = np.arange(1, n_bins + 1)
    for harmonic in range(1, n_harmonics + 1):
        total += spectra[:, harmonic * base - 1]
    return (total - n_harmonics) / np.sqrt(n_harmonics)


def threshold_hits(
    snrs: np.ndarray, threshold: float
) -> Sequence[Tuple[np.ndarray, np.ndarray]]:
    """Group above-threshold bins of an ``(n_rows, n_bins)`` S/N block by row.

    Returns one ``(bin_indices, snr_values)`` pair per row, each pair in
    ascending bin order — the same visit order as looping
    ``np.flatnonzero(row >= threshold)`` row by row, so downstream
    best-candidate bookkeeping reproduces the naive insertion order.
    """
    snrs = np.asarray(snrs)
    if snrs.ndim != 2:
        raise KernelError("threshold_hits needs a 2-D S/N block")
    rows, bins = np.nonzero(snrs >= threshold)
    # np.nonzero is row-major, so `rows` is sorted; searchsorted finds the
    # per-row slice boundaries without a Python-level groupby.
    bounds = np.searchsorted(rows, np.arange(snrs.shape[0] + 1))
    return [
        (bins[bounds[r] : bounds[r + 1]], snrs[r, bins[bounds[r] : bounds[r + 1]]])
        for r in range(snrs.shape[0])
    ]


def fold_block(
    series: np.ndarray,
    tsamp_s: float,
    periods: np.ndarray,
    n_bins: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold one time series at many trial periods in one pass.

    Returns ``(profiles, hits)`` of shapes ``(n_trials, n_bins)``; row
    ``t`` matches ``repro.arecibo.folding.fold(series, tsamp_s,
    periods[t], n_bins)`` bitwise *provided* ``n_bins`` is the effective
    bin count for every period (callers group trials by the adjusted bin
    count; see ``fold_many``).  The scatter-add runs as one flattened
    ``np.bincount``, which accumulates weights in input order — the same
    order ``np.add.at`` visits each trial's samples.
    """
    series = np.asarray(series, dtype=np.float64)
    periods = np.asarray(periods, dtype=np.float64)
    if series.ndim != 1 or periods.ndim != 1:
        raise KernelError("fold_block needs a 1-D series and 1-D periods")
    if n_bins < 1:
        raise KernelError("need at least one phase bin")
    if tsamp_s <= 0 or np.any(periods <= 0):
        raise KernelError("period and sampling time must be positive")
    n_trials = len(periods)
    times = np.arange(len(series)) * tsamp_s
    # In-place arithmetic below performs the identical float ops the
    # per-trial fold does — it only avoids (n_trials, n_samples) temporaries.
    phases = times[None, :] % periods[:, None]
    phases /= periods[:, None]
    phases *= n_bins
    bins = phases.astype(np.int64)
    bins %= n_bins
    bins += (np.arange(n_trials) * n_bins)[:, None]
    flat = bins.ravel()
    weights = np.broadcast_to(series, bins.shape).ravel()
    profiles = np.bincount(flat, weights=weights, minlength=n_trials * n_bins)
    profiles = profiles.reshape(n_trials, n_bins)
    hits = np.bincount(flat, minlength=n_trials * n_bins).reshape(n_trials, n_bins)
    occupied = hits > 0
    profiles[occupied] /= hits[occupied]
    return profiles, hits.astype(np.int64)


def index_postings(
    tokenized_documents: Sequence[Tuple[str, Sequence[str]]],
) -> Tuple[dict, dict, dict]:
    """Build inverted-index structures over pre-tokenized documents.

    Returns ``(postings, doc_lengths, doc_terms)`` in one pass with local
    bindings hoisted out of the loop — the batched core behind
    ``TextIndex.add_many``.  Later duplicates of a URL win, matching
    repeated ``add`` calls.
    """
    postings: dict = {}
    doc_lengths: dict = {}
    doc_terms: dict = {}
    for url, tokens in tokenized_documents:
        if url in doc_terms:
            for term in doc_terms[url]:
                bucket = postings.get(term)
                if bucket is not None:
                    bucket.pop(url, None)
                    if not bucket:
                        del postings[term]
        counts: dict = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        doc_lengths[url] = len(tokens)
        doc_terms[url] = tuple(counts)
        for token, count in counts.items():
            bucket = postings.get(token)
            if bucket is None:
                bucket = postings[token] = {}
            bucket[url] = count
    return postings, doc_lengths, doc_terms
