"""Delta sources, dirty cones, and windowed incremental execution.

The paper's three flows are all *continuous* in production — Arecibo
pointings arrive nightly, the WebLab ingests bimonthly crawl deltas, CLEO
appends runs to an open EventStore — while a batch engine only replays
full snapshots.  This module adds the missing vocabulary:

* :class:`Delta` / :class:`DeltaSource` — versioned increments to a
  source dataset, emitted on the sim clock with separate *event* and
  *arrival* times so late data and reordering are expressible.
* :func:`dirty_cone` — the downstream closure of the changed sources:
  the minimal set of stages a delta batch can possibly affect.
* :class:`WindowLedger` — ``window.open``/``window.close``/
  ``window.reopen`` accounting over the telemetry bus.
* :class:`IncrementalEngine` — runs a flow window-by-window over the
  union of everything that has arrived, against a shared
  :class:`~repro.core.stagecache.StageCache`.

The equivalence contract is the paper's "recompute only what changed"
claim made testable: after the last window, the incremental run's final
datasets, provenance stamps, and canonical flow telemetry are
byte-identical to one batch run over the union of all deltas.  The cache
is what makes each window cheap — an incremental window is exactly a
*warm rerun plus new inputs*: unchanged stages replay as stage-cache
hits, delta-capable stages recompute only never-seen shards (see
``StageContext.map_shards`` with ``cache_keys``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.dataflow import DataFlow
from repro.core.dataset import Dataset
from repro.core.engine import Engine, FlowReport
from repro.core.errors import IncrementalError
from repro.core.provenance import ProvenanceStore
from repro.core.stagecache import StageCache
from repro.core.telemetry import Telemetry, TelemetryEvent, get_telemetry
from repro.core.units import DataSize

#: Delta kinds a source accepts.  ``append`` adds new items; ``revise``
#: replaces earlier items carrying the same identity (requires the
#: source's ``key`` function).  Late arrival is not a kind — it is any
#: delta whose ``event_time`` predates an already-closed watermark.
DELTA_KINDS = ("append", "revise")


@dataclass(frozen=True)
class Delta:
    """One increment to a source dataset.

    ``event_time`` is when the data *happened* on the sim clock (the
    pointing's observation epoch, the crawl date); ``arrival_time`` is
    when it reached us.  The two differ exactly when data is late.
    """

    source: str
    items: Tuple[object, ...]
    event_time: float
    arrival_time: float
    kind: str = "append"
    size_bytes: float = 0.0
    #: Emission order; tie-break for deterministic replay.
    seq: int = 0

    def __post_init__(self) -> None:
        if self.kind not in DELTA_KINDS:
            raise IncrementalError(
                f"unknown delta kind {self.kind!r}; expected one of {DELTA_KINDS}"
            )
        if self.arrival_time < self.event_time:
            raise IncrementalError(
                f"delta for {self.source!r} arrives at {self.arrival_time} "
                f"before its event time {self.event_time}"
            )


class DeltaSource:
    """A feed of :class:`Delta` batches aimed at one incremental source stage.

    Parameters
    ----------
    stage:
        Name of the flow's source stage this feed seeds (must be declared
        via :meth:`DataFlow.declare_incremental`).
    name:
        Dataset name presented to the engine (default ``"<stage>-input"``).
    version:
        Base version string; the assembled dataset's version appends a
        content digest so the stage cache keys each distinct accumulation
        apart (external seeds carry no provenance stamp — the digest is
        what stands in for one).
    key:
        Optional item-identity function enabling ``revise`` deltas:
        a later item with the same key replaces the earlier one,
        last-wins, at the original position.

    Items must have stable, content-determined ``repr``s (dataclasses and
    plain data qualify) — the repr feeds the version digest.
    """

    def __init__(
        self,
        stage: str,
        name: Optional[str] = None,
        version: str = "delta_v1",
        key: Optional[Callable[[object], object]] = None,
    ):
        if not stage:
            raise IncrementalError("delta source needs a target stage name")
        self.stage = stage
        self.name = name if name is not None else f"{stage}-input"
        self.version = version
        self.key = key
        self._pending: List[Delta] = []
        self._accepted: List[Delta] = []
        self._seq = 0

    def emit(
        self,
        items: Sequence[object],
        event_time: float,
        arrival_time: Optional[float] = None,
        kind: str = "append",
        size_bytes: float = 0.0,
    ) -> Delta:
        """Queue one delta batch; it joins the flow once a watermark passes
        its arrival time."""
        if kind == "revise" and self.key is None:
            raise IncrementalError(
                f"source {self.stage!r} cannot accept 'revise' deltas "
                "without an item-identity key function"
            )
        delta = Delta(
            source=self.stage,
            items=tuple(items),
            event_time=float(event_time),
            arrival_time=float(
                arrival_time if arrival_time is not None else event_time
            ),
            kind=kind,
            size_bytes=float(size_bytes),
            seq=self._seq,
        )
        self._seq += 1
        self._pending.append(delta)
        return delta

    def take_arrived(self, watermark: float) -> List[Delta]:
        """Accept every pending delta that has arrived by ``watermark``.

        Returns the newly accepted deltas in arrival order (ties broken
        by emission order, so replay is deterministic).
        """
        arrived = [d for d in self._pending if d.arrival_time <= watermark]
        arrived.sort(key=lambda d: (d.arrival_time, d.seq))
        self._pending = [d for d in self._pending if d.arrival_time > watermark]
        self._accepted.extend(arrived)
        return arrived

    @property
    def pending(self) -> int:
        """Deltas emitted but not yet past any watermark."""
        return len(self._pending)

    def items(self) -> List[object]:
        """The accumulated input: every accepted item in event-time order.

        Revisions collapse last-wins onto the original item's position.
        The result depends only on the *set* of accepted deltas — not on
        how they were split across windows — which is what makes N
        incremental windows equal one batch over the union.
        """
        ordered = sorted(self._accepted, key=lambda d: (d.event_time, d.seq))
        merged: Dict[object, object] = {}
        fallback = 0
        for delta in ordered:
            for item in delta.items:
                if self.key is not None:
                    identity: object = self.key(item)
                else:
                    identity = ("#", fallback)
                    fallback += 1
                merged[identity] = item
        return list(merged.values())

    def dataset(self) -> Dataset:
        """Assemble the accumulated input into an engine-ready dataset.

        The version carries a digest of the item contents: external seeds
        have no provenance stamp, so without it every accumulation state
        would collide onto one stage-cache key.
        """
        items = self.items()
        payload = "\x1f".join(repr(item) for item in items)
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
        size_bytes = sum(d.size_bytes for d in self._accepted)
        if size_bytes == 0.0:
            size_bytes = float(len(payload))
        return Dataset(
            name=self.name,
            size=DataSize(size_bytes),
            items=items,
            version=f"{self.version}+{digest}",
        )


def dirty_cone(flow: DataFlow, changed: Sequence[str]) -> List[str]:
    """Downstream closure of the changed stages, in topological order.

    This is the minimal set of stages a delta batch can affect: anything
    outside the cone has byte-identical inputs and must replay from the
    stage cache.  ``changed`` names stages (normally incremental sources);
    unknown names raise.
    """
    for name in changed:
        if name not in flow.stages:
            raise IncrementalError(
                f"dirty_cone: unknown stage {name!r} in flow {flow.name!r}"
            )
    dirty = set(changed)
    order = flow.topological_order()
    for name in order:
        if name in dirty:
            continue
        if any(pred in dirty for pred in flow.predecessors(name)):
            dirty.add(name)
    return [name for name in order if name in dirty]


class WindowLedger:
    """Windowed accounting over the telemetry bus.

    One ledger per incremental run: :meth:`open` / :meth:`close` bracket
    each window with ``window.open`` / ``window.close`` events carrying
    the watermark and whatever per-window attributes the caller supplies
    (volumes, stage counts, candidate counts).  :meth:`reopen` records
    that late data re-opened ground a closed watermark already covered —
    the event names the stale watermark so backfills are auditable.
    """

    def __init__(self, name: str, telemetry: Optional[Telemetry] = None):
        self.name = name
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        #: Closed windows as ``(index, watermark)`` pairs.
        self.windows: List[Tuple[int, float]] = []
        self._open: Optional[Tuple[int, float]] = None

    @property
    def last_watermark(self) -> Optional[float]:
        return self.windows[-1][1] if self.windows else None

    def reopen(self, event_time: float, **attrs: object) -> None:
        """Record that data with ``event_time`` landed behind a closed
        watermark (a late arrival about to be backfilled)."""
        if self.last_watermark is None:
            raise IncrementalError(
                f"ledger {self.name!r}: nothing closed yet, cannot reopen"
            )
        self.telemetry.emit(
            "window.reopen",
            self.name,
            window=len(self.windows),
            event_time=float(event_time),
            closed_watermark=self.last_watermark,
            **attrs,
        )

    def open(self, watermark: float, **attrs: object) -> int:
        if self._open is not None:
            raise IncrementalError(
                f"ledger {self.name!r}: window {self._open[0]} is still open"
            )
        index = len(self.windows)
        self.telemetry.emit(
            "window.open", self.name, window=index,
            watermark=float(watermark), **attrs,
        )
        self._open = (index, float(watermark))
        return index

    def close(self, **attrs: object) -> int:
        if self._open is None:
            raise IncrementalError(
                f"ledger {self.name!r}: no window is open"
            )
        index, watermark = self._open
        self.telemetry.emit(
            "window.close", self.name, window=index,
            watermark=watermark, **attrs,
        )
        self.windows.append((index, watermark))
        self._open = None
        return index


@dataclass
class WindowReport:
    """What one incremental window saw and did."""

    index: int
    watermark: float
    #: Newly arrived items per source stage.
    arrivals: Dict[str, int] = field(default_factory=dict)
    #: Whether any accepted delta's event time predated a closed watermark.
    late: bool = False
    #: The dirty cone of this window's changed sources (empty batch: []).
    dirty: List[str] = field(default_factory=list)
    #: Stages that actually executed / replayed from the stage cache.
    executed: List[str] = field(default_factory=list)
    cached: List[str] = field(default_factory=list)
    #: The inner engine's report (None for an empty delta batch).
    report: Optional[FlowReport] = field(default=None, repr=False)

    @property
    def flow_events(self) -> List[TelemetryEvent]:
        return list(self.report.events) if self.report is not None else []


class IncrementalEngine:
    """Change-driven re-execution of a flow over delta-fed sources.

    Each :meth:`run_window` call advances the watermark, accepts every
    delta that has arrived, and — unless the batch is empty — runs the
    flow over the *union* of everything accepted so far with a fresh
    inner :class:`~repro.core.engine.Engine` (fresh provenance store,
    private event log) against the shared stage cache.  Stages outside
    the dirty cone replay as cache hits; delta-capable stages recompute
    only never-seen shards.  An empty batch runs nothing at all, but the
    window is still accounted on the ledger.

    Because the final window covers the whole union with a fresh engine,
    its report, provenance stamps, and canonical flow telemetry are
    byte-identical to a single batch run over the same inputs — the
    windows only change *cost*, never results.
    """

    def __init__(
        self,
        flow: DataFlow,
        seed: int = 0,
        max_workers: int = 1,
        executor: str = "thread",
        cache: Optional[StageCache] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        flow.validate()
        if not flow.incremental_sources:
            raise IncrementalError(
                f"flow {flow.name!r} declares no incremental sources; "
                "call flow.declare_incremental(<source stage>) first"
            )
        self.flow = flow
        self.cache = cache if cache is not None else StageCache()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.ledger = WindowLedger(flow.name, self.telemetry)
        self.windows: List[WindowReport] = []
        self.sources: Dict[str, DeltaSource] = {}
        self._seed = seed
        self._max_workers = max_workers
        self._executor = executor

    def add_source(self, source: DeltaSource) -> DeltaSource:
        declared = self.flow.incremental_sources
        if source.stage not in declared:
            raise IncrementalError(
                f"stage {source.stage!r} is not declared incremental in "
                f"flow {self.flow.name!r} (declared: {sorted(declared)})"
            )
        if source.stage in self.sources:
            raise IncrementalError(
                f"source stage {source.stage!r} already has a delta feed"
            )
        self.sources[source.stage] = source
        return source

    @property
    def watermark(self) -> Optional[float]:
        """The last closed watermark (None before the first window)."""
        return self.ledger.last_watermark

    @property
    def final_report(self) -> Optional[FlowReport]:
        """The most recent non-empty window's flow report."""
        for window in reversed(self.windows):
            if window.report is not None:
                return window.report
        return None

    def run_window(self, watermark: float) -> WindowReport:
        """Advance to ``watermark``, accept arrivals, re-execute the cone."""
        if not self.sources:
            raise IncrementalError(
                f"flow {self.flow.name!r}: no delta sources attached"
            )
        previous = self.ledger.last_watermark
        if previous is not None and float(watermark) <= previous:
            raise IncrementalError(
                f"watermark must advance: {watermark} <= closed {previous}"
            )
        arrived = {
            name: source.take_arrived(float(watermark))
            for name, source in self.sources.items()
        }
        changed = [name for name, deltas in arrived.items() if deltas]
        late_events = [
            delta.event_time
            for deltas in arrived.values()
            for delta in deltas
            if previous is not None and delta.event_time <= previous
        ]
        if late_events:
            self.ledger.reopen(min(late_events), sources=len(changed))
        window = WindowReport(
            index=len(self.ledger.windows),
            watermark=float(watermark),
            arrivals={
                name: sum(len(d.items) for d in deltas)
                for name, deltas in arrived.items()
            },
            late=bool(late_events),
            dirty=dirty_cone(self.flow, changed) if changed else [],
        )
        self.ledger.open(
            float(watermark),
            arrivals=sum(window.arrivals.values()),
            late=window.late,
        )
        if changed:
            engine = Engine(
                provenance=ProvenanceStore(),
                seed=self._seed,
                max_workers=self._max_workers,
                executor=self._executor,
                telemetry=Telemetry(),
                cache=self.cache,
            )
            inputs = {
                name: source.dataset() for name, source in self.sources.items()
            }
            report = engine.run(self.flow, inputs)
            window.report = report
            window.executed = list(report.executed_stages)
            window.cached = list(report.cached_stages)
        self.ledger.close(
            arrivals=sum(window.arrivals.values()),
            dirty=len(window.dirty),
            stages_run=len(window.executed),
            stages_cached=len(window.cached),
            cpu_seconds=(
                window.report.total_cpu_time.seconds
                if window.report is not None
                else 0.0
            ),
            bytes=(
                window.report.total_output.bytes
                if window.report is not None
                else 0.0
            ),
        )
        self.windows.append(window)
        return window


__all__ = (
    "DELTA_KINDS",
    "Delta",
    "DeltaSource",
    "IncrementalEngine",
    "WindowLedger",
    "WindowReport",
    "dirty_cone",
)
