"""Shard-level fan-out across threads or worker processes.

All three case-study flows contain one dominant data-parallel stage — the
per-pointing Arecibo search, the per-run CLEO reconstruction batch, the
per-snapshot WebLab packing — and the paper's production answer to all of
them is the same: a farm.  A central store feeds many independent workers
and results are merged back in a deterministic order (the CDF
data-processing model referenced in PAPERS.md).

This module is that farm, scaled to one machine.  A :class:`ShardPool`
maps a function over a list of *shard* work items:

* ``executor="serial"`` (or ``workers == 1``) runs the shards inline in
  the calling thread — the reference semantics;
* ``executor="thread"`` fans them out across a thread pool (NumPy-bound
  shards overlap where the kernels release the GIL);
* ``executor="process"`` fans them out across worker *processes*, the
  true multi-core path.  The shard function must be picklable (a
  module-level function) and so must its items.

Whatever the executor, results are returned **in item order** — never in
completion order — so a stage that merges shard results positionally is
byte-identical for any executor and worker count.  That is the same
determinism contract the engine holds for whole stages.

Two supporting pieces keep process sharding observably identical to the
thread path:

* **Child telemetry forwarding** — a worker process cannot append to the
  parent's event bus, so each shard runs under a fresh process-default
  :class:`~repro.core.telemetry.Telemetry`
  (:func:`~repro.core.telemetry.capture_events`) and the captured events
  and counter values ride home with the shard result, where the pool
  re-emits them (:func:`~repro.core.telemetry.forward_events`) in shard
  order.
* **Shared-memory transfer** — :class:`SharedArray` moves large NumPy
  blocks (filterbank spectra, DM trial matrices) to workers through
  ``multiprocessing.shared_memory`` instead of pickling the bytes
  through a pipe: pickling a handle costs the metadata, not the array.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ShardError
from repro.core.telemetry import (
    Telemetry,
    capture_events,
    forward_events,
    get_telemetry,
)

EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process")


# -- shared-memory arrays -------------------------------------------------
#: Segment names created (owned) by this process.  An attachment made in
#: the owning process — e.g. a same-process pickle round-trip in tests —
#: must NOT untrack, or the owner's eventual unlink double-unregisters.
_owned_segments: set = set()


def _untrack(name: str) -> None:
    """Drop one attached segment from the resource tracker's books.

    Attaching registers the segment with the process's resource tracker,
    but only the *owner* ever unlinks (bpo-39959), so spawn-started
    workers — each with a private tracker — would report every attachment
    as a leak at exit.  Fork-started workers share the parent's tracker:
    there the attach-register is a no-op on the existing entry and
    unregistering here would erase the owner's registration instead
    (the owner's later unlink then double-unregisters).  So: untrack only
    when this process does not share the creator's tracker — i.e. not in
    the owning process itself, and not under the fork start method.
    """
    if name in _owned_segments:
        return
    try:
        if multiprocessing.get_start_method(allow_none=True) == "fork":
            return
        resource_tracker.unregister(name, "shared_memory")
    except Exception:  # noqa: BLE001 - tracker absence/platform quirks
        pass


class SharedArray:
    """A NumPy array whose buffer lives in named shared memory.

    Pickling a :class:`SharedArray` serializes only ``(segment name,
    shape, dtype)``; the receiving process attaches the existing segment
    and sees the same bytes with zero copies.  The creating process owns
    the segment and must call :meth:`unlink` when every consumer is done
    (see :func:`shared_arrays` for the scoped idiom).

    Views returned by :attr:`array` borrow the mapping — do not use them
    after :meth:`close`.
    """

    def __init__(self, shm: shared_memory.SharedMemory, shape: Tuple[int, ...],
                 dtype: np.dtype, owner: bool):
        self._shm = shm
        self._shape = tuple(int(dim) for dim in shape)
        self._dtype = np.dtype(dtype)
        self._owner = owner

    @classmethod
    def copy_from(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a fresh shared segment owned by this process."""
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        _owned_segments.add(shm._name)  # type: ignore[attr-defined]
        return cls(shm, array.shape, array.dtype, owner=True)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def nbytes(self) -> int:
        return int(np.prod(self._shape, dtype=np.int64)) * self._dtype.itemsize

    @property
    def array(self) -> np.ndarray:
        """A zero-copy view over the shared segment."""
        return np.ndarray(self._shape, dtype=self._dtype, buffer=self._shm.buf)

    def copy(self) -> np.ndarray:
        """A private copy that survives :meth:`close`/:meth:`unlink`."""
        return self.array.copy()

    def close(self) -> None:
        """Detach this process's mapping (the segment itself survives)."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment.  Owner only; attachments must not unlink."""
        if self._owner:
            self._shm.unlink()
            _owned_segments.discard(self._shm._name)  # type: ignore[attr-defined]

    def __getstate__(self) -> dict:
        return {
            "name": self._shm.name,
            "shape": self._shape,
            "dtype": self._dtype.str,
        }

    def __setstate__(self, state: dict) -> None:
        shm = shared_memory.SharedMemory(name=state["name"])
        _untrack(shm._name)  # type: ignore[attr-defined]
        self._shm = shm
        self._shape = tuple(state["shape"])
        self._dtype = np.dtype(state["dtype"])
        self._owner = False

    def __repr__(self) -> str:
        return (
            f"SharedArray({self._shm.name!r}, shape={self._shape}, "
            f"dtype={self._dtype}, owner={self._owner})"
        )


@contextmanager
def shared_arrays(arrays: Sequence[np.ndarray]) -> Iterator[List[SharedArray]]:
    """Scope a batch of arrays into shared memory; unlink on exit.

    The yield happens after every array is copied in; on exit the owner
    closes and unlinks all segments.  Workers that are still mapped keep
    the bytes alive until their own mappings drop (POSIX semantics), so
    unlinking after a completed :meth:`ShardPool.map` is always safe.
    """
    handles = [SharedArray.copy_from(array) for array in arrays]
    try:
        yield handles
    finally:
        for handle in handles:
            handle.close()
            handle.unlink()


# -- shard execution ------------------------------------------------------
def _run_shard(fn: Callable, item: object) -> Tuple[object, list, dict]:
    """Worker-process entry point: run one shard under a fresh substrate.

    Everything the shard emits into the process-default telemetry is
    captured and returned (as plain dicts) alongside the result, so the
    parent can forward it in shard order.
    """
    value, events, counters = capture_events(lambda: fn(item))
    return value, [event.to_dict() for event in events], counters


class ShardPool:
    """Maps shard functions over work items on a chosen executor.

    Parameters
    ----------
    executor:
        ``"serial"``, ``"thread"``, or ``"process"``.
    workers:
        Concurrency; ``1`` always degrades to the serial path.
    telemetry:
        Where forwarded child-process events land; defaults to the
        process-default substrate (which is exactly where thread-mode
        shards emit directly, keeping the two paths equivalent).

    The underlying pool is created lazily on first :meth:`map` and reused
    until :meth:`close`; the pool is also a context manager.
    """

    def __init__(
        self,
        executor: str = "thread",
        workers: int = 1,
        telemetry: Optional[Telemetry] = None,
    ):
        if executor not in EXECUTORS:
            raise ShardError(
                f"unknown shard executor {executor!r}; pick one of {EXECUTORS}"
            )
        if workers < 1:
            raise ShardError(f"workers must be >= 1, got {workers}")
        self.executor = executor
        self.workers = int(workers)
        self._telemetry = telemetry
        self._pool: Optional[object] = None
        self._closed = False

    @property
    def effective_executor(self) -> str:
        """The executor shards actually run on (``workers == 1`` is serial)."""
        if self.workers == 1:
            return "serial"
        return self.executor

    def _ensure_pool(self) -> object:
        if self._pool is None:
            if self.effective_executor == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
            elif self.effective_executor == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable, items: Sequence) -> List:
        """Run ``fn`` over ``items``; results come back in item order.

        A shard that raises aborts the map and re-raises in the caller
        (after the remaining shards settle), matching the serial path's
        first-failure semantics for items before the failure.
        """
        if self._closed:
            raise ShardError("shard pool is closed")
        items = list(items)
        if not items:
            return []
        mode = self.effective_executor
        if mode == "serial":
            return [fn(item) for item in items]
        if mode == "thread":
            pool = self._ensure_pool()
            return list(pool.map(fn, items))  # type: ignore[union-attr]
        # Process mode: run each shard under a fresh child substrate and
        # forward its telemetry home in shard order.
        pool = self._ensure_pool()
        futures = [pool.submit(_run_shard, fn, item) for item in items]  # type: ignore[union-attr]
        bus = self._telemetry if self._telemetry is not None else get_telemetry()
        values: List[object] = []
        for future in futures:
            value, events, counters = future.result()
            forward_events(bus, events, counters)
            values.append(value)
        return values

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)  # type: ignore[union-attr]
            self._pool = None
        self._closed = True

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def map_shards(
    fn: Callable,
    items: Sequence,
    workers: int = 1,
    executor: str = "thread",
    telemetry: Optional[Telemetry] = None,
) -> List:
    """One-shot :meth:`ShardPool.map` with pool lifecycle handled."""
    with ShardPool(executor=executor, workers=workers, telemetry=telemetry) as pool:
        return pool.map(fn, items)


__all__ = (
    "EXECUTORS",
    "SharedArray",
    "ShardPool",
    "map_shards",
    "shared_arrays",
)
