"""A small discrete-event simulation kernel.

The storage and transport substrates need to answer "how long does this
take, and what does it cost?" for flows far larger than a laptop can move
for real (a Petabyte of raw Arecibo data, 544 TB of crawls).  They do so by
scheduling events on this kernel rather than sleeping on wall-clock time.

The kernel is deliberately minimal: a virtual clock, a priority queue of
timestamped callbacks, and deterministic FIFO tie-breaking so simulations
are reproducible run to run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.errors import ReproError
from repro.core.units import Duration


class SimulationError(ReproError):
    """Scheduling into the past or running a corrupted event queue."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventLog:
    """Optional trace of executed events, useful in tests and reports."""

    def __init__(self) -> None:
        self.entries: List[tuple] = []

    def record(self, time: float, label: str) -> None:
        self.entries.append((time, label))

    def labels(self) -> List[str]:
        return [label for _, label in self.entries]


class Simulator:
    """Virtual-time event loop.

    Usage::

        sim = Simulator()
        sim.schedule(Duration.hours(3), lambda: print("session done"))
        sim.run()
        assert sim.now.hours_ == 3
    """

    def __init__(self, log_events: bool = False):
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self.log: Optional[EventLog] = EventLog() if log_events else None

    @property
    def now(self) -> Duration:
        """Current virtual time since simulation start."""
        return Duration(self._now)

    @property
    def now_seconds(self) -> float:
        return self._now

    def schedule(
        self,
        delay: Duration,
        action: Callable[[], None],
        label: str = "",
    ) -> _ScheduledEvent:
        """Schedule ``action`` to run ``delay`` after the current time."""
        return self.schedule_at(Duration(self._now + delay.seconds), action, label)

    def schedule_at(
        self,
        when: Duration,
        action: Callable[[], None],
        label: str = "",
    ) -> _ScheduledEvent:
        """Schedule ``action`` at absolute virtual time ``when``."""
        if when.seconds < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at t={when.seconds} "
                f"(clock already at t={self._now})"
            )
        event = _ScheduledEvent(
            time=when.seconds,
            sequence=next(self._sequence),
            action=action,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: _ScheduledEvent) -> None:
        """Mark an event so it is skipped when its time comes."""
        event.cancelled = True

    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            if self.log is not None:
                self.log.record(event.time, event.label)
            event.action()
            return True
        return False

    def run(self, until: Optional[Duration] = None) -> Duration:
        """Run events until the queue drains (or virtual time passes ``until``).

        Returns the final clock value.  When ``until`` is given, events due
        later than it stay queued and the clock is advanced exactly to
        ``until``.
        """
        if until is not None and until.seconds < self._now:
            raise SimulationError(
                f"cannot run until t={until.seconds}: clock already at {self._now}"
            )
        while self._queue:
            next_time = self._queue[0].time
            if until is not None and next_time > until.seconds:
                self._now = until.seconds
                return self.now
            if not self.step():
                break
        if until is not None and self._now < until.seconds:
            self._now = until.seconds
        return self.now

    def pending(self) -> int:
        """Number of not-yet-cancelled queued events."""
        return sum(1 for event in self._queue if not event.cancelled)
