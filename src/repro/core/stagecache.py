"""Provenance-keyed stage-result cache.

The *Pipeline-Centric Provenance Model* observation this module exploits:
the descriptors a provenance record already carries — module name,
version, parameters, input file descriptions — are exactly the key needed
to decide whether a prior stage output can be reused.  CLEO's staged
production ("recompute only what changed") is the same pattern at
collaboration scale.

A :class:`StageCache` stores, per content-addressed key, everything the
engine needs to *skip* a stage while keeping the run observably identical:
the output dataset snapshot, the extra CPU seconds the transform charged,
and the stage's out-of-band stash (see ``StageContext.stash``).  On a hit
the engine replays provenance recording, accounting, and telemetry from
the snapshot, so a warm rerun's FlowReport and event log are byte-identical
to the cold run's (modulo wall clock, which the telemetry layer already
segregates).

Keys cover the flow name, stage name/site/cost model, the per-stage RNG
seed, the stage's declared ``cache_params``, and a descriptor of every
input dataset including its provenance-stamp MD5 digest — the paper's own
"compare the hashes" discrepancy test, applied before compute instead of
after.  Anything that would change the stage's behaviour must appear in
one of those; pipelines surface their config through ``cache_params``.

Hits, misses, and evictions are registry-backed counters
(``stage_cache.hits`` etc.) so they flow into benchmark report rows like
every other instrument.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.dataset import Dataset

if TYPE_CHECKING:
    from repro.core.cachestore import DiskCacheStore
from repro.core.errors import CacheError
from repro.core.telemetry import MetricsRegistry
from repro.core.units import DataSize


def stage_key(
    flow_name: str,
    stage_name: str,
    site: str,
    cpu_seconds_per_gb: float,
    stage_seed: int,
    input_descriptors: Sequence[str],
    cache_params: Optional[Mapping[str, object]] = None,
    fault_digest: str = "",
) -> str:
    """Content address of one stage execution.

    Deterministic across processes: every component is rendered to a
    canonical JSON document and hashed with SHA-256.  Input descriptors
    are sorted, matching how the engine freezes them into provenance
    records.  ``fault_digest`` is the active
    :class:`~repro.core.faults.FaultPlan` digest (empty when no faults
    are armed): results computed under injection are keyed apart from
    clean results, so a faulted run can never poison — nor be serviced
    from — a warm fault-free cache.
    """
    payload = {
        "flow": flow_name,
        "stage": stage_name,
        "site": site,
        "cpu_seconds_per_gb": repr(float(cpu_seconds_per_gb)),
        "seed": int(stage_seed),
        "inputs": sorted(str(descriptor) for descriptor in input_descriptors),
        "params": {str(k): str(v) for k, v in (cache_params or {}).items()},
        "faults": str(fault_digest),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def shard_key(
    flow_name: str,
    stage_name: str,
    fn_name: str,
    item_descriptor: str,
    cache_params: Optional[Mapping[str, object]] = None,
    fault_digest: str = "",
) -> str:
    """Content address of one shard of a stage's fan-out.

    Finer-grained sibling of :func:`stage_key`: where a stage key covers
    the whole input set (any new item misses the whole stage), a shard
    key covers one item of a ``map_shards`` fan-out, so an incremental
    window recomputes only the items it has never seen.  The payload is
    tagged ``"kind": "shard"`` so shard and stage addresses can never
    collide even for pathological inputs.
    """
    payload = {
        "kind": "shard",
        "flow": flow_name,
        "stage": stage_name,
        "fn": str(fn_name),
        "item": str(item_descriptor),
        "params": {str(k): str(v) for k, v in (cache_params or {}).items()},
        "faults": str(fault_digest),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CachedShard:
    """One memoized shard result of a stage's ``map_shards`` fan-out."""

    value: object


@dataclass
class CachedStage:
    """Everything needed to replay one stage without running it."""

    output_name: str
    output_version: str
    output_bytes: float
    output_items: tuple = ()
    output_attrs: Mapping[str, object] = field(default_factory=dict)
    extra_cpu_seconds: float = 0.0
    stash: Mapping[str, object] = field(default_factory=dict)
    # Availability accounting: a hit must replay the recorded retries,
    # injected faults, and degradation flags exactly, or a resumed run's
    # prefix would diverge from the uninterrupted run's event log.
    attempts: int = 1
    retry_wait_seconds: float = 0.0
    degraded: bool = False
    fault_attrs: tuple = ()
    dead_letter_attrs: Optional[Mapping[str, object]] = None

    @classmethod
    def capture(
        cls,
        output: Dataset,
        extra_cpu_seconds: float,
        stash: Mapping[str, object],
        attempts: int = 1,
        retry_wait_seconds: float = 0.0,
        degraded: bool = False,
        fault_attrs: Sequence[Mapping[str, object]] = (),
        dead_letter_attrs: Optional[Mapping[str, object]] = None,
    ) -> "CachedStage":
        """Snapshot a completed stage's result.

        The dataset's mutable containers are copied shallowly; the stash
        is stored as-is (stage stashes are treated as immutable once the
        stage returns — the same contract downstream stages already rely
        on when reading a predecessor's stash).
        """
        return cls(
            output_name=output.name,
            output_version=output.version,
            output_bytes=output.size.bytes,
            output_items=tuple(output.items),
            output_attrs=dict(output.attrs),
            extra_cpu_seconds=float(extra_cpu_seconds),
            stash=dict(stash),
            attempts=int(attempts),
            retry_wait_seconds=float(retry_wait_seconds),
            degraded=bool(degraded),
            fault_attrs=tuple(dict(attrs) for attrs in fault_attrs),
            dead_letter_attrs=(
                dict(dead_letter_attrs) if dead_letter_attrs is not None else None
            ),
        )

    def rebuild_output(self) -> Dataset:
        """A fresh Dataset equivalent to the one the stage returned.

        ``provenance_id`` is left unset — the engine re-commits the stage
        and attaches the run's own reserved id, exactly as it would after
        real execution.  ``dataset_id`` is freshly allocated; it is
        process-local bookkeeping excluded from provenance descriptors.
        """
        return Dataset(
            name=self.output_name,
            size=DataSize(self.output_bytes),
            items=list(self.output_items),
            version=self.output_version,
            attrs=dict(self.output_attrs),
        )


class StageCache:
    """LRU cache of :class:`CachedStage` snapshots keyed by provenance.

    Parameters
    ----------
    max_entries:
        Optional capacity; least-recently-used entries are evicted past
        it.  ``None`` (default) means unbounded — figure pipelines have a
        handful of stages.
    registry:
        Metrics registry the hit/miss/eviction counters live in; a private
        one is created if not supplied.  Pass the engine's registry to
        surface cache traffic alongside the flow's other instruments.
    store:
        Optional :class:`~repro.core.cachestore.DiskCacheStore` backing.
        With a store, this cache becomes a read-through/write-through L1
        over a shared on-disk L2: lookups that miss in memory consult the
        store (a disk hit counts as a hit, plus ``stage_cache.disk_hits``),
        stores write through (atomic rename; an unpicklable entry degrades
        that stage to memory-only, counted in
        ``stage_cache.disk_write_skips``), and in-memory LRU eviction is
        harmless because the entry survives on disk.  Multiple engines —
        in one process, many processes, or successive runs — may share one
        store root; content-addressed keys make racing writers safe.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        store: Optional["DiskCacheStore"] = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise CacheError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.registry = registry if registry is not None else MetricsRegistry()
        self.disk = store
        self._entries: "OrderedDict[str, CachedStage]" = OrderedDict()
        self._lock = threading.Lock()

    @classmethod
    def on_disk(
        cls,
        root: "Union[str, Path]",
        max_bytes: Optional[int] = None,
        max_disk_entries: Optional[int] = None,
        max_entries: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "StageCache":
        """A stage cache over a shared on-disk store rooted at ``root``.

        ``max_bytes``/``max_disk_entries`` bound the on-disk store (GC'd
        oldest-first after each write); ``max_entries`` bounds the
        in-memory L1 as usual.
        """
        from repro.core.cachestore import DiskCacheStore

        return cls(
            max_entries=max_entries,
            registry=registry,
            store=DiskCacheStore(
                root, max_bytes=max_bytes, max_entries=max_disk_entries
            ),
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def lookup(self, key: str) -> Optional[CachedStage]:
        """Return the entry for ``key`` (marking it recently used), or None.

        With a disk store attached, a memory miss falls through to the
        store; a disk hit is promoted into the in-memory L1 and counts as
        a hit (plus ``stage_cache.disk_hits``).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.registry.counter("stage_cache.hits").inc()
                return entry
        if self.disk is not None:
            from_disk = self.disk.read(key)
            if isinstance(from_disk, CachedStage):
                with self._lock:
                    self._entries[key] = from_disk
                    self._entries.move_to_end(key)
                    self._bound_memory_locked()
                self.registry.counter("stage_cache.hits").inc()
                self.registry.counter("stage_cache.disk_hits").inc()
                return from_disk
        self.registry.counter("stage_cache.misses").inc()
        return None

    def _bound_memory_locked(self) -> None:
        """Enforce the in-memory LRU bound; caller holds ``self._lock``."""
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.registry.counter("stage_cache.evictions").inc()
        self.registry.gauge("stage_cache.entries").set(float(len(self._entries)))

    def store(self, key: str, entry: CachedStage) -> None:
        """Insert ``entry``, evicting LRU entries past ``max_entries``.

        With a disk store attached the entry is also written through
        (atomic write-then-rename keyed by the content address); an entry
        whose payload cannot pickle stays memory-only and is counted in
        ``stage_cache.disk_write_skips``.
        """
        if not isinstance(entry, CachedStage):
            raise CacheError(
                f"expected a CachedStage, got {type(entry).__name__}"
            )
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._bound_memory_locked()
        if self.disk is not None:
            if self.disk.write(key, entry):
                self.registry.counter("stage_cache.disk_writes").inc()
            else:
                self.registry.counter("stage_cache.disk_write_skips").inc()

    def lookup_shard(self, key: str) -> Optional[CachedShard]:
        """Return the shard entry for ``key`` (marking it used), or None.

        Shard traffic is counted apart from stage traffic
        (``stage_cache.shard_hits``/``shard_misses``) so stage-level
        warm-start assertions stay unchanged by shard fan-out.
        """
        with self._lock:
            entry = self._entries.get(key)
            if isinstance(entry, CachedShard):
                self._entries.move_to_end(key)
                self.registry.counter("stage_cache.shard_hits").inc()
                return entry
        if self.disk is not None:
            from_disk = self.disk.read(key)
            if isinstance(from_disk, CachedShard):
                with self._lock:
                    self._entries[key] = from_disk
                    self._entries.move_to_end(key)
                    self._bound_memory_locked()
                self.registry.counter("stage_cache.shard_hits").inc()
                self.registry.counter("stage_cache.disk_hits").inc()
                return from_disk
        self.registry.counter("stage_cache.shard_misses").inc()
        return None

    def store_shard(self, key: str, value: object) -> None:
        """Memoize one shard result under its content address."""
        entry = CachedShard(value=value)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._bound_memory_locked()
        if self.disk is not None:
            if self.disk.write(key, entry):
                self.registry.counter("stage_cache.disk_writes").inc()
            else:
                self.registry.counter("stage_cache.disk_write_skips").inc()

    def invalidate(self, key: str) -> bool:
        """Drop one entry from memory and disk; returns whether it existed."""
        with self._lock:
            existed = self._entries.pop(key, None) is not None
            self.registry.gauge("stage_cache.entries").set(float(len(self._entries)))
        if self.disk is not None:
            existed = self.disk.delete(key) or existed
        return existed

    def clear(self, disk: bool = False) -> None:
        """Empty the in-memory L1 (and, with ``disk=True``, the store)."""
        with self._lock:
            self._entries.clear()
            self.registry.gauge("stage_cache.entries").set(0.0)
        if disk and self.disk is not None:
            self.disk.clear()

    # -- counters ---------------------------------------------------------
    @property
    def hits(self) -> int:
        return int(self.registry.value("stage_cache.hits"))

    @property
    def misses(self) -> int:
        return int(self.registry.value("stage_cache.misses"))

    @property
    def evictions(self) -> int:
        return int(self.registry.value("stage_cache.evictions"))

    @property
    def shard_hits(self) -> int:
        """Shard-level hits (separate from whole-stage ``hits``)."""
        return int(self.registry.value("stage_cache.shard_hits"))

    @property
    def shard_misses(self) -> int:
        return int(self.registry.value("stage_cache.shard_misses"))

    @property
    def disk_hits(self) -> int:
        """Hits that were serviced from the on-disk store (subset of hits)."""
        return int(self.registry.value("stage_cache.disk_hits"))

    @property
    def disk_writes(self) -> int:
        return int(self.registry.value("stage_cache.disk_writes"))

    @property
    def disk_write_skips(self) -> int:
        """Entries that could not pickle and stayed memory-only."""
        return int(self.registry.value("stage_cache.disk_write_skips"))

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self),
        }

    def disk_stats(self) -> Dict[str, int]:
        """Store-side accounting; all zeros when no store is attached."""
        stored = self.disk.stats() if self.disk is not None else {"entries": 0, "bytes": 0}
        return {
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "disk_write_skips": self.disk_write_skips,
            "disk_entries": stored["entries"],
            "disk_bytes": stored["bytes"],
        }

    def rows(self) -> List[Dict[str, object]]:
        """Benchmark-table rows for the cache counters."""
        return [
            {"metric": f"stage_cache.{name}", "value": value}
            for name, value in self.stats().items()
        ]


__all__: Tuple[str, ...] = (
    "CachedShard",
    "CachedStage",
    "StageCache",
    "shard_key",
    "stage_key",
)
