"""Backend-independent relational layer.

The paper is explicit about this layering for the CLEO EventStore:

    "All but the lowest layers of the database interface code are
    independent of the database implementation, allowing transparent use of
    an embedded database (SQLite) in the standalone versions and a standard
    relational database system (currently MySQL or MS SQL Server) in the
    larger scale systems."

We reproduce exactly that: :class:`Database` is the interface every
subsystem codes against; :class:`SqliteBackend` is the one concrete backend
(Python's stdlib ``sqlite3``), usable embedded/in-memory for "personal"
scale and file-backed with immediate-mode locking for shared scales.
"""

from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Union

from repro.core.errors import DatabaseError

Row = sqlite3.Row
Params = Union[Sequence[Any], dict]


class Database:
    """Interface all higher layers depend on.

    Concrete backends implement :meth:`_execute`; everything else is
    expressed in terms of it.  Statements use ``?`` placeholders.
    """

    # -- abstract ----------------------------------------------------------
    def _execute(self, sql: str, params: Params = ()) -> sqlite3.Cursor:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @contextmanager
    def transaction(self) -> Iterator["Database"]:
        raise NotImplementedError

    # -- generic API ---------------------------------------------------------
    def execute(self, sql: str, params: Params = ()) -> None:
        """Run a statement for its side effects."""
        self._execute(sql, params)

    def executemany(self, sql: str, rows: Iterable[Params]) -> int:
        """Run one statement for many parameter rows; returns the row count."""
        count = 0
        for row in rows:
            self._execute(sql, row)
            count += 1
        return count

    def query(self, sql: str, params: Params = ()) -> List[Row]:
        """Run a SELECT and return all rows."""
        return self._execute(sql, params).fetchall()

    def query_one(self, sql: str, params: Params = ()) -> Optional[Row]:
        """Run a SELECT expected to return at most one row."""
        rows = self._execute(sql, params).fetchmany(2)
        if len(rows) > 1:
            raise DatabaseError(f"query_one returned multiple rows: {sql!r}")
        return rows[0] if rows else None

    def query_value(self, sql: str, params: Params = ()) -> Any:
        """Run a SELECT returning a single scalar (or None)."""
        row = self.query_one(sql, params)
        return row[0] if row is not None else None

    def insert(self, table: str, **values: Any) -> int:
        """Insert one row; returns the new rowid."""
        if not values:
            raise DatabaseError(f"insert into {table!r} with no values")
        columns = ", ".join(values)
        placeholders = ", ".join("?" for _ in values)
        cursor = self._execute(
            f"INSERT INTO {table} ({columns}) VALUES ({placeholders})",
            tuple(values.values()),
        )
        return int(cursor.lastrowid or 0)

    def table_exists(self, name: str) -> bool:
        return (
            self.query_value(
                "SELECT count(*) FROM sqlite_master WHERE type = 'table' AND name = ?",
                (name,),
            )
            > 0
        )

    def table_names(self) -> List[str]:
        rows = self.query(
            "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
        )
        return [row["name"] for row in rows]

    def count(self, table: str, where: str = "", params: Params = ()) -> int:
        sql = f"SELECT count(*) FROM {table}"
        if where:
            sql += f" WHERE {where}"
        return int(self.query_value(sql, params))


class SqliteBackend(Database):
    """The embedded backend.

    ``path=None`` gives a private in-memory database (the "personal
    EventStore on a laptop" case, "supporting completely disconnected
    operation"); a filesystem path gives a durable store that multiple
    components of one process share.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.path = str(path) if path is not None else ":memory:"
        try:
            # Cross-thread use is safe here: every statement goes through
            # _execute, which serializes on an RLock.
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise DatabaseError(f"cannot open database {self.path!r}: {exc}") from exc
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.isolation_level = None  # autocommit; transactions are explicit
        self._lock = threading.RLock()
        self._in_transaction = False
        self._closed = False

    def _execute(self, sql: str, params: Params = ()) -> sqlite3.Cursor:
        if self._closed:
            raise DatabaseError(f"database {self.path!r} is closed")
        with self._lock:
            try:
                return self._conn.execute(sql, params)
            except sqlite3.Error as exc:
                raise DatabaseError(f"{exc} (while executing {sql!r})") from exc

    @contextmanager
    def transaction(self) -> Iterator["SqliteBackend"]:
        """Explicit transaction; nested use raises (keep transactions short —
        the paper's merge strategy exists precisely to avoid long-running
        open transactions on the main repository)."""
        with self._lock:
            if self._in_transaction:
                raise DatabaseError("nested transactions are not supported")
            self._execute("BEGIN IMMEDIATE")
            self._in_transaction = True
            try:
                yield self
            except Exception:
                # The caller's exception is the diagnosis; a ROLLBACK that
                # itself fails (connection died, disk gone) must not mask
                # it.  sqlite aborts the transaction either way.
                try:
                    self._execute("ROLLBACK")
                except DatabaseError:
                    pass
                raise
            else:
                self._execute("COMMIT")
            finally:
                self._in_transaction = False

    def close(self) -> None:
        if not self._closed:
            self._conn.close()
            self._closed = True

    def __enter__(self) -> "SqliteBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def connect(path: Optional[Union[str, Path]] = None) -> SqliteBackend:
    """Open the default backend: embedded SQLite."""
    return SqliteBackend(path)
