"""Backend-independent relational layer over stdlib sqlite3."""

from repro.db.connection import Database, SqliteBackend, connect
from repro.db.query import Select, rows_to_dicts
from repro.db.schema import Column, Schema, Table, apply_schema, applied_version, column

__all__ = [
    "Database",
    "SqliteBackend",
    "connect",
    "Select",
    "rows_to_dicts",
    "Column",
    "Schema",
    "Table",
    "apply_schema",
    "applied_version",
    "column",
]
