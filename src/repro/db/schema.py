"""Declarative schemas with versioned migration.

Each subsystem (EventStore, WebLab metadata DB, Arecibo candidate DB)
declares its tables and indexes once; :func:`apply_schema` creates what is
missing and records the schema version, so a store file created by an older
library version is upgraded in place — the paper's systems live for decades
("the plan is to keep the raw data and data products indefinitely"), which
makes in-place schema evolution a requirement, not a nicety.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.errors import DatabaseError
from repro.db.connection import Database

_META_TABLE = "_schema_meta"


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    type: str = "TEXT"
    constraints: str = ""

    def render(self) -> str:
        parts = [self.name, self.type]
        if self.constraints:
            parts.append(self.constraints)
        return " ".join(parts)


@dataclass(frozen=True)
class Table:
    """One table with its columns, constraints, and secondary indexes."""

    name: str
    columns: Tuple[Column, ...]
    constraints: Tuple[str, ...] = ()
    indexes: Tuple[Tuple[str, ...], ...] = ()

    def create_sql(self) -> str:
        body = [column.render() for column in self.columns]
        body.extend(self.constraints)
        return f"CREATE TABLE IF NOT EXISTS {self.name} ({', '.join(body)})"

    def index_sql(self) -> List[str]:
        statements = []
        for columns in self.indexes:
            index_name = f"idx_{self.name}_{'_'.join(columns)}"
            statements.append(
                f"CREATE INDEX IF NOT EXISTS {index_name} "
                f"ON {self.name} ({', '.join(columns)})"
            )
        return statements


def column(name: str, type: str = "TEXT", constraints: str = "") -> Column:
    return Column(name=name, type=type, constraints=constraints)


@dataclass
class Schema:
    """A named, versioned collection of tables."""

    name: str
    version: int
    tables: List[Table] = field(default_factory=list)

    def table(
        self,
        name: str,
        columns: Sequence[Column],
        constraints: Sequence[str] = (),
        indexes: Sequence[Sequence[str]] = (),
    ) -> Table:
        if any(existing.name == name for existing in self.tables):
            raise DatabaseError(f"duplicate table {name!r} in schema {self.name!r}")
        table = Table(
            name=name,
            columns=tuple(columns),
            constraints=tuple(constraints),
            indexes=tuple(tuple(index) for index in indexes),
        )
        self.tables.append(table)
        return table


def _ensure_meta_table(db: Database) -> None:
    db.execute(
        f"CREATE TABLE IF NOT EXISTS {_META_TABLE} "
        "(schema_name TEXT PRIMARY KEY, version INTEGER NOT NULL)"
    )


def applied_version(db: Database, schema_name: str) -> int:
    """Schema version currently applied to this database (0 if never)."""
    _ensure_meta_table(db)
    value = db.query_value(
        f"SELECT version FROM {_META_TABLE} WHERE schema_name = ?", (schema_name,)
    )
    return int(value) if value is not None else 0


def apply_schema(db: Database, schema: Schema) -> int:
    """Create missing tables and indexes; returns the applied version.

    Creation is idempotent.  Downgrades (database newer than code) are
    refused rather than guessed at.
    """
    current = applied_version(db, schema.name)
    if current > schema.version:
        raise DatabaseError(
            f"database has schema {schema.name!r} v{current}, "
            f"code only knows v{schema.version}"
        )
    for table in schema.tables:
        db.execute(table.create_sql())
        for statement in table.index_sql():
            db.execute(statement)
    if current == 0:
        db.execute(
            f"INSERT INTO {_META_TABLE} (schema_name, version) VALUES (?, ?)",
            (schema.name, schema.version),
        )
    elif current < schema.version:
        db.execute(
            f"UPDATE {_META_TABLE} SET version = ? WHERE schema_name = ?",
            (schema.version, schema.name),
        )
    return schema.version
