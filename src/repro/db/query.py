"""Small composable SELECT builder and row mapping helpers.

Heavier layers (subset extraction in WebLab, grade queries in EventStore)
need dynamic WHERE clauses; hand-concatenating SQL invites both bugs and
injection, so this module centralizes it.  Only the features actually used
by the library are implemented — this is not an ORM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import DatabaseError
from repro.db.connection import Database, Row


@dataclass
class Select:
    """A buildable SELECT statement.

    Example::

        rows = (
            Select("pages", ["url", "fetched_at"])
            .where("domain = ?", "cornell.edu")
            .where("fetched_at <= ?", cutoff)
            .order_by("fetched_at DESC")
            .limit(10)
            .run(db)
        )
    """

    table: str
    columns: Sequence[str] = ("*",)
    _wheres: List[Tuple[str, Tuple[Any, ...]]] = field(default_factory=list)
    _order: Optional[str] = None
    _group: Optional[str] = None
    _limit: Optional[int] = None

    def where(self, clause: str, *params: Any) -> "Select":
        self._wheres.append((clause, tuple(params)))
        return self

    def where_in(self, column: str, values: Iterable[Any]) -> "Select":
        values = list(values)
        if not values:
            # An empty IN list matches nothing; encode that explicitly.
            self._wheres.append(("1 = 0", ()))
            return self
        placeholders = ", ".join("?" for _ in values)
        self._wheres.append((f"{column} IN ({placeholders})", tuple(values)))
        return self

    def order_by(self, clause: str) -> "Select":
        self._order = clause
        return self

    def group_by(self, clause: str) -> "Select":
        self._group = clause
        return self

    def limit(self, n: int) -> "Select":
        if n < 0:
            raise DatabaseError(f"negative LIMIT: {n}")
        self._limit = n
        return self

    def sql(self) -> Tuple[str, Tuple[Any, ...]]:
        parts = [f"SELECT {', '.join(self.columns)} FROM {self.table}"]
        params: List[Any] = []
        if self._wheres:
            clauses = " AND ".join(f"({clause})" for clause, _ in self._wheres)
            parts.append(f"WHERE {clauses}")
            for _, clause_params in self._wheres:
                params.extend(clause_params)
        if self._group:
            parts.append(f"GROUP BY {self._group}")
        if self._order:
            parts.append(f"ORDER BY {self._order}")
        if self._limit is not None:
            parts.append(f"LIMIT {self._limit}")
        return " ".join(parts), tuple(params)

    def run(self, db: Database) -> List[Row]:
        sql, params = self.sql()
        return db.query(sql, params)

    def run_one(self, db: Database) -> Optional[Row]:
        sql, params = self.sql()
        return db.query_one(sql, params)

    def count(self, db: Database) -> int:
        inner_sql, params = self.sql()
        return int(db.query_value(f"SELECT count(*) FROM ({inner_sql})", params))


def rows_to_dicts(rows: Iterable[Row]) -> List[dict]:
    """Materialize sqlite3.Row objects as plain dicts."""
    return [dict(row) for row in rows]
