"""Synthetic sky model: pulsars, transients, and terrestrial interference.

Ground truth for the survey simulator.  Each pointing of the 7-beam ALFA
receiver sees: (a) zero or more pulsars — point sources, present in exactly
one beam; (b) occasional one-off transients; and (c) radio frequency
interference, which enters through the sidelobes and therefore appears in
*all seven beams at once* and recurs across pointings — the two facts the
paper's meta-analysis exploits to cull it ("a meta-analysis is needed to
cull those candidates that appear in multiple directions on the sky").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import SearchError

N_BEAMS = 7  # the ALFA feed array


@dataclass(frozen=True)
class Pulsar:
    """A pulsar: spin period, dispersion measure, brightness, binary drift."""

    name: str
    period_s: float
    dm: float                 # pc cm^-3
    snr: float                # target folded signal-to-noise in one pointing
    duty_cycle: float = 0.05  # pulse width as a fraction of the period
    accel_ms2: float = 0.0    # line-of-sight acceleration (binary systems)

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise SearchError(f"{self.name}: period must be positive")
        if self.dm < 0:
            raise SearchError(f"{self.name}: DM cannot be negative")
        if not 0 < self.duty_cycle < 0.5:
            raise SearchError(f"{self.name}: duty cycle must be in (0, 0.5)")

    @property
    def is_binary(self) -> bool:
        return self.accel_ms2 != 0.0


@dataclass(frozen=True)
class Transient:
    """A one-off dispersed pulse (the 'transient signals that may be
    associated with astrophysical objects other than pulsars')."""

    name: str
    time_s: float
    dm: float
    snr: float
    width_s: float = 0.003


@dataclass(frozen=True)
class RFISource:
    """Terrestrial interference.

    ``periodic`` sources (radar, power-line harmonics) mimic pulsars
    uncannily well but appear at DM ~ 0 in all beams; ``narrowband``
    sources park on a few channels; ``impulsive`` sources splash broadband
    spikes."""

    name: str
    kind: str  # "periodic" | "narrowband" | "impulsive"
    strength: float = 8.0
    period_s: Optional[float] = None        # periodic
    channels: Tuple[int, ...] = ()          # narrowband
    rate_per_obs: float = 3.0               # impulsive

    def __post_init__(self) -> None:
        if self.kind not in ("periodic", "narrowband", "impulsive"):
            raise SearchError(f"unknown RFI kind {self.kind!r}")
        if self.kind == "periodic" and (self.period_s is None or self.period_s <= 0):
            raise SearchError(f"{self.name}: periodic RFI needs a positive period")
        if self.kind == "narrowband" and not self.channels:
            raise SearchError(f"{self.name}: narrowband RFI needs channels")


@dataclass
class Pointing:
    """One telescope pointing: a sky position with its per-beam sources."""

    pointing_id: int
    pulsars_by_beam: Tuple[Tuple[Pulsar, ...], ...]  # length N_BEAMS
    transients_by_beam: Tuple[Tuple[Transient, ...], ...]
    rfi: Tuple[RFISource, ...]  # RFI hits all beams

    def __post_init__(self) -> None:
        if len(self.pulsars_by_beam) != N_BEAMS:
            raise SearchError(f"pointing needs {N_BEAMS} beams of pulsars")
        if len(self.transients_by_beam) != N_BEAMS:
            raise SearchError(f"pointing needs {N_BEAMS} beams of transients")

    def all_pulsars(self) -> List[Pulsar]:
        return [p for beam in self.pulsars_by_beam for p in beam]

    def beam_of(self, pulsar_name: str) -> int:
        for beam_index, beam in enumerate(self.pulsars_by_beam):
            if any(p.name == pulsar_name for p in beam):
                return beam_index
        raise SearchError(f"no pulsar {pulsar_name!r} in this pointing")


@dataclass
class SkyModel:
    """Generates a survey's worth of pointings with known ground truth."""

    pulsar_fraction: float = 0.35      # pointings containing a pulsar
    binary_fraction: float = 0.25      # of pulsars that are in binaries
    transient_rate: float = 0.15       # transients per pointing
    rfi_environment: Sequence[RFISource] = field(
        default_factory=lambda: DEFAULT_RFI_ENVIRONMENT
    )
    period_range_s: Tuple[float, float] = (0.02, 0.5)
    dm_range: Tuple[float, float] = (10.0, 90.0)
    snr_range: Tuple[float, float] = (9.0, 30.0)
    seed: int = 0

    def generate_pointings(self, count: int) -> List[Pointing]:
        rng = random.Random(self.seed)
        pointings = []
        pulsar_counter = 0
        for pointing_id in range(count):
            pulsars: List[List[Pulsar]] = [[] for _ in range(N_BEAMS)]
            transients: List[List[Transient]] = [[] for _ in range(N_BEAMS)]
            if rng.random() < self.pulsar_fraction:
                pulsar_counter += 1
                beam = rng.randrange(N_BEAMS)
                accel = 0.0
                if rng.random() < self.binary_fraction:
                    accel = rng.uniform(5.0, 25.0) * rng.choice([-1.0, 1.0])
                pulsars[beam].append(
                    Pulsar(
                        name=f"PSR_J{pointing_id:04d}+{pulsar_counter:02d}",
                        period_s=rng.uniform(*self.period_range_s),
                        dm=rng.uniform(*self.dm_range),
                        snr=rng.uniform(*self.snr_range),
                        duty_cycle=rng.uniform(0.03, 0.08),
                        accel_ms2=accel,
                    )
                )
            if rng.random() < self.transient_rate:
                beam = rng.randrange(N_BEAMS)
                transients[beam].append(
                    Transient(
                        name=f"TRANS_{pointing_id:04d}",
                        time_s=rng.uniform(0.2, 0.8),  # fraction of obs; scaled later
                        dm=rng.uniform(*self.dm_range),
                        snr=rng.uniform(10.0, 25.0),
                    )
                )
            # RFI recurs: each environment source afflicts a pointing with
            # high probability, which is what makes it cullable by
            # cross-pointing coincidence.
            rfi = tuple(
                source for source in self.rfi_environment if rng.random() < 0.8
            )
            pointings.append(
                Pointing(
                    pointing_id=pointing_id,
                    pulsars_by_beam=tuple(tuple(beam) for beam in pulsars),
                    transients_by_beam=tuple(tuple(beam) for beam in transients),
                    rfi=rfi,
                )
            )
        return pointings


DEFAULT_RFI_ENVIRONMENT: Tuple[RFISource, ...] = (
    RFISource(name="airport-radar", kind="periodic", period_s=0.1234, strength=12.0),
    RFISource(name="powerline-chatter", kind="periodic", period_s=1.0 / 60.0, strength=7.0),
    RFISource(name="carrier-1402MHz", kind="narrowband", channels=(11, 12), strength=10.0),
    RFISource(name="lightning", kind="impulsive", rate_per_obs=2.0, strength=9.0),
)
