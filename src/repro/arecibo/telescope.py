"""The ALFA observation simulator.

Generates the 7-beam dynamic spectra for a pointing: Gaussian radiometer
noise, dispersed pulsar pulse trains (one beam), dispersed transients (one
beam), and the pointing's RFI — which, critically, is injected into *all
seven beams*, because interference enters through the sidelobes.  That
asymmetry is the physical basis of the multibeam coincidence test in
:mod:`repro.arecibo.rfi`.

Scaling note: observations are seconds long instead of the survey's
~270 s per pointing, so binary orbital acceleration is scaled through a
simulation light-speed constant ``C_SIM`` chosen to keep the dimensionless
drift (pulse-frequency change over one observation, in Fourier bins) in
the same regime as the real survey.  The acceleration *search* in
:mod:`repro.arecibo.accelsearch` uses the same constant, so the physics it
exercises — undetectable without trials, recovered with them — is
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.arecibo.filterbank import Filterbank, dispersion_delay_s
from repro.arecibo.sky import N_BEAMS, Pointing, Pulsar, RFISource, Transient
from repro.core.errors import SearchError

# Simulation light speed (m/s): maps sky-model accelerations (5-25 m/s^2)
# onto frequency drifts of a few Fourier bins over a seconds-long
# observation, matching the real survey's drift-in-bins regime.
C_SIM = 300.0


@dataclass(frozen=True)
class ObservationConfig:
    """Receiver and sampling parameters (laptop-scaled ALFA)."""

    n_channels: int = 64
    n_samples: int = 8192
    tsamp_s: float = 0.0005
    freq_low_mhz: float = 1300.0
    freq_high_mhz: float = 1500.0
    noise_sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.n_channels < 2 or self.n_samples < 16:
            raise SearchError("observation needs >= 2 channels and >= 16 samples")
        if self.freq_high_mhz <= self.freq_low_mhz:
            raise SearchError("need freq_high > freq_low")

    @property
    def duration_s(self) -> float:
        return self.n_samples * self.tsamp_s

    @property
    def channel_freqs_mhz(self) -> np.ndarray:
        edges = np.linspace(self.freq_low_mhz, self.freq_high_mhz, self.n_channels + 1)
        return (edges[:-1] + edges[1:]) / 2.0


def _pulse_profile_amplitudes(
    times_s: np.ndarray,
    period_s: float,
    duty_cycle: float,
    phase0: float,
    drift_fractional: float,
) -> np.ndarray:
    """Gaussian pulse-train amplitude at each sample time (peak 1).

    ``drift_fractional`` applies a linear spin-frequency drift over the
    observation (binary acceleration): phase(t) = f0*t*(1 + d*t/(2*T)).
    """
    f0 = 1.0 / period_s
    total = times_s[-1] if len(times_s) else 1.0
    phase = f0 * times_s * (1.0 + drift_fractional * times_s / (2.0 * max(total, 1e-12)))
    phase = (phase + phase0) % 1.0
    width = duty_cycle / 2.355  # FWHM -> sigma, in phase units
    distance = np.minimum(phase, 1.0 - phase)
    return np.exp(-0.5 * (distance / width) ** 2)


class ObservationSimulator:
    """Renders a pointing into seven filterbanks, with ground truth."""

    def __init__(self, config: Optional[ObservationConfig] = None):
        self.config = config if config is not None else ObservationConfig()

    # -- injections ----------------------------------------------------------
    def _inject_pulsar(
        self,
        data: np.ndarray,
        pulsar: Pulsar,
        freqs: np.ndarray,
        times: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        config = self.config
        drift = pulsar.accel_ms2 * config.duration_s / C_SIM
        phase0 = float(rng.uniform(0, 1))
        # Per-sample amplitude for the target folded S/N: the matched-filter
        # S/N of the dedispersed, folded profile scales as
        # a * sqrt(n_on_samples * n_channels).
        n_on = max(1.0, pulsar.duty_cycle * config.n_samples)
        amplitude = pulsar.snr * config.noise_sigma / np.sqrt(n_on * config.n_channels)
        delays = dispersion_delay_s(pulsar.dm, freqs, ref_mhz=float(freqs.max()))
        for channel, delay in enumerate(delays):
            data[channel] += amplitude * _pulse_profile_amplitudes(
                times - delay, pulsar.period_s, pulsar.duty_cycle, phase0, drift
            )

    def _inject_transient(
        self,
        data: np.ndarray,
        transient: Transient,
        freqs: np.ndarray,
        times: np.ndarray,
    ) -> None:
        config = self.config
        t0 = transient.time_s * config.duration_s  # sky model stores a fraction
        width = max(transient.width_s, config.tsamp_s)
        n_on = max(1.0, width / config.tsamp_s)
        amplitude = transient.snr * config.noise_sigma / np.sqrt(n_on * config.n_channels)
        delays = dispersion_delay_s(transient.dm, freqs, ref_mhz=float(freqs.max()))
        for channel, delay in enumerate(delays):
            data[channel] += amplitude * np.exp(
                -0.5 * ((times - t0 - delay) / width) ** 2
            )

    def _inject_rfi(
        self,
        beams: List[np.ndarray],
        source: RFISource,
        times: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """RFI is common-mode: the same realization lands in every beam."""
        config = self.config
        if source.kind == "periodic":
            phase0 = float(rng.uniform(0, 1))
            n_on = max(1.0, 0.05 * config.n_samples)
            amplitude = source.strength * config.noise_sigma / np.sqrt(
                n_on * config.n_channels
            )
            pattern = amplitude * _pulse_profile_amplitudes(
                times, float(source.period_s), 0.05, phase0, 0.0
            )
            for data in beams:
                data += pattern  # undispersed: identical in every channel
        elif source.kind == "narrowband":
            tone = source.strength * config.noise_sigma * np.abs(
                rng.normal(0.6, 0.2, size=len(times))
            )
            for data in beams:
                for channel in source.channels:
                    if 0 <= channel < config.n_channels:
                        data[channel] += tone
        else:  # impulsive
            count = rng.poisson(source.rate_per_obs)
            spike_samples = rng.integers(0, config.n_samples, size=count)
            for sample in spike_samples:
                for data in beams:
                    data[:, sample] += source.strength * config.noise_sigma
        return None

    # -- observation ---------------------------------------------------------
    def observe(self, pointing: Pointing, seed: int = 0) -> List[Filterbank]:
        """Produce the 7 per-beam filterbanks for one pointing."""
        config = self.config
        rng = np.random.default_rng(seed)
        freqs = config.channel_freqs_mhz
        times = np.arange(config.n_samples) * config.tsamp_s
        beams = [
            rng.normal(0.0, config.noise_sigma, size=(config.n_channels, config.n_samples))
            for _ in range(N_BEAMS)
        ]
        for beam_index in range(N_BEAMS):
            for pulsar in pointing.pulsars_by_beam[beam_index]:
                self._inject_pulsar(beams[beam_index], pulsar, freqs, times, rng)
            for transient in pointing.transients_by_beam[beam_index]:
                self._inject_transient(beams[beam_index], transient, freqs, times)
        for source in pointing.rfi:
            self._inject_rfi(beams, source, times, rng)
        return [
            Filterbank(
                data=data.astype(np.float32),
                freq_low_mhz=config.freq_low_mhz,
                freq_high_mhz=config.freq_high_mhz,
                tsamp_s=config.tsamp_s,
                pointing_id=pointing.pointing_id,
                beam=beam_index,
            )
            for beam_index, data in enumerate(beams)
        ]
