"""Single-pulse (transient) search.

"Investigation of the time series for transient signals that may be
associated with astrophysical objects other than pulsars" — matched
filtering with a ladder of boxcar widths over each dedispersed time
series, thresholding, and clustering of overlapping detections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.errors import SearchError

DEFAULT_WIDTHS = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class SinglePulseEvent:
    """One transient detection."""

    time_s: float
    width_s: float
    snr: float
    dm: float


def boxcar_snr(timeseries: np.ndarray, width: int) -> np.ndarray:
    """Matched-filter S/N of a boxcar of ``width`` samples at each offset.

    Mean and standard deviation are estimated robustly (median / MAD) so a
    bright pulse does not suppress its own significance.
    """
    series = np.asarray(timeseries, dtype=np.float64)
    if series.ndim != 1:
        raise SearchError("time series must be 1-D")
    if width < 1 or width > len(series):
        raise SearchError(f"bad boxcar width {width} for {len(series)} samples")
    median = np.median(series)
    mad = np.median(np.abs(series - median))
    sigma = 1.4826 * mad
    if sigma <= 0:
        raise SearchError("degenerate time series (zero MAD)")
    centered = series - median
    if width == 1:
        sums = centered
    else:
        cumulative = np.concatenate([[0.0], np.cumsum(centered)])
        sums = cumulative[width:] - cumulative[:-width]
    return sums / (sigma * np.sqrt(width))


def search_single_pulses(
    timeseries: np.ndarray,
    tsamp_s: float,
    dm: float,
    snr_threshold: float = 6.0,
    widths: Sequence[int] = DEFAULT_WIDTHS,
) -> List[SinglePulseEvent]:
    """Boxcar ladder + threshold + greedy clustering of overlapping hits."""
    if tsamp_s <= 0:
        raise SearchError("sampling time must be positive")
    raw_hits: List[SinglePulseEvent] = []
    for width in widths:
        if width > len(timeseries):
            continue
        snrs = boxcar_snr(timeseries, width)
        for offset in np.flatnonzero(snrs >= snr_threshold):
            raw_hits.append(
                SinglePulseEvent(
                    time_s=float((offset + width / 2.0) * tsamp_s),
                    width_s=float(width * tsamp_s),
                    snr=float(snrs[offset]),
                    dm=dm,
                )
            )
    # Greedy clustering: strongest hit absorbs everything overlapping it.
    raw_hits.sort(key=lambda event: -event.snr)
    kept: List[SinglePulseEvent] = []
    for hit in raw_hits:
        absorbed = False
        for winner in kept:
            if abs(hit.time_s - winner.time_s) <= max(hit.width_s, winner.width_s):
                absorbed = True
                break
        if not absorbed:
            kept.append(hit)
    return kept
