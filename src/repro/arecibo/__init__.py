"""The Arecibo ALFA pulsar survey: synthetic sky and telescope, dedispersion,
Fourier search with harmonic summing, folding, acceleration search,
single-pulse search, RFI excision, sifting, meta-analysis, and the Figure-1
flow."""

from repro.arecibo.accelsearch import (
    AccelCandidate,
    accel_search,
    acceleration_trials,
    resample_for_acceleration,
)
from repro.arecibo.candidates import SiftedCandidate, match_to_truth, sift
from repro.arecibo.dedisperse import (
    DMGrid,
    dedisperse,
    dedisperse_all,
    dedispersed_size,
    delay_samples,
)
from repro.arecibo.filterbank import (
    KDM,
    Filterbank,
    dispersion_delay_s,
    read_filterbank,
    write_filterbank,
)
from repro.arecibo.folding import FoldedProfile, fold, refine_period
from repro.arecibo.fourier import (
    DEFAULT_HARMONICS,
    FourierCandidate,
    harmonic_sum,
    power_spectrum,
    search_dm_block,
    search_spectrum,
    summed_snr,
)
from repro.arecibo.nvo import contribute_to_nvo, export_votable, parse_votable
from repro.arecibo.metaanalysis import (
    CandidateDatabase,
    MetaAnalysisReport,
    candidate_schema,
)
from repro.arecibo.pipeline import (
    AreciboPipelineConfig,
    AreciboPipelineReport,
    DetectionScore,
    run_arecibo_pipeline,
)
from repro.arecibo.rfi import (
    zero_dm_clip,
    MultibeamResult,
    clean_filterbank,
    flag_bad_channels,
    multibeam_coincidence,
    zap_channels,
    zero_dm_subtract,
)
from repro.arecibo.singlepulse import (
    DEFAULT_WIDTHS,
    SinglePulseEvent,
    boxcar_snr,
    search_single_pulses,
)
from repro.arecibo.sky import (
    DEFAULT_RFI_ENVIRONMENT,
    N_BEAMS,
    Pointing,
    Pulsar,
    RFISource,
    SkyModel,
    Transient,
)
from repro.arecibo.telescope import C_SIM, ObservationConfig, ObservationSimulator

__all__ = [
    "AccelCandidate",
    "accel_search",
    "acceleration_trials",
    "resample_for_acceleration",
    "SiftedCandidate",
    "match_to_truth",
    "sift",
    "DMGrid",
    "dedisperse",
    "dedisperse_all",
    "dedispersed_size",
    "delay_samples",
    "KDM",
    "Filterbank",
    "dispersion_delay_s",
    "read_filterbank",
    "write_filterbank",
    "FoldedProfile",
    "fold",
    "refine_period",
    "DEFAULT_HARMONICS",
    "FourierCandidate",
    "harmonic_sum",
    "power_spectrum",
    "search_dm_block",
    "search_spectrum",
    "summed_snr",
    "CandidateDatabase",
    "contribute_to_nvo",
    "export_votable",
    "parse_votable",
    "MetaAnalysisReport",
    "candidate_schema",
    "AreciboPipelineConfig",
    "AreciboPipelineReport",
    "DetectionScore",
    "run_arecibo_pipeline",
    "MultibeamResult",
    "clean_filterbank",
    "flag_bad_channels",
    "multibeam_coincidence",
    "zap_channels",
    "zero_dm_subtract",
    "zero_dm_clip",
    "DEFAULT_WIDTHS",
    "SinglePulseEvent",
    "boxcar_snr",
    "search_single_pulses",
    "DEFAULT_RFI_ENVIRONMENT",
    "N_BEAMS",
    "Pointing",
    "Pulsar",
    "RFISource",
    "SkyModel",
    "Transient",
    "C_SIM",
    "ObservationConfig",
    "ObservationSimulator",
]
