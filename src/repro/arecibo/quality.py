"""Quality thresholds for the Arecibo pulsar-search channel.

What "healthy" means for a tape-fed batch search: every expected stage
of the nightly processing finished (completeness), few of those finishes
were degraded fallbacks, nothing dead-lettered, and tape recalls came
back within operational patience.  Retries are tolerated in small
numbers — the drives and the WAN both hiccup — but a climbing retry
count is the early signal of a failing batch.
"""

from __future__ import annotations

from repro.ops.dashboard import MetricSpec, QualitySpec

#: Threshold bands for ``arecibo*`` flows.
ARECIBO_QUALITY = QualitySpec(
    channel="arecibo",
    flow_pattern="arecibo*",
    metrics=(
        MetricSpec(
            metric="completeness",
            label="stage completeness",
            unit="%",
            higher_is_better=True,
            green=0.95,
            yellow=0.90,
        ),
        MetricSpec(
            metric="degraded_rate",
            label="degraded-finish rate",
            unit="%",
            higher_is_better=False,
            green=0.05,
            yellow=0.15,
        ),
        MetricSpec(
            metric="dead_letters",
            label="dead-lettered stages",
            higher_is_better=False,
            green=0.0,
            yellow=2.0,
        ),
        MetricSpec(
            metric="recall_lag_s",
            label="worst tape-recall lag",
            unit="s",
            higher_is_better=False,
            green=600.0,
            yellow=3600.0,
        ),
        MetricSpec(
            metric="retries",
            label="stage retries",
            higher_is_better=False,
            green=0.0,
            yellow=5.0,
        ),
    ),
)


def quality_spec() -> QualitySpec:
    """The channel spec :func:`repro.ops.default_quality_specs` mounts."""
    return ARECIBO_QUALITY


__all__ = ("ARECIBO_QUALITY", "quality_spec")
