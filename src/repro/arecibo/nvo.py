"""National Virtual Observatory linkage.

"Web access to the database at the CTC includes linkage to the National
Virtual Observatory [...] Connecting the CTC database system with the NVO
requires particular XML-based protocols that have been developed by the
NVO Consortium.  We are currently developing tools that use these
protocols."

This module implements a VOTable-shaped XML export of the candidate
database (typed FIELD declarations + TABLEDATA rows), a parser for the
same, and the bridge that contributes an exported catalog to a
:class:`repro.grid.federation.Federation` — the "federating their data
with other data resources from the Astronomy community" step.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.arecibo.metaanalysis import CandidateDatabase
from repro.core.errors import SearchError
from repro.grid.federation import DataResource, Federation, tabular_resource

# The exported columns, with VOTable datatypes.
_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("name", "char"),
    ("pointing_id", "int"),
    ("beam", "int"),
    ("period_s", "double"),
    ("freq_hz", "double"),
    ("dm", "double"),
    ("snr", "double"),
    ("classification", "char"),
    ("version", "char"),
)


def export_votable(
    database: CandidateDatabase,
    path: Union[str, Path],
    classification: Optional[str] = "astrophysical",
    resource_name: str = "PALFA candidates",
) -> int:
    """Write the candidate table as a VOTable-shaped XML file.

    Returns the number of rows exported.  By default only astrophysical
    (post-meta-analysis) candidates are published.
    """
    rows = database.strongest(limit=1_000_000, classification=classification)
    votable = ET.Element("VOTABLE", version="1.1")
    resource = ET.SubElement(votable, "RESOURCE", name=resource_name)
    table = ET.SubElement(resource, "TABLE", name="candidates")
    ET.SubElement(table, "DESCRIPTION").text = (
        "Pulsar candidates from the PALFA survey reproduction; "
        "classification per the cross-pointing meta-analysis."
    )
    for field_name, datatype in _FIELDS:
        ET.SubElement(table, "FIELD", name=field_name, datatype=datatype)
    data = ET.SubElement(table, "DATA")
    tabledata = ET.SubElement(data, "TABLEDATA")
    count = 0
    for row in rows:
        tr = ET.SubElement(tabledata, "TR")
        values = {
            "name": f"PALFA_P{row['pointing_id']:04d}B{row['beam']}"
                    f"F{row['freq_hz']:.3f}",
            "pointing_id": row["pointing_id"],
            "beam": row["beam"],
            "period_s": row["period_s"],
            "freq_hz": row["freq_hz"],
            "dm": row["dm"],
            "snr": row["snr"],
            "classification": row["classification"],
            "version": row["version"],
        }
        for field_name, _ in _FIELDS:
            ET.SubElement(tr, "TD").text = str(values[field_name])
        count += 1
    ET.ElementTree(votable).write(path, encoding="unicode",
                                  xml_declaration=True)
    return count


def parse_votable(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read a VOTable-shaped file back into row dicts (typed per FIELD)."""
    try:
        tree = ET.parse(path)
    except ET.ParseError as exc:
        raise SearchError(f"{path}: not a well-formed VOTable: {exc}") from exc
    root = tree.getroot()
    if root.tag != "VOTABLE":
        raise SearchError(f"{path}: root element is {root.tag!r}, not VOTABLE")
    table = root.find("./RESOURCE/TABLE")
    if table is None:
        raise SearchError(f"{path}: no RESOURCE/TABLE element")
    fields = [
        (field.get("name"), field.get("datatype"))
        for field in table.findall("FIELD")
    ]
    if not fields:
        raise SearchError(f"{path}: table declares no FIELDs")

    def convert(value: str, datatype: str) -> object:
        if datatype == "int":
            return int(value)
        if datatype in ("double", "float"):
            return float(value)
        return value

    rows: List[Dict[str, object]] = []
    for tr in table.findall("./DATA/TABLEDATA/TR"):
        cells = tr.findall("TD")
        if len(cells) != len(fields):
            raise SearchError(
                f"{path}: row has {len(cells)} cells for {len(fields)} fields"
            )
        rows.append(
            {
                name: convert(cell.text or "", datatype)
                for (name, datatype), cell in zip(fields, cells)
            }
        )
    return rows


def contribute_to_nvo(
    federation: Federation,
    votable_path: Union[str, Path],
    resource_name: str = "arecibo-palfa",
) -> DataResource:
    """Load an exported VOTable and contribute it to a federation.

    This is the survey's NVO hand-off: once contributed, the catalog
    participates in cross-matches with any other federated resource.
    """
    rows = parse_votable(votable_path)
    if not rows:
        raise SearchError(f"{votable_path}: VOTable has no rows to contribute")
    resource = tabular_resource(resource_name, rows,
                                description="PALFA candidate catalog (VOTable)")
    federation.contribute(resource)
    return resource
