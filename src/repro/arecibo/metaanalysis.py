"""The candidate database and cross-pointing meta-analysis.

"The large number of data products [...] are loaded into a [SQL] database
system at the CTC.  The database is accessed through a Web-based server
and will provide the tools for meta-analyses.  It currently supports
interactive groupings of candidate signals, tests for correlation or
uniqueness of the candidates [...]"

The decisive test implemented here is uniqueness across the sky: "to
further refine pulsar candidate signals [...] a meta-analysis is needed to
cull those candidates that appear in multiple directions on the sky."  A
pulsar lives at one sky position; a radar lives at every one of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.arecibo.candidates import SiftedCandidate
from repro.db.connection import Database, connect
from repro.db.query import Select
from repro.db.schema import Schema, apply_schema, column


def candidate_schema() -> Schema:
    schema = Schema("arecibo_candidates", version=1)
    schema.table(
        "candidates",
        [
            column("id", "INTEGER", "PRIMARY KEY"),
            column("pointing_id", "INTEGER", "NOT NULL"),
            column("beam", "INTEGER", "NOT NULL"),
            column("period_s", "REAL", "NOT NULL"),
            column("freq_hz", "REAL", "NOT NULL"),
            column("dm", "REAL", "NOT NULL"),
            column("snr", "REAL", "NOT NULL"),
            column("n_harmonics", "INTEGER", "NOT NULL"),
            column("n_dm_hits", "INTEGER", "NOT NULL"),
            column("snr_dm0", "REAL", "NOT NULL DEFAULT 0"),
            column("accel_ms2", "REAL", "NOT NULL DEFAULT 0"),
            column("classification", "TEXT", "NOT NULL DEFAULT 'unclassified'"),
            column("version", "TEXT", "NOT NULL DEFAULT 'v1'"),
        ],
        indexes=[("pointing_id",), ("freq_hz",), ("classification",)],
    )
    schema.table(
        "transients",
        [
            column("id", "INTEGER", "PRIMARY KEY"),
            column("pointing_id", "INTEGER", "NOT NULL"),
            column("beam", "INTEGER", "NOT NULL"),
            column("time_s", "REAL", "NOT NULL"),
            column("width_s", "REAL", "NOT NULL"),
            column("dm", "REAL", "NOT NULL"),
            column("snr", "REAL", "NOT NULL"),
            column("version", "TEXT", "NOT NULL DEFAULT 'v1'"),
        ],
        indexes=[("pointing_id",), ("time_s",)],
    )
    return schema


@dataclass
class MetaAnalysisReport:
    """Outcome of one cull pass over the whole database."""

    total: int
    astrophysical: int
    terrestrial: int
    widespread_frequencies: List[float] = field(default_factory=list)


class CandidateDatabase:
    """SQL-backed store of sifted candidates with meta-analysis queries.

    ``version`` tags rows with the processing code version, per the paper:
    "we will tag all data products with a version number indicating
    processing code and processing site."
    """

    def __init__(self, path: Optional[Union[str, Path]] = None, version: str = "v1"):
        self.db: Database = connect(path)
        self.version = version
        apply_schema(self.db, candidate_schema())

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "CandidateDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- ingest ---------------------------------------------------------------
    def add_candidates(self, candidates: Iterable[SiftedCandidate]) -> int:
        count = 0
        with self.db.transaction():
            for candidate in candidates:
                self.db.insert(
                    "candidates",
                    pointing_id=candidate.pointing_id,
                    beam=candidate.beam,
                    period_s=candidate.period_s,
                    freq_hz=candidate.freq_hz,
                    dm=candidate.dm,
                    snr=candidate.snr,
                    n_harmonics=candidate.n_harmonics,
                    n_dm_hits=candidate.n_dm_hits,
                    snr_dm0=candidate.snr_dm0,
                    accel_ms2=candidate.accel_ms2,
                    version=self.version,
                )
                count += 1
        return count

    # -- queries ---------------------------------------------------------------
    def count(self, classification: Optional[str] = None) -> int:
        if classification is None:
            return self.db.count("candidates")
        return self.db.count("candidates", "classification = ?", (classification,))

    def pointings(self) -> List[int]:
        rows = self.db.query(
            "SELECT DISTINCT pointing_id FROM candidates ORDER BY pointing_id"
        )
        return [row["pointing_id"] for row in rows]

    def strongest(self, limit: int = 10, classification: Optional[str] = None):
        query = Select("candidates").order_by("snr DESC").limit(limit)
        if classification is not None:
            query = query.where("classification = ?", classification)
        return query.run(self.db)

    def candidates_at(self, pointing_id: int):
        return (
            Select("candidates")
            .where("pointing_id = ?", pointing_id)
            .order_by("snr DESC")
            .run(self.db)
        )

    def add_transients(self, events, pointing_id: int, beam: int) -> int:
        """Store single-pulse events ("transient signals that may be
        associated with astrophysical objects other than pulsars")."""
        count = 0
        with self.db.transaction():
            for event in events:
                self.db.insert(
                    "transients",
                    pointing_id=pointing_id,
                    beam=beam,
                    time_s=event.time_s,
                    width_s=event.width_s,
                    dm=event.dm,
                    snr=event.snr,
                    version=self.version,
                )
                count += 1
        return count

    def transients(self, pointing_id: Optional[int] = None) -> List[dict]:
        query = Select("transients").order_by("snr DESC")
        if pointing_id is not None:
            query = query.where("pointing_id = ?", pointing_id)
        return [dict(row) for row in query.run(self.db)]

    # -- meta-analysis ---------------------------------------------------------
    def cull_widespread(
        self,
        max_pointings: int = 2,
        freq_tolerance: float = 0.01,
        min_dm: float = 1.0,
        dm0_ratio: float = 0.95,
        harmonic_window_hz: float = 0.35,
    ) -> MetaAnalysisReport:
        """Classify every candidate: terrestrial or astrophysical.

        Three tests, all from the survey's playbook:

        * **Uniqueness** — group candidates by frequency (fractional
          tolerance); a group spanning more than ``max_pointings`` distinct
          sky positions is terrestrial.
        * **Dispersion** — candidates peaking below ``min_dm`` are
          undispersed and therefore local.
        * **DM-0 comparison** — candidates whose S/N at DM 0 is at least
          ``dm0_ratio`` of their peak S/N are effectively undispersed,
          however noisy their recorded best-DM is.
        """
        rows = self.db.query(
            "SELECT id, pointing_id, freq_hz, dm, snr, snr_dm0 FROM candidates "
            "ORDER BY freq_hz"
        )
        # Group by frequency with a single sorted sweep.
        groups: List[List] = []
        for row in rows:
            if groups and (
                row["freq_hz"] - groups[-1][0]["freq_hz"]
                <= freq_tolerance * row["freq_hz"]
            ):
                groups[-1].append(row)
            else:
                groups.append([row])

        terrestrial_ids: set = set()
        widespread_freqs: List[float] = []
        for group in groups:
            # A group is widespread only if *comparably strong* detections
            # span many pointings; a bright unique pulsar is not culled
            # just because weak noise happens to share its frequency bin
            # elsewhere on the sky.
            group_max = max(row["snr"] for row in group)
            strong_pointings = {
                row["pointing_id"] for row in group if row["snr"] >= 0.5 * group_max
            }
            if len(strong_pointings) > max_pointings:
                terrestrial_ids.update(row["id"] for row in group)
                widespread_freqs.append(float(group[0]["freq_hz"]))
        # Harmonic zapping: once a frequency is identified as terrestrial,
        # its low-order integer harmonics and subharmonics are terrestrial
        # too (a radar does not emit only its fundamental).  Harmonic order
        # is bounded and the window is absolute in Hz — the spectral-bin
        # quantization of the search — so a pulsar harmonic that is merely
        # *fractionally* close to an RFI line is not swept up.
        for row in rows:
            if row["id"] in terrestrial_ids:
                continue
            freq = row["freq_hz"]
            zapped = False
            for rfi_freq in widespread_freqs:
                for order in range(1, 9):
                    if (
                        abs(freq - order * rfi_freq) <= harmonic_window_hz
                        or abs(rfi_freq - order * freq) <= harmonic_window_hz
                    ):
                        zapped = True
                        break
                if zapped:
                    break
            if zapped:
                terrestrial_ids.add(row["id"])
        for row in rows:
            if row["id"] in terrestrial_ids:
                continue
            undispersed = row["dm"] < min_dm
            dm0_strong = row["snr"] > 0 and row["snr_dm0"] >= dm0_ratio * row["snr"]
            if undispersed or dm0_strong:
                terrestrial_ids.add(row["id"])

        with self.db.transaction():
            self.db.execute("UPDATE candidates SET classification = 'astrophysical'")
            for candidate_id in terrestrial_ids:
                self.db.execute(
                    "UPDATE candidates SET classification = 'terrestrial' WHERE id = ?",
                    (candidate_id,),
                )
        return MetaAnalysisReport(
            total=len(rows),
            astrophysical=len(rows) - len(terrestrial_ids),
            terrestrial=len(terrestrial_ids),
            widespread_frequencies=sorted(widespread_freqs),
        )

    def confirmed_pulsars(
        self, min_snr: float = 7.0, min_dm_hits: int = 10
    ) -> List[dict]:
        """Astrophysical candidates passing the confirmation cuts.

        ``min_dm_hits`` demands DM-coherence: a genuinely dispersed signal
        is detected across a broad range of neighbouring DM trials, while
        noise fluctuations and residual RFI fire in only a handful — one
        of the "tests of different kinds" the pipeline stacks up.
        """
        rows = (
            Select("candidates")
            .where("classification = ?", "astrophysical")
            .where("snr >= ?", min_snr)
            .where("n_dm_hits >= ?", min_dm_hits)
            .order_by("snr DESC")
            .run(self.db)
        )
        return [dict(row) for row in rows]
