"""Candidate folding.

"Reprocessing of dedispersed time series to signal average at the spin
period of a candidate signal" — folding stacks the time series modulo the
candidate period; a real pulsar's pulses align into a sharp profile whose
matched-filter S/N confirms (or kills) the Fourier detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.errors import KernelError, SearchError
from repro.core.kernels import fold_block


@dataclass(frozen=True)
class FoldedProfile:
    """The phase-averaged pulse profile of one fold."""

    period_s: float
    profile: np.ndarray   # (n_bins,) mean intensity per phase bin
    hits: np.ndarray      # (n_bins,) samples contributing per bin
    sample_std: float     # robust (MAD-based) std of the unfolded series

    @property
    def n_bins(self) -> int:
        return len(self.profile)

    def snr(self) -> float:
        """Matched-filter S/N of the profile peak.

        The baseline comes from the lower half of the sorted bins (so a
        bright pulse does not poison its own estimate); the per-bin noise
        is analytic — ``sample_std / sqrt(samples per bin)`` — rather than
        estimated from the handful of off-pulse bins, which keeps the
        statistic calibrated (folded noise stays near the Gaussian
        expectation instead of fluctuating with the baseline estimator).
        """
        profile = self.profile
        order = np.argsort(profile)
        baseline_bins = order[: max(2, self.n_bins // 2)]
        baseline = float(profile[baseline_bins].mean())
        occupied = self.hits[self.hits > 0]
        if self.sample_std <= 0 or len(occupied) == 0:
            raise SearchError("degenerate folded profile (zero off-pulse noise)")
        bin_noise = self.sample_std / np.sqrt(float(np.median(occupied)))
        best_bin = int(order[-1])
        return float((profile[best_bin] - baseline) / bin_noise)


def fold(
    timeseries: np.ndarray,
    tsamp_s: float,
    period_s: float,
    n_bins: int = 32,
) -> FoldedProfile:
    """Fold a time series at a trial period."""
    series = np.asarray(timeseries, dtype=np.float64)
    if series.ndim != 1 or len(series) < n_bins:
        raise SearchError("time series too short to fold at this resolution")
    if period_s <= 0 or tsamp_s <= 0:
        raise SearchError("period and sampling time must be positive")
    if period_s < n_bins * tsamp_s / 4:
        n_bins = max(4, int(period_s / tsamp_s))
    times = np.arange(len(series)) * tsamp_s
    phase_bins = ((times % period_s) / period_s * n_bins).astype(np.int64) % n_bins
    profile = np.zeros(n_bins, dtype=np.float64)
    hits = np.zeros(n_bins, dtype=np.int64)
    np.add.at(profile, phase_bins, series)
    np.add.at(hits, phase_bins, 1)
    occupied = hits > 0
    profile[occupied] /= hits[occupied]
    # Robust scale estimate: a bright pulse (or residual RFI) must not
    # inflate its own noise floor.
    mad = float(np.median(np.abs(series - np.median(series))))
    robust_std = 1.4826 * mad if mad > 0 else float(series.std())
    return FoldedProfile(
        period_s=period_s,
        profile=profile,
        hits=hits,
        sample_std=robust_std,
    )


def fold_many(
    timeseries: np.ndarray,
    tsamp_s: float,
    periods: Sequence[float],
    n_bins: int = 32,
) -> List[FoldedProfile]:
    """Fold one series at many trial periods in one batched pass.

    Equivalent to ``[fold(timeseries, tsamp_s, p, n_bins) for p in
    periods]`` bitwise: trials are grouped by their *effective* bin count
    (``fold`` shrinks ``n_bins`` for short periods) and each group runs
    through the :func:`repro.core.kernels.fold_block` scatter-add, whose
    accumulation order matches ``np.add.at``.  The robust scale estimate
    depends only on the series, so it is computed once.
    """
    series = np.asarray(timeseries, dtype=np.float64)
    periods = [float(period_s) for period_s in periods]
    if series.ndim != 1 or len(series) < n_bins:
        raise SearchError("time series too short to fold at this resolution")
    if tsamp_s <= 0:
        raise SearchError("period and sampling time must be positive")
    effective_bins: List[int] = []
    for period_s in periods:
        if period_s <= 0:
            raise SearchError("period and sampling time must be positive")
        bins = n_bins
        if period_s < n_bins * tsamp_s / 4:
            bins = max(4, int(period_s / tsamp_s))
        effective_bins.append(bins)
    mad = float(np.median(np.abs(series - np.median(series))))
    robust_std = 1.4826 * mad if mad > 0 else float(series.std())
    groups: dict = {}
    for index, bins in enumerate(effective_bins):
        groups.setdefault(bins, []).append(index)
    profiles: List[FoldedProfile] = [None] * len(periods)  # type: ignore[list-item]
    for bins, indices in groups.items():
        trial_periods = np.asarray([periods[i] for i in indices], dtype=np.float64)
        try:
            block_profiles, block_hits = fold_block(
                series, tsamp_s, trial_periods, bins
            )
        except KernelError as exc:
            raise SearchError(str(exc)) from exc
        for row, index in enumerate(indices):
            profiles[index] = FoldedProfile(
                period_s=float(periods[index]),
                profile=block_profiles[row],
                hits=block_hits[row],
                sample_std=robust_std,
            )
    return profiles


def refine_period(
    timeseries: np.ndarray,
    tsamp_s: float,
    period_s: float,
    search_fraction: float = 0.002,
    n_trials: int = 21,
    n_bins: int = 32,
) -> Tuple[float, float]:
    """Local period optimization around a candidate.

    Folds at ``n_trials`` periods within ±``search_fraction`` of the seed
    and returns (best period, best S/N) — the confirmation step performed
    "during the same telescope session" for promising candidates.  The
    trial folds run as one :func:`fold_many` batch; the selection loop
    (strict ``>`` — earlier trials win ties) matches
    :func:`refine_period_reference` exactly.
    """
    if n_trials < 1:
        raise SearchError("need at least one refinement trial")
    trials = np.linspace(
        period_s * (1 - search_fraction), period_s * (1 + search_fraction), n_trials
    )
    folded = fold_many(
        timeseries, tsamp_s, [float(trial) for trial in trials], n_bins=n_bins
    )
    best_period, best_snr = period_s, -np.inf
    for trial, profile in zip(trials, folded):
        snr = profile.snr()
        if snr > best_snr:
            best_period, best_snr = float(trial), float(snr)
    return best_period, best_snr


def refine_period_reference(
    timeseries: np.ndarray,
    tsamp_s: float,
    period_s: float,
    search_fraction: float = 0.002,
    n_trials: int = 21,
    n_bins: int = 32,
) -> Tuple[float, float]:
    """The naive per-trial fold loop :func:`refine_period` replaces.

    Retained as the equivalence oracle and the benchmark baseline.
    """
    if n_trials < 1:
        raise SearchError("need at least one refinement trial")
    best_period, best_snr = period_s, -np.inf
    for trial in np.linspace(
        period_s * (1 - search_fraction), period_s * (1 + search_fraction), n_trials
    ):
        snr = fold(timeseries, tsamp_s, float(trial), n_bins=n_bins).snr()
        if snr > best_snr:
            best_period, best_snr = float(trial), float(snr)
    return best_period, best_snr
