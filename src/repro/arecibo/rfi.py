"""Radio-frequency-interference identification and excision.

"Interference from terrestrial sources needs to be at least identified and
most likely removed from the data.  This requires development of new
algorithms that simultaneously investigate dynamic spectra for each of the
7 ALFA beams and apply tests of different kinds."

Three tests, in the order the pipeline applies them:

1. **Channel zapping** — persistent narrowband carriers light up a channel's
   variance; replace flagged channels with noise-like data.
2. **Zero-DM subtraction** — broadband undispersed signals (impulsive RFI)
   are common to all channels at the same sample; subtracting the zero-DM
   mean removes them while dispersed astrophysical signals survive.
3. **Multibeam coincidence** — a genuine point source lives in one beam;
   candidates detected at the same period/DM in many of the 7 beams at
   once are sidelobe pickup and get culled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.arecibo.filterbank import Filterbank
from repro.arecibo.fourier import FourierCandidate
from repro.arecibo.sky import N_BEAMS
from repro.core.errors import SearchError


def flag_bad_channels(filterbank: Filterbank, sigma_threshold: float = 4.0) -> List[int]:
    """Channels whose variance is an outlier against the channel ensemble."""
    variances = filterbank.data.var(axis=1)
    median = np.median(variances)
    mad = np.median(np.abs(variances - median))
    scale = 1.4826 * mad
    if scale <= 0:
        return []
    scores = (variances - median) / scale
    return [int(channel) for channel in np.flatnonzero(scores > sigma_threshold)]


#: Default seed for the replacement-noise generator when the caller does
#: not thread an RNG through :func:`zap_channels`.  An explicit constant —
#: not an unseeded generator — so a bare call is still reproducible; the
#: pipeline always passes its own per-pointing RNG instead.
DEFAULT_ZAP_SEED = 0


def zap_channels(
    filterbank: Filterbank,
    channels: Sequence[int],
    rng: Optional[np.random.Generator] = None,
) -> Filterbank:
    """Replace flagged channels with unit-variance noise (returns a copy)."""
    rng = rng if rng is not None else np.random.default_rng(DEFAULT_ZAP_SEED)
    data = filterbank.data.copy()
    for channel in channels:
        if not 0 <= channel < filterbank.n_channels:
            raise SearchError(f"channel {channel} out of range")
        data[channel] = rng.normal(0.0, 1.0, size=filterbank.n_samples).astype(np.float32)
    return Filterbank(
        data=data,
        freq_low_mhz=filterbank.freq_low_mhz,
        freq_high_mhz=filterbank.freq_high_mhz,
        tsamp_s=filterbank.tsamp_s,
        pointing_id=filterbank.pointing_id,
        beam=filterbank.beam,
    )


def zero_dm_subtract(filterbank: Filterbank) -> Filterbank:
    """Subtract each sample's frequency-mean (returns a copy).

    Removes undispersed broadband power; a dispersed pulse contributes to
    each sample's mean only weakly (its power is spread across arrival
    times), so it survives largely intact.
    """
    data = filterbank.data - filterbank.data.mean(axis=0, keepdims=True)
    return Filterbank(
        data=data.astype(np.float32),
        freq_low_mhz=filterbank.freq_low_mhz,
        freq_high_mhz=filterbank.freq_high_mhz,
        tsamp_s=filterbank.tsamp_s,
        pointing_id=filterbank.pointing_id,
        beam=filterbank.beam,
    )


def zero_dm_clip(filterbank: Filterbank, threshold_sigma: float = 5.0) -> Filterbank:
    """Clip common-mode outlier samples instead of blanket subtraction.

    Full zero-DM subtraction also removes part of any *weakly* dispersed
    pulsar (a known cost of that filter), so production pipelines clip:
    only samples whose cross-channel mean is a strong outlier have the
    common mode removed.  Impulsive broadband RFI exceeds the threshold by
    construction; a pulsar's per-sample common mode stays far below it.
    """
    common = filterbank.data.mean(axis=0)
    sigma = max(float(np.std(common)), 1e-12)
    median = float(np.median(common))
    outliers = np.abs(common - median) > threshold_sigma * sigma
    data = filterbank.data.copy()
    data[:, outliers] -= (common[outliers] - median)[np.newaxis, :]
    return Filterbank(
        data=data.astype(np.float32),
        freq_low_mhz=filterbank.freq_low_mhz,
        freq_high_mhz=filterbank.freq_high_mhz,
        tsamp_s=filterbank.tsamp_s,
        pointing_id=filterbank.pointing_id,
        beam=filterbank.beam,
    )


def clean_filterbank(
    filterbank: Filterbank,
    sigma_threshold: float = 4.0,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Filterbank, List[int]]:
    """The full single-beam excision: zap bad channels, clip zero-DM
    outliers (see :func:`zero_dm_clip` for why clipping, not subtraction)."""
    flagged = flag_bad_channels(filterbank, sigma_threshold)
    cleaned = zap_channels(filterbank, flagged, rng=rng)
    return zero_dm_clip(cleaned), flagged


@dataclass
class MultibeamResult:
    """Partition of per-beam candidates into astrophysical vs RFI."""

    accepted: List[FourierCandidate] = field(default_factory=list)
    rejected: List[FourierCandidate] = field(default_factory=list)

    @property
    def rejection_count(self) -> int:
        return len(self.rejected)


def multibeam_coincidence(
    candidates_by_beam: Sequence[Sequence[FourierCandidate]],
    max_beams: int = 3,
    freq_tolerance: float = 0.01,
) -> MultibeamResult:
    """Cull candidates seen in more than ``max_beams`` of the 7 beams.

    Frequencies within ``freq_tolerance`` (fractional) are the same signal.
    A sky point source can appear in a couple of adjacent beams at most;
    sidelobe RFI appears in most or all of them.
    """
    if len(candidates_by_beam) != N_BEAMS:
        raise SearchError(f"expected {N_BEAMS} beams of candidates")
    if not 1 <= max_beams <= N_BEAMS:
        raise SearchError("max_beams must be within 1..7")

    flat = [
        (beam_index, candidate)
        for beam_index, beam in enumerate(candidates_by_beam)
        for candidate in beam
    ]
    result = MultibeamResult()
    for beam_index, candidate in flat:
        # Count only *comparably strong* detections: sidelobe RFI has
        # similar strength in every beam, while a strong pulsar must not
        # be culled because weak noise shares its frequency elsewhere.
        beams_seen = {
            other_beam
            for other_beam, other in flat
            if abs(other.freq_hz - candidate.freq_hz)
            <= freq_tolerance * candidate.freq_hz
            and other.snr >= 0.5 * candidate.snr
        }
        if len(beams_seen) > max_beams:
            result.rejected.append(candidate)
        else:
            result.accepted.append(candidate)
    return result
