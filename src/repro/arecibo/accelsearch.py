"""Acceleration search for binary pulsars.

"Another level of complexity comes from addressing pulsars that are in
binary systems, for which an acceleration search algorithm also needs to
be applied."  Orbital motion drifts the apparent spin frequency during the
observation, smearing the pulsar's power across Fourier bins; the standard
remedy, implemented here, is time-domain resampling: stretch the time axis
for each trial acceleration so that a matching drift is straightened out,
then run the ordinary Fourier search on the resampled series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.arecibo.fourier import DEFAULT_HARMONICS, search_spectrum
from repro.arecibo.telescope import C_SIM
from repro.core.errors import SearchError


def resample_for_acceleration(
    timeseries: np.ndarray, tsamp_s: float, accel_ms2: float, c_sim: float = C_SIM
) -> np.ndarray:
    """Resample so a source with ``accel_ms2`` becomes strictly periodic.

    The telescope model advances pulse phase as
    ``f0 * t * (1 + d * t / (2T))`` with fractional drift ``d = a*T/c``;
    sampling the series at ``t' = t * (1 + d * t / (2T))`` removes the
    quadratic term for a matching trial.
    """
    series = np.asarray(timeseries, dtype=np.float64)
    if series.ndim != 1 or len(series) < 16:
        raise SearchError("need a 1-D time series of at least 16 samples")
    n = len(series)
    total_time = n * tsamp_s
    drift = accel_ms2 * total_time / c_sim
    t = np.arange(n) * tsamp_s
    warped = t * (1.0 + drift * t / (2.0 * total_time))
    warped_index = warped / tsamp_s
    return np.interp(warped_index, np.arange(n), series)


@dataclass(frozen=True)
class AccelCandidate:
    """A periodicity detection tagged with its best trial acceleration."""

    freq_hz: float
    period_s: float
    snr: float
    accel_ms2: float
    dm: float
    n_harmonics: int


def acceleration_trials(max_accel_ms2: float, n_trials: int) -> List[float]:
    """Symmetric trial grid including zero."""
    if n_trials < 1 or max_accel_ms2 < 0:
        raise SearchError("bad acceleration-trial parameters")
    if n_trials == 1 or max_accel_ms2 == 0:
        return [0.0]
    half = np.linspace(0, max_accel_ms2, (n_trials + 1) // 2)
    trials = sorted(set((-half).tolist() + half.tolist()))
    return [float(a) for a in trials]


def accel_search(
    timeseries: np.ndarray,
    tsamp_s: float,
    dm: float,
    trials: Sequence[float],
    snr_threshold: float = 6.0,
    harmonics: Sequence[int] = DEFAULT_HARMONICS,
    min_freq_hz: float = 1.0,
    c_sim: float = C_SIM,
) -> List[AccelCandidate]:
    """Search each trial acceleration; keep each frequency's best trial."""
    if not trials:
        raise SearchError("need at least one acceleration trial")
    best: dict[int, AccelCandidate] = {}
    total_time = len(timeseries) * tsamp_s
    for accel in trials:
        resampled = resample_for_acceleration(timeseries, tsamp_s, accel, c_sim)
        for candidate in search_spectrum(
            resampled,
            tsamp_s,
            dm,
            snr_threshold=snr_threshold,
            harmonics=harmonics,
            min_freq_hz=min_freq_hz,
        ):
            key = int(round(candidate.freq_hz * total_time))
            current = best.get(key)
            if current is None or candidate.snr > current.snr:
                best[key] = AccelCandidate(
                    freq_hz=candidate.freq_hz,
                    period_s=candidate.period_s,
                    snr=candidate.snr,
                    accel_ms2=float(accel),
                    dm=dm,
                    n_harmonics=candidate.n_harmonics,
                )
    results = sorted(best.values(), key=lambda c: -c.snr)
    return results
