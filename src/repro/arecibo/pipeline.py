"""Figure 1, executable: the Arecibo data flow end to end.

Acquisition at the telescope (with local quality monitoring), physical
disk shipment to the CTC, archiving to robotic tape, per-beam RFI excision
/ dedispersion / Fourier search at the processing sites, consolidation of
candidates into the SQL database, and the cross-pointing meta-analysis —
each step a stage of one core dataflow, so the volumes, reduction factors,
and processor requirements the paper quotes come out of the run report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arecibo.accelsearch import acceleration_trials, resample_for_acceleration
from repro.arecibo.candidates import SiftedCandidate, match_to_truth, sift
from repro.arecibo.dedisperse import DMGrid, dedisperse_all, dedispersed_size
from repro.arecibo.dedisperse import dedisperse
from repro.arecibo.filterbank import Filterbank, write_filterbank
from repro.arecibo.folding import refine_period
from repro.arecibo.fourier import search_dm_block, search_spectrum
from repro.arecibo.metaanalysis import CandidateDatabase, MetaAnalysisReport
from repro.arecibo.rfi import clean_filterbank, multibeam_coincidence
from repro.arecibo.singlepulse import SinglePulseEvent, search_single_pulses
from repro.arecibo.sky import N_BEAMS, Pointing, SkyModel
from repro.arecibo.telescope import ObservationConfig, ObservationSimulator
from repro.core.dataflow import DataFlow, StageFn, structural_stub
from repro.core.dataset import Dataset
from repro.core.deltas import WindowLedger
from repro.core.engine import Engine, FlowReport
from repro.core.errors import IncrementalError
from repro.core.faults import FaultInjector, FaultPlan
from repro.core.recovery import RetryPolicy
from repro.core.shards import SharedArray
from repro.core.stagecache import StageCache
from repro.core.telemetry import Telemetry, write_event_log
from repro.core.units import DataSize, Duration
from repro.storage.media import LTO3_TAPE
from repro.storage.tape import RoboticTapeLibrary
from repro.transport.sneakernet import ARECIBO_TO_CTC, ShipmentResult, ShippingLane


@dataclass
class AreciboPipelineConfig:
    """Laptop-scale survey parameters."""

    n_pointings: int = 4
    observation: ObservationConfig = field(default_factory=ObservationConfig)
    sky: SkyModel = field(default_factory=lambda: SkyModel(seed=42))
    dm_max: float = 100.0
    snr_threshold: float = 7.0
    multibeam_max: int = 3
    meta_max_pointings: int = 2
    fold_threshold: float = 6.5
    # Acceleration search: number of trial accelerations (1 disables the
    # binary search — "another level of complexity" the paper flags) and
    # the stride through the DM grid it samples.
    accel_trials: int = 1
    accel_max_ms2: float = 25.0
    accel_dm_stride: int = 4
    # Single-pulse (transient) search over the dedispersed block.
    single_pulse_threshold: float = 7.0
    single_pulse_dm_stride: int = 4
    transient_max_beams: int = 3
    # Parallelism: engine stage concurrency and per-pointing fan-out inside
    # the dominant `process` stage.  Results are identical for any value;
    # every pointing draws from its own deterministic RNG and the merge
    # happens in pointing order.  ``executor`` picks where the fan-out
    # runs: ``"thread"`` (default) or ``"process"`` — worker processes fed
    # filterbank blocks through shared memory, the paper's farm model.
    workers: int = 1
    executor: str = "thread"
    seed: int = 7


@dataclass
class DetectionScore:
    """Recovered vs injected sources, plus surviving false candidates."""

    injected: int
    recovered: int
    missed: List[str] = field(default_factory=list)
    false_candidates: int = 0
    transients_injected: int = 0
    transients_recovered: int = 0

    @property
    def recall(self) -> float:
        return self.recovered / self.injected if self.injected else 1.0

    @property
    def transient_recall(self) -> float:
        if self.transients_injected == 0:
            return 1.0
        return self.transients_recovered / self.transients_injected


@dataclass
class AreciboPipelineReport:
    """Everything the Figure-1 run produced."""

    config: AreciboPipelineConfig
    flow_report: FlowReport
    pointings: List[Pointing]
    shipment: ShipmentResult
    tape_cartridges: int
    raw_size: DataSize
    dedispersed_size: DataSize
    candidate_count_presift: int
    candidate_count_sifted: int
    transient_count: int
    multibeam_rejected: int
    meta_report: MetaAnalysisReport
    score: DetectionScore
    confirmed: List[dict]
    #: Beams dropped by injected ``"beam"``-scope faults, as
    #: ``(pointing_id, beam)`` pairs — the survey's recorded culls.
    beam_culls: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def products_fraction(self) -> float:
        """Data products as a fraction of raw (paper: one to a few percent)."""
        products = self.flow_report.stage("consolidate").output_size
        return products.bytes / self.raw_size.bytes if self.raw_size.bytes else 0.0

    def processors_needed(self, acquisition_window: Duration) -> float:
        return self.flow_report.processors_needed(acquisition_window)


def _cache_fingerprint(config: AreciboPipelineConfig) -> Dict[str, object]:
    """Stage ``cache_params`` for the Figure-1 flow.

    The whole config is folded in — any parameter change invalidates every
    stage — except ``workers`` and ``executor``: stage outputs are
    byte-identical across worker counts and executors (the determinism
    contract the three-way suite pins), so a cache primed sequentially
    must service threaded and process-sharded reruns alike.
    """
    return {"pipeline": repr(replace(config, workers=1, executor="thread"))}


def _shard_fingerprint(config: AreciboPipelineConfig) -> Dict[str, object]:
    """Shard-level ``cache_params``: the config minus the survey length.

    Per-pointing shard results are independent of how many pointings the
    run covers (pointing generation is prefix-stable: pointing *i* is the
    same object in a 2-pointing and a 200-pointing survey), so excluding
    ``n_pointings`` lets an incremental window replay every shard an
    earlier, shorter window already computed and pay only for the new
    arrivals.
    """
    return {
        "pipeline": repr(
            replace(config, workers=1, executor="thread", n_pointings=0)
        )
    }


def figure1_flow(
    transforms: Optional[Mapping[str, StageFn]] = None,
    cache_params: Optional[Mapping[str, object]] = None,
) -> DataFlow:
    """Build the Figure-1 flow graph: the single construction site.

    :func:`run_arecibo_pipeline` passes its transform closures; static
    tooling (:mod:`repro.analysis.flowcheck`, figure rendering, tests)
    calls it bare and gets the identical topology with
    :func:`~repro.core.dataflow.structural_stub` transforms that raise
    if executed.  One builder means the checked graph can never drift
    from the executed one.
    """
    transforms = dict(transforms or {})

    def fn(name: str) -> StageFn:
        return transforms.get(name) or structural_stub(name)

    flow = DataFlow("arecibo-figure1")
    flow.stage("acquire", fn("acquire"), site="Arecibo",
               description="dynamic spectra to local disks + QA",
               cache_params=cache_params)
    flow.stage("ship", fn("ship"), site="Arecibo->CTC",
               description="physical ATA-disk transport",
               cache_params=cache_params)
    flow.stage("archive", fn("archive"), site="CTC",
               description="robotic tape archive",
               cache_params=cache_params)
    flow.stage("process", fn("process"), site="CTC/PALFA",
               cpu_seconds_per_gb=3600,
               description="RFI excision, dedispersion, Fourier search",
               cache_params=cache_params)
    flow.stage("consolidate", fn("consolidate"), site="CTC",
               description="load data products into SQL database",
               cache_params=cache_params)
    flow.stage("meta-analysis", fn("meta-analysis"), site="CTC/Web",
               description="cross-pointing coincidence cull",
               cache_params=cache_params)
    flow.chain("acquire", "ship", "archive", "process", "consolidate",
               "meta-analysis")
    return flow


# -- the per-pointing search shard ----------------------------------------
# Module-level (not a closure) so it can cross a process boundary under
# ``executor="process"``; everything it needs travels in the task tuple.
# Fault evaluation does NOT happen here — the parent evaluates beam-scope
# faults in canonical (pointing-major, beam-minor) order before dispatch
# and passes the culled beam ids in, so injector state never has to cross
# into (or back out of) a worker process.

#: One beam's data as it travels to a shard: a :class:`Filterbank` for
#: in-process execution, or ``(meta dict, SharedArray)`` when the block
#: crosses a process boundary through shared memory.
_BeamPayload = Union[Filterbank, Tuple[Dict[str, object], SharedArray]]


def _observe_pointing_shard(
    task: Tuple[ObservationConfig, Pointing, int],
) -> List[Filterbank]:
    """Observe one pointing's beams (picklable, shard-cacheable body).

    The simulator is stateless per observation and the RNG derives from
    the passed seed alone, so one pointing's filterbanks are identical
    whether observed inline, on a worker, or replayed from a shard-cache
    entry written by an earlier (shorter) survey window.
    """
    observation, pointing, seed = task
    return ObservationSimulator(observation).observe(pointing, seed=seed)


def _beam_filterbank(payload: "_BeamPayload") -> Filterbank:
    if isinstance(payload, Filterbank):
        return payload
    meta, shared = payload
    # float32 in, float32 out: the Filterbank constructor's asarray is a
    # zero-copy view over the shared segment.
    return Filterbank(data=shared.array, **meta)  # type: ignore[arg-type]


def _search_pointing_shard(
    task: Tuple[
        AreciboPipelineConfig,
        Pointing,
        Sequence["_BeamPayload"],
        FrozenSet[int],
    ],
):
    """Search one pointing: all seven beams plus the multibeam culls.

    Self-contained and deterministic: the RNG is derived from the run
    seed and the pointing id, never shared across pointings, so the
    per-pointing results are identical whether pointings run serially,
    on a thread pool, or in worker processes.  ``culled`` beams (decided
    by the parent's fault evaluation) keep their slot in the multibeam
    grid as an empty candidate list — they can neither detect nor veto —
    and consume no RNG draws, exactly as under in-line execution.
    """
    config, pointing, payloads, culled = task
    rng = np.random.default_rng((config.seed + 1, pointing.pointing_id))
    presift = 0
    dedispersed_total = DataSize.zero()
    per_beam_sifted: List[List] = []
    per_beam_transients: List[Tuple[int, List[SinglePulseEvent]]] = []
    grid: Optional[DMGrid] = None
    for payload in payloads:
        filterbank = _beam_filterbank(payload)
        if filterbank.beam in culled:
            # Graceful degradation, the survey's real procedure: a beam
            # whose data are unusable (bad disk, bad tape) is culled from
            # the pointing and recorded; the other six beams still get
            # searched.
            per_beam_sifted.append([])
            per_beam_transients.append((filterbank.beam, []))
            continue
        cleaned, _ = clean_filterbank(filterbank, rng=rng)
        if grid is None:
            grid = DMGrid.matched(cleaned, config.dm_max)
        block = dedisperse_all(cleaned, grid)
        dedispersed_total += dedispersed_size(cleaned, grid)
        raw_candidates = search_dm_block(
            block,
            grid.trials,
            cleaned.tsamp_s,
            snr_threshold=config.snr_threshold,
            pointing_id=pointing.pointing_id,
            beam=filterbank.beam,
        )
        presift += len(raw_candidates)
        if config.accel_trials > 1:
            trials = acceleration_trials(config.accel_max_ms2, config.accel_trials)
            for row_index in range(0, len(grid.trials), config.accel_dm_stride):
                for trial in trials:
                    if trial == 0.0:
                        continue  # already searched above
                    resampled = resample_for_acceleration(
                        block[row_index], cleaned.tsamp_s, trial
                    )
                    accel_candidates = search_spectrum(
                        resampled,
                        cleaned.tsamp_s,
                        grid.trials[row_index],
                        snr_threshold=config.snr_threshold,
                        accel_ms2=trial,
                        pointing_id=pointing.pointing_id,
                        beam=filterbank.beam,
                    )
                    presift += len(accel_candidates)
                    raw_candidates.extend(accel_candidates)
        per_beam_sifted.append(sift(raw_candidates))
        # Transient search: boxcar ladder over a DM-grid subset,
        # keeping each beam's best detection per time cluster.
        beam_events: dict = {}
        for row_index in range(0, len(grid.trials), config.single_pulse_dm_stride):
            for event in search_single_pulses(
                block[row_index], cleaned.tsamp_s,
                grid.trials[row_index],
                snr_threshold=config.single_pulse_threshold,
            ):
                key = round(event.time_s, 2)
                current = beam_events.get(key)
                if current is None or event.snr > current.snr:
                    beam_events[key] = event
        per_beam_transients.append((filterbank.beam, list(beam_events.values())))
    multibeam = multibeam_coincidence(
        per_beam_sifted, max_beams=config.multibeam_max
    )
    # Transient multibeam cull: an impulse seen simultaneously in more
    # than `transient_max_beams` *other* beams is broadband local RFI.
    # Survivors record the telescope beam id carried by the filterbank,
    # matching how sifted candidates record theirs.
    transient_survivors: List[Tuple[int, int, SinglePulseEvent]] = []
    for beam, events in per_beam_transients:
        for event in events:
            other_beams_seen = sum(
                1
                for other_beam, other_events in per_beam_transients
                if other_beam != beam
                and any(
                    abs(other_event.time_s - event.time_s)
                    <= max(other_event.width_s, event.width_s)
                    for other_event in other_events
                )
            )
            if other_beams_seen <= config.transient_max_beams:
                transient_survivors.append((pointing.pointing_id, beam, event))
    return presift, dedispersed_total, multibeam, transient_survivors


def run_arecibo_pipeline(
    workdir: Union[str, Path],
    config: Optional[AreciboPipelineConfig] = None,
    cache: Optional[StageCache] = None,
    faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    retry: Optional[RetryPolicy] = None,
) -> AreciboPipelineReport:
    """Run Figure 1 into ``workdir``; returns the full report.

    Pass a shared :class:`~repro.core.stagecache.StageCache` to let reruns
    of an unchanged configuration skip stage compute: stage results
    (outputs, stashes, CPU charges) replay from the cache, the FlowReport
    and telemetry come out accounting-identical, and the candidate DB is
    rebuilt from cached stashes; only staging files are skipped.

    ``faults`` aims one :class:`~repro.core.faults.FaultPlan` (or an
    already-armed injector, the resume idiom) at every injection site the
    flow owns: engine stage attempts (scope ``"stage"``, targets
    ``"arecibo-figure1/<stage>"``), the shipping lane (scope ``"lane"``),
    the tape robot (scope ``"storage"``, targets ``"ctc-robot/*"``), and
    per-beam culls (scope ``"beam"``, targets
    ``"arecibo-figure1/p<id>/b<beam>"``, kind ``"drop"`` — the survey
    drops the beam and records the cull).  ``retry`` is the engine-wide
    :class:`~repro.core.recovery.RetryPolicy` for crashed stage attempts.
    """
    config = config if config is not None else AreciboPipelineConfig()
    workdir = Path(workdir)
    staging = workdir / "arecibo-staging"
    staging.mkdir(parents=True, exist_ok=True)

    # The engine arms a FaultPlan against its own simulated clock; the
    # resulting injector is shared with the lane/library/beam shims so
    # one plan covers every injection site (and `after_sim_time`
    # predicates see the run's clock).  Passing an already-armed
    # FaultInjector instead is the crash/resume idiom: exhausted fire
    # budgets carry over, so transient faults do not restrike the rerun.
    engine = Engine(
        seed=config.seed,
        max_workers=config.workers,
        cache=cache,
        retry=retry,
        faults=faults,
        executor=config.executor,
    )
    injector: Optional[FaultInjector] = engine.faults

    pointings = config.sky.generate_pointings(config.n_pointings)
    lane = ShippingLane(
        ARECIBO_TO_CTC, rng=random.Random(config.seed), faults=injector
    )
    library = RoboticTapeLibrary("ctc-robot", LTO3_TAPE, faults=injector)
    database = CandidateDatabase(workdir / "candidates.db")

    db_loaded = {"done": False}

    def load_database(process_stash: Mapping[str, object]) -> None:
        """Load the candidate DB from the process stage's stash, once.

        Called by ``consolidate`` and lazily by ``meta-analysis``, so the
        DB is populated by whichever of the two actually executes — a
        cache hit on ``consolidate`` must not leave a later cache miss on
        ``meta-analysis`` querying an empty database.
        """
        if db_loaded["done"]:
            return
        database.add_candidates(process_stash["sifted"])
        for pointing_id, beam, event in process_stash["transients"]:
            database.add_transients([event], pointing_id, beam)
        db_loaded["done"] = True

    def acquire(inputs, ctx):
        """Record dynamic spectra to local disks; basic quality monitoring.

        Pointings observe independently on the shard pool, keyed per
        pointing in the shard cache: a window that extends the survey by
        one night recomputes only the new arrivals.
        """
        observed = ctx.map_shards(
            _observe_pointing_shard,
            [
                (config.observation, pointing, config.seed + pointing.pointing_id)
                for pointing in pointings
            ],
            cache_keys=[
                f"observe|p{pointing.pointing_id:04d}" for pointing in pointings
            ],
            cache_params=_shard_fingerprint(config),
        )
        observations: Dict[int, List[Filterbank]] = {}
        total = DataSize.zero()
        for pointing, beams in zip(pointings, observed):
            observations[pointing.pointing_id] = beams
            for filterbank in beams:
                path = staging / (
                    f"p{pointing.pointing_id:04d}_b{filterbank.beam}.fb"
                )
                total += write_filterbank(path, filterbank)
        ctx.stash["observations"] = observations
        ctx.stash["raw_size"] = total
        return Dataset(
            "raw-spectra",
            total,
            version="survey_v1",
            attrs={"pointings": config.n_pointings, "beams": N_BEAMS},
        )

    def ship(inputs, ctx):
        """Physical ATA-disk transport to the CTC."""
        raw = inputs["acquire"]
        result = lane.ship(raw.size)
        ctx.stash["shipment"] = result
        ctx.charge_cpu(Duration.zero())
        return raw.derive("shipped-raw", raw.size, attrs={"media": result.media_used})

    def archive(inputs, ctx):
        """Archive raw data to the robotic tape system."""
        shipped = inputs["ship"]
        observations = ctx.dep_stash("acquire")["observations"]
        for pointing_id, beams in observations.items():
            for filterbank in beams:
                library.archive(
                    f"p{pointing_id:04d}_b{filterbank.beam}", filterbank.size
                )
        ctx.stash["cartridges"] = library.cartridge_count
        return shipped.derive("archived-raw", shipped.size)

    def process(inputs, ctx):
        """Per-beam excision, dedispersion, Fourier search; multibeam cull.

        Pointings are independent, so with ``config.workers > 1`` they fan
        out across the engine's shard pool — threads or worker processes
        per ``config.executor`` — and results merge in pointing order
        either way, keeping the stage output byte-identical for any worker
        count and executor.  Beam-scope faults are evaluated *here*, in
        canonical pointing-major/beam-minor order (identical to sequential
        execution), so injector state never crosses a process boundary;
        shards receive only the resulting culled-beam sets.  Under the
        process executor, filterbank blocks travel through shared memory
        instead of the pickle pipe.
        """
        observations = ctx.dep_stash("acquire")["observations"]

        beam_culls: List[Tuple[int, int]] = []
        culled_by_pointing: Dict[int, FrozenSet[int]] = {}
        for pointing in pointings:
            culled: List[int] = []
            for filterbank in observations[pointing.pointing_id]:
                if injector is None:
                    continue
                records = injector.fire(
                    "beam",
                    f"arecibo-figure1/p{pointing.pointing_id:04d}"
                    f"/b{filterbank.beam}",
                    site="CTC/PALFA",
                )
                ctx.record_faults(records)
                if any(record.kind == "drop" for record in records):
                    culled.append(filterbank.beam)
                    beam_culls.append((pointing.pointing_id, filterbank.beam))
            culled_by_pointing[pointing.pointing_id] = frozenset(culled)

        shared_handles: List[SharedArray] = []
        try:
            tasks = []
            for pointing in pointings:
                payloads: List[_BeamPayload] = []
                for filterbank in observations[pointing.pointing_id]:
                    if ctx.shard_executor == "process":
                        shared = SharedArray.copy_from(filterbank.data)
                        shared_handles.append(shared)
                        meta = {
                            "freq_low_mhz": filterbank.freq_low_mhz,
                            "freq_high_mhz": filterbank.freq_high_mhz,
                            "tsamp_s": filterbank.tsamp_s,
                            "pointing_id": filterbank.pointing_id,
                            "beam": filterbank.beam,
                        }
                        payloads.append((meta, shared))
                    else:
                        payloads.append(filterbank)
                tasks.append(
                    (
                        config,
                        pointing,
                        payloads,
                        culled_by_pointing[pointing.pointing_id],
                    )
                )
            pointing_results = ctx.map_shards(
                _search_pointing_shard,
                tasks,
                cache_keys=[
                    f"search|p{pointing.pointing_id:04d}"
                    f"|culled={sorted(culled_by_pointing[pointing.pointing_id])}"
                    for pointing in pointings
                ],
                cache_params=_shard_fingerprint(config),
            )
        finally:
            for shared in shared_handles:
                shared.close()
                shared.unlink()

        presift = 0
        dedispersed_total = DataSize.zero()
        all_sifted: List[SiftedCandidate] = []
        rejected = 0
        transient_survivors: List[Tuple[int, int, SinglePulseEvent]] = []
        for (
            pointing_presift,
            pointing_dedisp,
            multibeam,
            survivors,
        ) in pointing_results:
            presift += pointing_presift
            dedispersed_total += pointing_dedisp
            rejected += multibeam.rejection_count
            all_sifted.extend(multibeam.accepted)
            transient_survivors.extend(survivors)
        ctx.stash["presift"] = presift
        ctx.stash["sifted"] = all_sifted
        ctx.stash["dedispersed"] = dedispersed_total
        ctx.stash["multibeam_rejected"] = rejected
        ctx.stash["transients"] = transient_survivors
        ctx.stash["beam_culls"] = beam_culls
        # Candidate volume: one compact record per sifted candidate.
        return Dataset(
            "candidates",
            DataSize.from_bytes(float(len(all_sifted) * 64)),
            version="search_v1",
            attrs={"presift": presift},
        )

    def consolidate(inputs, ctx):
        """Load candidate data products into the CTC database."""
        process_stash = ctx.dep_stash("process")
        load_database(process_stash)
        return inputs["process"].derive(
            "candidate-db",
            inputs["process"].size,
            attrs={"rows": len(process_stash["sifted"])},
        )

    def meta_analyze(inputs, ctx):
        """Cross-pointing coincidence cull + fold confirmation.

        Surviving candidates are fold-confirmed: "reprocessing of
        dedispersed time series to signal average at the spin period of a
        candidate signal".  Fourier noise excursions do not fold up.
        """
        load_database(ctx.dep_stash("process"))
        observations = ctx.dep_stash("acquire")["observations"]
        report = database.cull_widespread(
            max_pointings=config.meta_max_pointings
        )
        ctx.stash["meta"] = report
        survivors = database.confirmed_pulsars(min_snr=config.snr_threshold)
        confirmed = []
        fold_rng = np.random.default_rng(config.seed + 2)
        # Candidate rows carry telescope beam ids, not list positions, so
        # resolve the filterbank by its own beam attribute.
        beam_lookup = {
            (pointing_id, filterbank.beam): filterbank
            for pointing_id, beams in observations.items()
            for filterbank in beams
        }
        for row in survivors:
            filterbank = beam_lookup[(row["pointing_id"], row["beam"])]
            cleaned, _ = clean_filterbank(filterbank, rng=fold_rng)
            base_series = dedisperse(cleaned, row["dm"])
            # Fold at the recorded trial acceleration and at zero, keeping
            # the better: the Fourier leader sometimes rides a nonzero
            # trial by chance even for an unaccelerated source.
            fold_snr = 0.0
            accels = {0.0}
            recorded = float(row["accel_ms2"])
            if recorded:
                # Refine around the coarse trial: the residual drift between
                # the true acceleration and the nearest grid trial smears the
                # fold, so confirmation scans the gap the search grid left.
                half_step = config.accel_max_ms2 / max(config.accel_trials - 1, 1)
                for offset in (-half_step, -half_step / 2, 0.0, half_step / 2, half_step):
                    accels.add(recorded + offset)
            for accel in accels:
                series = base_series
                if accel:
                    series = resample_for_acceleration(
                        base_series, filterbank.tsamp_s, accel
                    )
                _, snr = refine_period(
                    series, filterbank.tsamp_s, row["period_s"], n_trials=11
                )
                fold_snr = max(fold_snr, snr)
            if fold_snr >= config.fold_threshold:
                confirmed.append({**row, "fold_snr": fold_snr})
        ctx.stash["confirmed"] = confirmed
        return Dataset(
            "confirmed-candidates",
            DataSize.from_bytes(float(len(confirmed) * 64)),
            version="meta_v1",
            attrs={"confirmed": len(confirmed)},
        )

    flow = figure1_flow(
        transforms={
            "acquire": acquire,
            "ship": ship,
            "archive": archive,
            "process": process,
            "consolidate": consolidate,
            "meta-analysis": meta_analyze,
        },
        cache_params=_cache_fingerprint(config),
    )

    flow_report = engine.run(flow)
    write_event_log(workdir / "telemetry.jsonl", flow_report.events)
    stashes = flow_report.stashes
    # A fully-warm run skips every stage, leaving this run's candidates.db
    # untouched; load it from the cached stash so the persisted artifact
    # matches a cold run's.
    load_database(stashes["process"])

    # Score detections against ground truth.
    injected = [p for pointing in pointings for p in pointing.all_pulsars()]
    sifted: List[SiftedCandidate] = stashes["process"]["sifted"]  # type: ignore[assignment]
    confirmed: List[dict] = stashes["meta-analysis"]["confirmed"]  # type: ignore[assignment]
    confirmed_sifted = [
        SiftedCandidate(
            period_s=row["period_s"],
            freq_hz=row["freq_hz"],
            snr=row["snr"],
            dm=row["dm"],
            n_harmonics=row["n_harmonics"],
            n_dm_hits=row["n_dm_hits"],
            pointing_id=row["pointing_id"],
            beam=row["beam"],
        )
        for row in confirmed
    ]
    recovered = 0
    missed: List[str] = []
    matched_ids = set()
    observation_time = config.observation.duration_s
    for pulsar in injected:
        # Match tolerance is the search's own frequency resolution: one
        # Fourier bin, expressed as a fraction of the true frequency.
        bin_fraction = 1.0 / (observation_time / pulsar.period_s)
        match = match_to_truth(
            confirmed_sifted,
            pulsar.period_s,
            freq_tolerance=max(0.02, bin_fraction),
        )
        if match is not None:
            recovered += 1
            matched_ids.add(id(match))
        else:
            missed.append(pulsar.name)
    false_candidates = sum(
        1 for candidate in confirmed_sifted if id(candidate) not in matched_ids
    )
    injected_transients = [
        (pointing.pointing_id, transient)
        for pointing in pointings
        for beam in pointing.transients_by_beam
        for transient in beam
    ]
    transient_rows: List[Tuple[int, int, object]] = stashes["process"][
        "transients"
    ]  # type: ignore[assignment]
    transients_recovered = 0
    for pointing_id, truth in injected_transients:
        expected_time = truth.time_s * config.observation.duration_s
        if any(
            row_pointing == pointing_id
            and abs(event.time_s - expected_time) <= 0.05 * config.observation.duration_s
            for row_pointing, _, event in transient_rows
        ):
            transients_recovered += 1
    score = DetectionScore(
        injected=len(injected),
        recovered=recovered,
        missed=missed,
        false_candidates=false_candidates,
        transients_injected=len(injected_transients),
        transients_recovered=transients_recovered,
    )

    report = AreciboPipelineReport(
        config=config,
        flow_report=flow_report,
        pointings=pointings,
        shipment=stashes["ship"]["shipment"],  # type: ignore[arg-type]
        tape_cartridges=stashes["archive"]["cartridges"],  # type: ignore[arg-type]
        raw_size=stashes["acquire"]["raw_size"],  # type: ignore[arg-type]
        dedispersed_size=stashes["process"]["dedispersed"],  # type: ignore[arg-type]
        candidate_count_presift=stashes["process"]["presift"],  # type: ignore[arg-type]
        candidate_count_sifted=len(sifted),
        transient_count=len(transient_rows),
        multibeam_rejected=stashes["process"]["multibeam_rejected"],  # type: ignore[arg-type]
        meta_report=stashes["meta-analysis"]["meta"],  # type: ignore[arg-type]
        score=score,
        confirmed=confirmed,
        beam_culls=list(stashes["process"].get("beam_culls", [])),  # type: ignore[union-attr]
    )
    database.close()
    return report


# -- incremental (windowed) execution --------------------------------------
@dataclass
class AreciboWindowReport:
    """One arrival window of an incremental Figure-1 run."""

    index: int
    watermark: float
    new_pointings: int
    pointings_seen: int
    report: AreciboPipelineReport
    #: Stage-cache traffic this window generated (deltas of the shared
    #: cache's counters) — the dirty-cone pin: only never-seen pointings
    #: may miss at the shard level.
    stage_hits: int = 0
    stage_misses: int = 0
    shard_hits: int = 0
    shard_misses: int = 0


@dataclass
class AreciboIncrementalReport:
    """A Figure-1 survey run as a sequence of pointing-arrival windows."""

    config: AreciboPipelineConfig
    windows: List[AreciboWindowReport]
    ledger: WindowLedger
    telemetry: Telemetry

    @property
    def final(self) -> AreciboPipelineReport:
        """The last window's report — covers the whole survey, and is
        byte-identical (canonical accounting) to one cold batch run."""
        return self.windows[-1].report


def run_arecibo_incremental(
    workdir: Union[str, Path],
    config: Optional[AreciboPipelineConfig] = None,
    arrivals: Optional[Sequence[int]] = None,
    cache: Optional[StageCache] = None,
    telemetry: Optional[Telemetry] = None,
) -> AreciboIncrementalReport:
    """Run Figure 1 incrementally: pointings arrive night by night.

    ``arrivals`` lists how many new pointings land in each window
    (default: one per window); they must sum to ``config.n_pointings``.
    Each window re-runs the flow over every pointing seen so far against
    the shared stage cache — the incremental identity *warm rerun + new
    inputs*: whole stages whose inputs did not change replay as stage
    hits, and the delta-capable ``acquire``/``process`` stages recompute
    only the newly arrived pointings' shards.  A zero-arrival window runs
    no new compute (all-hit) but is still accounted on the ledger.

    The last window covers the whole survey, so its report and canonical
    telemetry are byte-identical to one cold batch run of
    :func:`run_arecibo_pipeline` with the same ``config``.
    """
    config = config if config is not None else AreciboPipelineConfig()
    if arrivals is None:
        arrivals = [1] * config.n_pointings
    arrivals = [int(count) for count in arrivals]
    if any(count < 0 for count in arrivals):
        raise IncrementalError(f"negative arrival counts: {arrivals}")
    if sum(arrivals) != config.n_pointings:
        raise IncrementalError(
            f"arrivals {arrivals} sum to {sum(arrivals)}, "
            f"expected n_pointings={config.n_pointings}"
        )
    workdir = Path(workdir)
    cache = cache if cache is not None else StageCache()
    bus = telemetry if telemetry is not None else Telemetry()
    ledger = WindowLedger("arecibo-figure1", bus)
    windows: List[AreciboWindowReport] = []
    seen = 0
    for index, count in enumerate(arrivals):
        seen += count
        before = (
            cache.hits, cache.misses, cache.shard_hits, cache.shard_misses,
        )
        ledger.open(float(index + 1), arrivals=count, pointings=seen)
        report = run_arecibo_pipeline(
            workdir / f"window{index:02d}",
            replace(config, n_pointings=seen),
            cache=cache,
        )
        ledger.close(
            arrivals=count,
            pointings=seen,
            candidates=report.candidate_count_sifted,
            confirmed=len(report.confirmed),
            cpu_seconds=report.flow_report.total_cpu_time.seconds,
            bytes=report.flow_report.total_output.bytes,
        )
        windows.append(
            AreciboWindowReport(
                index=index,
                watermark=float(index + 1),
                new_pointings=count,
                pointings_seen=seen,
                report=report,
                stage_hits=cache.hits - before[0],
                stage_misses=cache.misses - before[1],
                shard_hits=cache.shard_hits - before[2],
                shard_misses=cache.shard_misses - before[3],
            )
        )
    return AreciboIncrementalReport(
        config=config, windows=windows, ledger=ledger, telemetry=bus
    )
