"""Candidate sifting.

A raw Fourier search of ~10^3 DM trials emits many redundant detections:
the same pulsar at neighbouring DM trials, at its harmonics, and at
adjacent spectral bins.  Sifting collapses these into one candidate per
underlying signal, keeping the best-S/N instance and recording how many
trials supported it (DM-coherence, used later as a quality cut — real
dispersed signals peak at a nonzero DM, RFI peaks at DM 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.arecibo.fourier import FourierCandidate
from repro.core.errors import SearchError


@dataclass(frozen=True)
class SiftedCandidate:
    """One distinct periodic signal after sifting."""

    period_s: float
    freq_hz: float
    snr: float
    dm: float
    n_harmonics: int
    n_dm_hits: int          # how many DM trials detected it
    snr_dm0: float = 0.0    # best S/N of this signal at DM ~ 0
    accel_ms2: float = 0.0  # best trial acceleration (binary candidates)
    pointing_id: int = -1
    beam: int = -1

    @property
    def is_dispersed(self) -> bool:
        """Peak significance at a clearly nonzero DM."""
        return self.dm > 1.0

    def dm0_ratio(self) -> float:
        """S/N at DM 0 relative to the peak — the classic RFI test.

        An undispersed (terrestrial) signal is about as strong at DM 0 as
        anywhere; a genuinely dispersed pulsar loses significance there.
        """
        return self.snr_dm0 / self.snr if self.snr > 0 else 0.0


def _same_signal(a: FourierCandidate, b: FourierCandidate, freq_tol: float) -> bool:
    return abs(a.freq_hz - b.freq_hz) <= freq_tol * max(a.freq_hz, b.freq_hz)


def _is_harmonic(fundamental_hz: float, other_hz: float, tol: float) -> bool:
    """True when ``other`` is an integer multiple/submultiple of ``fundamental``."""
    if fundamental_hz <= 0 or other_hz <= 0:
        return False
    ratio = other_hz / fundamental_hz
    if ratio < 1:
        ratio = 1.0 / ratio
    nearest = round(ratio)
    if nearest < 2:
        return False
    return abs(ratio - nearest) <= tol * nearest


def sift(
    candidates: Sequence[FourierCandidate],
    freq_tolerance: float = 0.01,
    harmonic_tolerance: float = 0.01,
    reject_harmonics: bool = True,
    dm0_cutoff: float = 1.0,
) -> List[SiftedCandidate]:
    """Collapse duplicates across DM trials and the harmonic ladder.

    Each sifted candidate also records its best S/N among trials with
    DM <= ``dm0_cutoff`` (the DM-0 comparison test used to flag
    undispersed terrestrial signals downstream).  Returns the distinct
    signals, strongest first.
    """
    if freq_tolerance <= 0:
        raise SearchError("frequency tolerance must be positive")
    ordered = sorted(candidates, key=lambda c: -c.snr)
    groups: List[List[FourierCandidate]] = []
    for candidate in ordered:
        for group in groups:
            if _same_signal(group[0], candidate, freq_tolerance):
                group.append(candidate)
                break
        else:
            groups.append([candidate])

    sifted: List[SiftedCandidate] = []
    for group in groups:
        leader = group[0]
        dm_hits = len({round(member.dm, 3) for member in group})
        snr_dm0 = max(
            (member.snr for member in group if member.dm <= dm0_cutoff), default=0.0
        )
        sifted.append(
            SiftedCandidate(
                period_s=leader.period_s,
                freq_hz=leader.freq_hz,
                snr=leader.snr,
                dm=leader.dm,
                n_harmonics=leader.n_harmonics,
                n_dm_hits=dm_hits,
                snr_dm0=snr_dm0,
                accel_ms2=getattr(leader, "accel_ms2", 0.0),
                pointing_id=leader.pointing_id,
                beam=leader.beam,
            )
        )

    if reject_harmonics:
        sifted = _reject_harmonics(sifted, harmonic_tolerance)
    sifted.sort(key=lambda c: -c.snr)
    return sifted


def _reject_harmonics(
    candidates: List[SiftedCandidate], tolerance: float
) -> List[SiftedCandidate]:
    """Drop candidates that are integer harmonics of a stronger candidate."""
    by_snr = sorted(candidates, key=lambda c: -c.snr)
    kept: List[SiftedCandidate] = []
    for candidate in by_snr:
        if any(
            _is_harmonic(winner.freq_hz, candidate.freq_hz, tolerance)
            for winner in kept
        ):
            continue
        kept.append(candidate)
    return kept


def match_to_truth(
    candidates: Iterable[SiftedCandidate],
    true_period_s: float,
    freq_tolerance: float = 0.02,
    max_harmonic: int = 8,
) -> Optional[SiftedCandidate]:
    """Find the candidate matching a known injected period (for scoring).

    Harmonically related detections (the search finding 2f or f/2) count
    as recoveries, as they do in real surveys — but only up to
    ``max_harmonic``, and with an *absolute* tolerance on the harmonic
    ratio, so a noise bin at a large frequency cannot accidentally
    "match" as the 40th harmonic.
    """
    true_freq = 1.0 / true_period_s
    best: Optional[SiftedCandidate] = None
    for candidate in candidates:
        ratio = candidate.freq_hz / true_freq
        inverted = 1.0 / ratio if ratio < 1 else ratio
        nearest = round(inverted)
        if (
            1 <= nearest <= max_harmonic
            and abs(inverted - nearest) <= freq_tolerance
        ):
            if best is None or candidate.snr > best.snr:
                best = candidate
    return best
