"""Filterbank data: dynamic spectra from the telescope.

A :class:`Filterbank` is a (channels x time samples) float32 array with its
frequency axis and sampling time — the "dynamic spectra" acquired at the
telescope and recorded to local disks.  A small file format (JSON header +
raw float32 block) supports the acquire-to-disk and ship-to-CTC stages of
Figure 1 with real bytes.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.errors import SearchError
from repro.core.units import DataSize, Duration

_MAGIC = b"ALFAFB01"
_LEN = struct.Struct("<I")

# Dispersion constant: delay(s) = KDM * DM * (f^-2 - fref^-2), f in MHz.
KDM = 4.148808e3


@dataclass
class Filterbank:
    """One beam's dynamic spectrum for one pointing."""

    data: np.ndarray          # (n_channels, n_samples) float32
    freq_low_mhz: float
    freq_high_mhz: float
    tsamp_s: float
    pointing_id: int = 0
    beam: int = 0

    def __post_init__(self) -> None:
        if self.data.ndim != 2:
            raise SearchError("filterbank data must be 2-D (channels x samples)")
        if self.freq_high_mhz <= self.freq_low_mhz:
            raise SearchError("need freq_high > freq_low")
        if self.tsamp_s <= 0:
            raise SearchError("sampling time must be positive")
        self.data = np.asarray(self.data, dtype=np.float32)

    @property
    def n_channels(self) -> int:
        return int(self.data.shape[0])

    @property
    def n_samples(self) -> int:
        return int(self.data.shape[1])

    @property
    def duration(self) -> Duration:
        return Duration(self.n_samples * self.tsamp_s)

    @property
    def size(self) -> DataSize:
        return DataSize.from_bytes(float(self.data.nbytes))

    @property
    def channel_freqs_mhz(self) -> np.ndarray:
        """Center frequency of each channel, ascending."""
        edges = np.linspace(self.freq_low_mhz, self.freq_high_mhz, self.n_channels + 1)
        return ((edges[:-1] + edges[1:]) / 2.0).astype(np.float64)

    def zero_dm_series(self) -> np.ndarray:
        """Frequency-averaged time series (the DM = 0 trial)."""
        return self.data.mean(axis=0)


def dispersion_delay_s(dm: float, freq_mhz: np.ndarray, ref_mhz: float) -> np.ndarray:
    """Cold-plasma dispersion delay relative to ``ref_mhz`` (seconds)."""
    if dm < 0:
        raise SearchError("DM cannot be negative")
    return KDM * dm * (freq_mhz**-2 - ref_mhz**-2)


def write_filterbank(path: Union[str, Path], filterbank: Filterbank) -> DataSize:
    """Serialize to disk; returns bytes written."""
    path = Path(path)
    header = json.dumps(
        {
            "freq_low": filterbank.freq_low_mhz,
            "freq_high": filterbank.freq_high_mhz,
            "tsamp": filterbank.tsamp_s,
            "pointing": filterbank.pointing_id,
            "beam": filterbank.beam,
            "channels": filterbank.n_channels,
            "samples": filterbank.n_samples,
        },
        sort_keys=True,
    ).encode("ascii")
    with path.open("wb") as stream:
        stream.write(_MAGIC)
        stream.write(_LEN.pack(len(header)))
        stream.write(header)
        stream.write(np.ascontiguousarray(filterbank.data).tobytes())
    return DataSize.from_bytes(float(path.stat().st_size))


def read_filterbank(path: Union[str, Path]) -> Filterbank:
    path = Path(path)
    with path.open("rb") as stream:
        magic = stream.read(len(_MAGIC))
        if magic != _MAGIC:
            raise SearchError(f"{path} is not a filterbank file")
        (header_length,) = _LEN.unpack(stream.read(4))
        try:
            header = json.loads(stream.read(header_length).decode("ascii"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SearchError(f"{path}: bad filterbank header: {exc}") from exc
        n_channels = int(header["channels"])
        n_samples = int(header["samples"])
        body = stream.read(n_channels * n_samples * 4)
        if len(body) != n_channels * n_samples * 4:
            raise SearchError(f"{path}: truncated filterbank data")
        data = np.frombuffer(body, dtype=np.float32).reshape(n_channels, n_samples)
    return Filterbank(
        data=data.copy(),
        freq_low_mhz=float(header["freq_low"]),
        freq_high_mhz=float(header["freq_high"]),
        tsamp_s=float(header["tsamp"]),
        pointing_id=int(header["pointing"]),
        beam=int(header["beam"]),
    )
