"""Incoherent dedispersion over a trial-DM grid.

"Dedispersion entails summing over the frequency channels with about 1000
different trial values of the dispersion measure, each yielding a time
series of length equal to the original number of time samples.  These time
series require storage about equal to that of the original raw data."

:func:`dedisperse` produces one trial's time series; :func:`dedisperse_all`
the full (n_trials x n_samples) block, whose byte size demonstrably ~equals
the raw filterbank's when ``len(grid) == n_channels`` — the storage claim
quantified in experiment FIG1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.arecibo.filterbank import Filterbank, dispersion_delay_s
from repro.core.errors import SearchError
from repro.core.units import DataSize


def delay_samples(filterbank: Filterbank, dm: float) -> np.ndarray:
    """Per-channel dispersion delay in (integer) samples, w.r.t. the top
    of the band."""
    delays = dispersion_delay_s(
        dm, filterbank.channel_freqs_mhz, ref_mhz=filterbank.freq_high_mhz
    )
    return np.round(delays / filterbank.tsamp_s).astype(np.int64)


def dedisperse(filterbank: Filterbank, dm: float) -> np.ndarray:
    """Shift-and-sum the channels at one trial DM.

    Returns the frequency-averaged time series (length ``n_samples``);
    samples shifted past the end wrap, which is harmless for the short
    synthetic observations and keeps lengths uniform as the paper states.
    """
    shifts = delay_samples(filterbank, dm)
    accumulator = np.zeros(filterbank.n_samples, dtype=np.float64)
    for channel in range(filterbank.n_channels):
        accumulator += np.roll(filterbank.data[channel], -int(shifts[channel]))
    return accumulator / filterbank.n_channels


@dataclass(frozen=True)
class DMGrid:
    """A trial-DM grid."""

    trials: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.trials:
            raise SearchError("DM grid needs at least one trial")
        if any(dm < 0 for dm in self.trials):
            raise SearchError("DM trials cannot be negative")
        if list(self.trials) != sorted(self.trials):
            raise SearchError("DM trials must be ascending")

    def __len__(self) -> int:
        return len(self.trials)

    @classmethod
    def linear(cls, dm_min: float, dm_max: float, n_trials: int) -> "DMGrid":
        if n_trials < 1 or dm_max < dm_min:
            raise SearchError("bad DM grid parameters")
        return cls(trials=tuple(np.linspace(dm_min, dm_max, n_trials).tolist()))

    @classmethod
    def matched(cls, filterbank: Filterbank, dm_max: float) -> "DMGrid":
        """Step size matched to one sample of differential delay across the
        band — the survey's "about 1000 trial values" rule, scaled."""
        unit_delay = dispersion_delay_s(
            1.0,
            np.array([filterbank.freq_low_mhz]),
            ref_mhz=filterbank.freq_high_mhz,
        )[0]
        step = filterbank.tsamp_s / unit_delay
        n_trials = max(2, int(np.ceil(dm_max / step)) + 1)
        return cls.linear(0.0, dm_max, n_trials)

    def nearest_trial(self, dm: float) -> float:
        return min(self.trials, key=lambda trial: abs(trial - dm))


def dedisperse_all(filterbank: Filterbank, grid: DMGrid) -> np.ndarray:
    """All trials: (n_trials, n_samples) float32 block."""
    block = np.empty((len(grid), filterbank.n_samples), dtype=np.float32)
    for index, dm in enumerate(grid.trials):
        block[index] = dedisperse(filterbank, dm)
    return block


def dedispersed_size(filterbank: Filterbank, grid: DMGrid) -> DataSize:
    """Bytes of the full trial block — the intermediate-storage cost."""
    return DataSize.from_bytes(float(len(grid) * filterbank.n_samples * 4))
