"""Incoherent dedispersion over a trial-DM grid.

"Dedispersion entails summing over the frequency channels with about 1000
different trial values of the dispersion measure, each yielding a time
series of length equal to the original number of time samples.  These time
series require storage about equal to that of the original raw data."

:func:`dedisperse` produces one trial's time series; :func:`dedisperse_all`
the full (n_trials x n_samples) block, whose byte size demonstrably ~equals
the raw filterbank's when ``len(grid) == n_channels`` — the storage claim
quantified in experiment FIG1.

The full-grid path is batched: dispersion delay is linear in DM, so the
per-channel delay vector is computed once at unit DM (:func:`unit_delay_samples`),
scaled into the whole ``(n_trials, n_channels)`` integer shift matrix
(:func:`delay_matrix`), and handed to the :func:`repro.core.kernels.shift_sum`
gather kernel.  :func:`dedisperse_all_reference` keeps the naive per-trial
``np.roll`` loop; the two are asserted bitwise-equal in the equivalence
suite and benchmarked against each other in C16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.arecibo.filterbank import KDM, Filterbank, dispersion_delay_s
from repro.core.errors import KernelError, SearchError
from repro.core.kernels import shift_sum
from repro.core.units import DataSize


def delay_samples(filterbank: Filterbank, dm: float) -> np.ndarray:
    """Per-channel dispersion delay in (integer) samples, w.r.t. the top
    of the band."""
    delays = dispersion_delay_s(
        dm, filterbank.channel_freqs_mhz, ref_mhz=filterbank.freq_high_mhz
    )
    return np.round(delays / filterbank.tsamp_s).astype(np.int64)


def unit_delay_samples(filterbank: Filterbank) -> np.ndarray:
    """Per-channel delay in *fractional* samples at DM = 1.

    Dispersion delay is linear in DM, so every trial's integer shift
    vector is one scale-and-round away from this — the hoisted common
    subexpression of the full-grid sweep.
    """
    delays = dispersion_delay_s(
        1.0, filterbank.channel_freqs_mhz, ref_mhz=filterbank.freq_high_mhz
    )
    return delays / filterbank.tsamp_s


def delay_matrix(filterbank: Filterbank, dms: Sequence[float]) -> np.ndarray:
    """Integer shift matrix ``(n_trials, n_channels)`` for a DM sequence.

    Row ``t`` is bitwise-equal to ``delay_samples(filterbank, dms[t])``:
    the per-channel frequency term of the dispersion law is hoisted out of
    the trial loop, and the remaining ``(KDM * dm) * term / tsamp``
    product is evaluated in the same association order as
    :func:`~repro.arecibo.filterbank.dispersion_delay_s`, so rounding can
    never disagree between the batched and per-trial paths.
    """
    trials = np.asarray(dms, dtype=np.float64)
    if trials.ndim != 1:
        raise SearchError("DM trials must be a 1-D sequence")
    if np.any(trials < 0):
        raise SearchError("DM trials cannot be negative")
    freq_term = filterbank.channel_freqs_mhz ** -2 - filterbank.freq_high_mhz ** -2
    delays = (KDM * trials)[:, None] * freq_term[None, :]
    return np.round(delays / filterbank.tsamp_s).astype(np.int64)


def dedisperse(filterbank: Filterbank, dm: float) -> np.ndarray:
    """Shift-and-sum the channels at one trial DM.

    Returns the frequency-averaged time series (length ``n_samples``);
    samples shifted past the end wrap, which is harmless for the short
    synthetic observations and keeps lengths uniform as the paper states.
    """
    shifts = delay_samples(filterbank, dm)
    accumulator = np.zeros(filterbank.n_samples, dtype=np.float64)
    for channel in range(filterbank.n_channels):
        accumulator += np.roll(filterbank.data[channel], -int(shifts[channel]))
    return accumulator / filterbank.n_channels


@dataclass(frozen=True)
class DMGrid:
    """A trial-DM grid."""

    trials: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.trials:
            raise SearchError("DM grid needs at least one trial")
        if any(dm < 0 for dm in self.trials):
            raise SearchError("DM trials cannot be negative")
        if list(self.trials) != sorted(self.trials):
            raise SearchError("DM trials must be ascending")
        # Cached ascending array for searchsorted lookups; not a dataclass
        # field, so equality/hash/repr stay defined by `trials` alone.
        object.__setattr__(
            self, "_trials_array", np.asarray(self.trials, dtype=np.float64)
        )

    def __len__(self) -> int:
        return len(self.trials)

    @classmethod
    def linear(cls, dm_min: float, dm_max: float, n_trials: int) -> "DMGrid":
        if n_trials < 1 or dm_max < dm_min:
            raise SearchError("bad DM grid parameters")
        return cls(trials=tuple(np.linspace(dm_min, dm_max, n_trials).tolist()))

    @classmethod
    def matched(cls, filterbank: Filterbank, dm_max: float) -> "DMGrid":
        """Step size matched to one sample of differential delay across the
        band — the survey's "about 1000 trial values" rule, scaled."""
        unit_delay = dispersion_delay_s(
            1.0,
            np.array([filterbank.freq_low_mhz]),
            ref_mhz=filterbank.freq_high_mhz,
        )[0]
        step = filterbank.tsamp_s / unit_delay
        n_trials = max(2, int(np.ceil(dm_max / step)) + 1)
        return cls.linear(0.0, dm_max, n_trials)

    def nearest_trial(self, dm: float) -> float:
        """The grid trial closest to ``dm``; ties go to the lower trial.

        Binary search over the (validated-ascending) grid instead of an
        O(n) ``min`` scan — this is called once per candidate during
        sifting, against grids of hundreds of trials.
        """
        trials: np.ndarray = self._trials_array  # type: ignore[attr-defined]
        index = int(np.searchsorted(trials, dm))
        if index <= 0:
            return self.trials[0]
        if index >= len(self.trials):
            return self.trials[-1]
        lower, upper = self.trials[index - 1], self.trials[index]
        # `<=` matches the old linear min(): first (lower) trial wins ties.
        return lower if dm - lower <= upper - dm else upper


def dedisperse_all(filterbank: Filterbank, grid: DMGrid) -> np.ndarray:
    """All trials: (n_trials, n_samples) float32 block.

    One batched gather over the delay matrix — bitwise identical to
    :func:`dedisperse_all_reference` (same per-channel accumulation order,
    same float64 -> float32 cast), several times faster.
    """
    shifts = delay_matrix(filterbank, grid.trials)
    try:
        block = shift_sum(filterbank.data, shifts)
    except KernelError as exc:
        raise SearchError(str(exc)) from exc
    return (block / filterbank.n_channels).astype(np.float32)


def dedisperse_all_reference(filterbank: Filterbank, grid: DMGrid) -> np.ndarray:
    """The naive per-trial loop :func:`dedisperse_all` replaces.

    Retained as the equivalence oracle and the benchmark baseline.
    """
    block = np.empty((len(grid), filterbank.n_samples), dtype=np.float32)
    for index, dm in enumerate(grid.trials):
        block[index] = dedisperse(filterbank, dm)
    return block


def dedispersed_size(filterbank: Filterbank, grid: DMGrid) -> DataSize:
    """Bytes of the full trial block — the intermediate-storage cost."""
    return DataSize.from_bytes(float(len(grid) * filterbank.n_samples * 4))
