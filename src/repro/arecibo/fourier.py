"""Fourier-domain periodicity search with harmonic summing.

The survey's core detection step: "Fourier analysis, harmonic summing,
threshold tests to identify candidates".  Pulsar pulses are narrow, so
their power is spread over many harmonics of the spin frequency; summing
the spectrum with its integer-stretched copies concentrates that power
back into one statistic, buying sensitivity to short-duty-cycle pulsars at
the cost of a higher trials factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.errors import KernelError, SearchError
from repro.core.kernels import batched_power_spectra, harmonic_snr_block, threshold_hits

DEFAULT_HARMONICS = (1, 2, 4, 8, 16)


def power_spectrum(timeseries: np.ndarray) -> np.ndarray:
    """Normalized power spectrum (DC bin removed → index k is k/T Hz).

    Normalization: for white Gaussian noise the powers are ~exponential
    with unit mean, so thresholds have a direct false-alarm meaning.
    """
    series = np.asarray(timeseries, dtype=np.float64)
    if series.ndim != 1 or len(series) < 16:
        raise SearchError("need a 1-D time series of at least 16 samples")
    series = series - series.mean()
    spectrum = np.abs(np.fft.rfft(series)) ** 2
    spectrum = spectrum[1:]  # drop DC
    # Robust noise normalization: the median of a unit-mean exponential is
    # ln 2, so dividing by median/ln2 restores unit mean under noise while
    # ignoring bright signal bins.
    median = np.median(spectrum)
    if median <= 0:
        raise SearchError("degenerate spectrum (zero median power)")
    return spectrum / (median / np.log(2.0))


def harmonic_sum(spectrum: np.ndarray, n_harmonics: int) -> np.ndarray:
    """Sum the spectrum with its h-fold compressed copies.

    Element ``k`` of the result is ``sum_{h=1..n} spectrum[h*(k+1)-1]``
    (power at the h-th harmonic of frequency bin k), truncated where
    harmonics fall off the end.
    """
    if n_harmonics < 1:
        raise SearchError("need at least one harmonic")
    n_bins = len(spectrum) // n_harmonics
    if n_bins < 1:
        raise SearchError("spectrum too short for this many harmonics")
    total = np.zeros(n_bins, dtype=np.float64)
    base = np.arange(1, n_bins + 1)
    for harmonic in range(1, n_harmonics + 1):
        total += spectrum[harmonic * base - 1]
    return total


def summed_snr(summed: np.ndarray, n_harmonics: int) -> np.ndarray:
    """Convert harmonic-summed powers to an equivalent Gaussian S/N.

    Under noise the sum of n unit-mean exponentials has mean n and
    variance n; (x - n)/sqrt(n) is the standard detection statistic.
    """
    return (summed - n_harmonics) / np.sqrt(n_harmonics)


@dataclass(frozen=True)
class FourierCandidate:
    """One above-threshold periodicity detection."""

    freq_hz: float
    period_s: float
    snr: float
    n_harmonics: int
    dm: float
    accel_ms2: float = 0.0  # trial acceleration the series was resampled at
    pointing_id: int = -1
    beam: int = -1


def search_spectrum(
    timeseries: np.ndarray,
    tsamp_s: float,
    dm: float,
    snr_threshold: float = 6.0,
    harmonics: Sequence[int] = DEFAULT_HARMONICS,
    min_freq_hz: float = 1.0,
    accel_ms2: float = 0.0,
    pointing_id: int = -1,
    beam: int = -1,
) -> List[FourierCandidate]:
    """Threshold test over all harmonic folds of one time series.

    Each spectral bin keeps its best S/N over the harmonic ladder; bins
    beating the threshold (above ``min_freq_hz``, to dodge red noise and
    the 60 Hz comb's DC-side clutter) become candidates.
    """
    if tsamp_s <= 0:
        raise SearchError("sampling time must be positive")
    spectrum = power_spectrum(timeseries)
    total_time = len(timeseries) * tsamp_s
    candidates: List[FourierCandidate] = []
    best: dict[int, Tuple[float, int]] = {}
    for n_harmonics in harmonics:
        if n_harmonics > len(spectrum):
            continue
        summed = harmonic_sum(spectrum, n_harmonics)
        snrs = summed_snr(summed, n_harmonics)
        for bin_index in np.flatnonzero(snrs >= snr_threshold):
            snr = float(snrs[bin_index])
            current = best.get(int(bin_index))
            if current is None or snr > current[0]:
                best[int(bin_index)] = (snr, n_harmonics)
    for bin_index, (snr, n_harmonics) in best.items():
        freq = (bin_index + 1) / total_time
        if freq < min_freq_hz:
            continue
        candidates.append(
            FourierCandidate(
                freq_hz=freq,
                period_s=1.0 / freq,
                snr=snr,
                n_harmonics=n_harmonics,
                dm=dm,
                accel_ms2=accel_ms2,
                pointing_id=pointing_id,
                beam=beam,
            )
        )
    candidates.sort(key=lambda c: -c.snr)
    return candidates


def search_dm_block(
    block: np.ndarray,
    dm_trials: Sequence[float],
    tsamp_s: float,
    snr_threshold: float = 6.0,
    harmonics: Sequence[int] = DEFAULT_HARMONICS,
    min_freq_hz: float = 1.0,
    pointing_id: int = -1,
    beam: int = -1,
) -> List[FourierCandidate]:
    """Search every trial of a dedispersed block, batched.

    One rfft over the whole block, one harmonic-summed S/N ladder per
    fold depth, one threshold pass — instead of ``n_trials`` independent
    spectra.  The candidate list (values, insertion order, sort order) is
    exactly what :func:`search_dm_block_reference` produces: spectra and
    S/N ladders are per-row reductions that match the 1-D calls bitwise,
    threshold hits are visited in the same (row, ascending-bin) order the
    naive loop uses, and the final sort is stable in both paths.
    """
    block = np.asarray(block)
    if block.ndim != 2 or block.shape[0] != len(dm_trials):
        raise SearchError("block rows must match DM trials")
    if tsamp_s <= 0:
        raise SearchError("sampling time must be positive")
    try:
        spectra = batched_power_spectra(block)
    except KernelError as exc:
        raise SearchError(str(exc)) from exc
    n_rows = block.shape[0]
    total_time = block.shape[1] * tsamp_s
    # Best (snr, n_harmonics) per (row, bin), filled in ladder order like
    # search_spectrum's `best` dict — including its strict-> update rule.
    best: List[dict] = [{} for _ in range(n_rows)]
    for n_harmonics in harmonics:
        if n_harmonics > spectra.shape[1]:
            continue
        snrs = harmonic_snr_block(spectra, n_harmonics)
        for row, (bins, row_snrs) in enumerate(threshold_hits(snrs, snr_threshold)):
            row_best = best[row]
            for bin_index, snr in zip(bins.tolist(), row_snrs.tolist()):
                current = row_best.get(bin_index)
                if current is None or snr > current[0]:
                    row_best[bin_index] = (snr, n_harmonics)
    candidates: List[FourierCandidate] = []
    for row, dm in enumerate(dm_trials):
        row_candidates: List[FourierCandidate] = []
        for bin_index, (snr, n_harmonics) in best[row].items():
            freq = (bin_index + 1) / total_time
            if freq < min_freq_hz:
                continue
            row_candidates.append(
                FourierCandidate(
                    freq_hz=freq,
                    period_s=1.0 / freq,
                    snr=snr,
                    n_harmonics=n_harmonics,
                    dm=dm,
                    pointing_id=pointing_id,
                    beam=beam,
                )
            )
        # Mirror the per-spectrum sort search_spectrum performs before the
        # global one; both sorts are stable, so ties land identically.
        row_candidates.sort(key=lambda c: -c.snr)
        candidates.extend(row_candidates)
    candidates.sort(key=lambda c: -c.snr)
    return candidates


def search_dm_block_reference(
    block: np.ndarray,
    dm_trials: Sequence[float],
    tsamp_s: float,
    snr_threshold: float = 6.0,
    harmonics: Sequence[int] = DEFAULT_HARMONICS,
    min_freq_hz: float = 1.0,
    pointing_id: int = -1,
    beam: int = -1,
) -> List[FourierCandidate]:
    """The naive row-by-row loop :func:`search_dm_block` replaces.

    Retained as the equivalence oracle and the benchmark baseline.
    """
    if block.shape[0] != len(dm_trials):
        raise SearchError("block rows must match DM trials")
    candidates: List[FourierCandidate] = []
    for row, dm in enumerate(dm_trials):
        candidates.extend(
            search_spectrum(
                block[row],
                tsamp_s,
                dm,
                snr_threshold=snr_threshold,
                harmonics=harmonics,
                min_freq_hz=min_freq_hz,
                pointing_id=pointing_id,
                beam=beam,
            )
        )
    candidates.sort(key=lambda c: -c.snr)
    return candidates
