"""The Web-based survey console.

"The database is accessed through a Web-based server and will provide the
tools for meta-analyses.  It currently supports interactive groupings of
candidate signals, tests for correlation or uniqueness of the candidates,
and generation of appropriate plots [...] Eventually, the entire
processing pipeline will be controllable from the Web-based system."

:class:`SurveyConsole` is that controller: it launches pipeline runs,
serves interactive candidate groupings and uniqueness/correlation tests
over the live database, and generates plot-ready data (folded profiles,
DM curves) for any candidate.  `publish_services` exposes the whole thing
through the grid service registry.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.arecibo.dedisperse import DMGrid, dedisperse
from repro.arecibo.folding import fold
from repro.arecibo.metaanalysis import CandidateDatabase
from repro.arecibo.pipeline import (
    AreciboPipelineConfig,
    AreciboPipelineReport,
    run_arecibo_pipeline,
)
from repro.arecibo.rfi import clean_filterbank
from repro.arecibo.telescope import ObservationSimulator
from repro.core.errors import SearchError
from repro.grid.services import ServiceRegistry

_run_counter = itertools.count(1)


@dataclass
class CandidateGroup:
    """An interactive grouping of candidate signals by frequency."""

    freq_hz: float
    members: List[dict] = field(default_factory=list)

    @property
    def pointings(self) -> List[int]:
        return sorted({member["pointing_id"] for member in self.members})

    @property
    def is_unique(self) -> bool:
        """The uniqueness test: one sky position only."""
        return len(self.pointings) == 1

    @property
    def best(self) -> dict:
        return max(self.members, key=lambda member: member["snr"])


class SurveyConsole:
    """Web-facade over pipeline runs and the candidate database."""

    def __init__(self, workdir: Union[str, Path]):
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self._runs: Dict[str, AreciboPipelineReport] = {}

    # -- pipeline control ------------------------------------------------- #
    def launch_run(self, config: Optional[AreciboPipelineConfig] = None) -> str:
        """Run the whole Figure-1 pipeline; returns a run id."""
        run_id = f"run-{next(_run_counter):04d}"
        report = run_arecibo_pipeline(self.workdir / run_id, config)
        self._runs[run_id] = report
        return run_id

    def runs(self) -> List[str]:
        return sorted(self._runs)

    def report(self, run_id: str) -> AreciboPipelineReport:
        try:
            return self._runs[run_id]
        except KeyError:
            raise SearchError(f"no survey run {run_id!r}") from None

    def _database(self, run_id: str) -> CandidateDatabase:
        self.report(run_id)  # validates
        return CandidateDatabase(self.workdir / run_id / "candidates.db")

    # -- interactive meta-analysis tools ------------------------------------ #
    def group_candidates(
        self, run_id: str, freq_tolerance: float = 0.01,
        classification: Optional[str] = None,
    ) -> List[CandidateGroup]:
        """Interactive grouping of candidate signals by frequency."""
        database = self._database(run_id)
        try:
            rows = [dict(r) for r in database.strongest(
                limit=1_000_000, classification=classification)]
        finally:
            database.close()
        rows.sort(key=lambda row: row["freq_hz"])
        groups: List[CandidateGroup] = []
        for row in rows:
            if groups and (
                row["freq_hz"] - groups[-1].freq_hz
                <= freq_tolerance * row["freq_hz"]
            ):
                groups[-1].members.append(row)
            else:
                groups.append(CandidateGroup(freq_hz=row["freq_hz"], members=[row]))
        groups.sort(key=lambda group: -group.best["snr"])
        return groups

    def uniqueness_test(self, run_id: str, freq_hz: float,
                        freq_tolerance: float = 0.01) -> dict:
        """Is this signal unique on the sky, or widespread (terrestrial)?"""
        groups = self.group_candidates(run_id, freq_tolerance)
        for group in groups:
            if abs(group.freq_hz - freq_hz) <= freq_tolerance * freq_hz:
                return {
                    "freq_hz": group.freq_hz,
                    "pointings": group.pointings,
                    "unique": group.is_unique,
                    "verdict": "astrophysical-like" if group.is_unique
                    else "terrestrial-like",
                }
        raise SearchError(f"run {run_id}: no candidate group near {freq_hz} Hz")

    def correlation_test(self, run_id: str) -> List[dict]:
        """Period correlations across pointings — recurring frequencies."""
        groups = self.group_candidates(run_id)
        return [
            {
                "freq_hz": group.freq_hz,
                "pointings": group.pointings,
                "members": len(group.members),
                "max_snr": group.best["snr"],
            }
            for group in groups
            if len(group.pointings) > 1
        ]

    # -- plot generation ------------------------------------------------------ #
    def plot_data(self, run_id: str, pointing_id: int, beam: int,
                  period_s: float, dm: float, n_bins: int = 32) -> dict:
        """Plot-ready arrays for one candidate: folded profile + DM curve.

        This regenerates the candidate's diagnostics from the archived raw
        data — the "data diagnostics and plots" the database serves.
        """
        report = self.report(run_id)
        config = report.config
        pointing = next(
            (p for p in report.pointings if p.pointing_id == pointing_id), None
        )
        if pointing is None:
            raise SearchError(f"run {run_id}: no pointing {pointing_id}")
        beams = ObservationSimulator(config.observation).observe(
            pointing, seed=config.seed + pointing_id
        )
        if not 0 <= beam < len(beams):
            raise SearchError(f"no beam {beam}")
        cleaned, _ = clean_filterbank(beams[beam], rng=np.random.default_rng(1))

        profile = fold(
            dedisperse(cleaned, dm), cleaned.tsamp_s, period_s, n_bins=n_bins
        )
        grid = DMGrid.linear(0.0, max(2 * dm, 20.0), 24)
        dm_curve = []
        for trial in grid.trials:
            series = dedisperse(cleaned, trial)
            dm_curve.append(fold(series, cleaned.tsamp_s, period_s,
                                 n_bins=n_bins).snr())
        return {
            "phase": (np.arange(profile.n_bins) / profile.n_bins).tolist(),
            "profile": profile.profile.tolist(),
            "profile_snr": profile.snr(),
            "dm_trials": list(grid.trials),
            "dm_snr_curve": dm_curve,
        }


def publish_services(console: SurveyConsole,
                     registry: ServiceRegistry) -> ServiceRegistry:
    """Expose the console through the grid service registry."""
    registry.publish("arecibo", "launch_run", console.launch_run,
                     description="run the Figure-1 pipeline")
    registry.publish("arecibo", "runs", console.runs,
                     description="list survey runs")
    registry.publish("arecibo", "group_candidates", console.group_candidates,
                     description="interactive candidate grouping")
    registry.publish("arecibo", "uniqueness_test", console.uniqueness_test,
                     description="sky-uniqueness test")
    registry.publish("arecibo", "correlation_test", console.correlation_test,
                     description="cross-pointing correlations")
    registry.publish("arecibo", "plot_data", console.plot_data,
                     description="folded profile + DM curve for plotting")
    return registry
