"""Quality thresholds for the WebLab crawl-and-serve channel.

What "healthy" means for a serving tier: the read cache absorbs most
lookups (a cold cache pushes every request to the slow store and the
latency tail explodes), admission control rejects almost nothing, and
injected faults stay within the chaos budget.  The serving flows get
their channel attribution from running trace replay under
``bus.span("weblab-serving")`` — see ``examples/ops_console.py``.
"""

from __future__ import annotations

from repro.ops.dashboard import MetricSpec, QualitySpec

#: Threshold bands for ``weblab*`` flows.
WEBLAB_QUALITY = QualitySpec(
    channel="weblab",
    flow_pattern="weblab*",
    metrics=(
        MetricSpec(
            metric="cache_hit_rate",
            label="read-cache hit rate",
            unit="%",
            higher_is_better=True,
            green=0.90,
            yellow=0.50,
        ),
        MetricSpec(
            metric="rejected_rate",
            label="admission-reject rate",
            unit="%",
            higher_is_better=False,
            green=0.01,
            yellow=0.10,
        ),
        MetricSpec(
            metric="faults",
            label="injected faults",
            higher_is_better=False,
            green=0.0,
            yellow=5.0,
        ),
    ),
)


def quality_spec() -> QualitySpec:
    """The channel spec :func:`repro.ops.default_quality_specs` mounts."""
    return WEBLAB_QUALITY


__all__ = ("WEBLAB_QUALITY", "quality_spec")
