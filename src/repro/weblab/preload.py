"""The preload subsystem.

"The preload subsystem takes the incoming ARC and DAT files, uncompresses
them, parses them to extract relevant information, and generates two types
of output files: metadata for loading into a relational database and the
actual content of the Web pages to be stored separately.  The design of
the subsystem does not require the corresponding ARC and DAT files to be
processed together."

Accordingly, :meth:`PreloadSubsystem.process_arc` and
:meth:`~PreloadSubsystem.process_dat` are independent; :meth:`run` drives
any mix of files through a parsing thread pool, batching database loads.
``batch_size`` and ``workers`` are the tunables the paper earmarks for
"extensive benchmarking" (experiment C9 sweeps them).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import DuplicateCrawlError, WebLabError
from repro.core.faults import FaultInjector, delay_seconds
from repro.core.telemetry import MetricsRegistry
from repro.core.units import DataSize, Duration, Rate
from repro.weblab.arcformat import read_arc
from repro.weblab.datformat import read_dat
from repro.weblab.metadb import WebLabDatabase
from repro.weblab.pagestore import PageStore


@dataclass
class PreloadStats:
    """Throughput accounting for one preload run."""

    arc_files: int = 0
    dat_files: int = 0
    pages: int = 0
    links: int = 0
    compressed_bytes: float = 0.0
    content_bytes: float = 0.0
    elapsed_s: float = 0.0

    @property
    def throughput(self) -> Rate:
        if self.elapsed_s <= 0:
            return Rate.zero()
        return Rate.from_bytes_per_second(self.content_bytes / self.elapsed_s)

    @property
    def projected_daily(self) -> DataSize:
        """Content volume one day of this throughput would preload."""
        return self.throughput * Duration.days(1)

    @classmethod
    def zero(cls) -> "PreloadStats":
        """An explicit all-zero stats record (e.g. a culled batch)."""
        return cls()

    @classmethod
    def from_registry(cls, metrics: MetricsRegistry) -> "PreloadStats":
        """Snapshot the lifetime ``preload.*`` instruments of a subsystem."""
        return cls(
            arc_files=int(metrics.value("preload.arc_files")),
            dat_files=int(metrics.value("preload.dat_files")),
            pages=int(metrics.value("preload.pages")),
            links=int(metrics.value("preload.links")),
            compressed_bytes=metrics.value("preload.compressed_bytes"),
            content_bytes=metrics.value("preload.content_bytes"),
            elapsed_s=metrics.value("preload.elapsed_s"),
        )

    def __sub__(self, other: "PreloadStats") -> "PreloadStats":
        """Difference of two snapshots (the per-run view of a busy registry)."""
        return PreloadStats(
            arc_files=self.arc_files - other.arc_files,
            dat_files=self.dat_files - other.dat_files,
            pages=self.pages - other.pages,
            links=self.links - other.links,
            compressed_bytes=self.compressed_bytes - other.compressed_bytes,
            content_bytes=self.content_bytes - other.content_bytes,
            elapsed_s=self.elapsed_s - other.elapsed_s,
        )


@dataclass(frozen=True)
class PreloadConfig:
    """Tunables: database batch size and parser parallelism."""

    batch_size: int = 200
    workers: int = 2

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise WebLabError("batch size must be at least 1")
        if self.workers < 1:
            raise WebLabError("need at least one worker")


class PreloadSubsystem:
    """Parses ARC/DAT files into the metadata DB and the page store."""

    def __init__(
        self,
        database: WebLabDatabase,
        pagestore: PageStore,
        config: Optional[PreloadConfig] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.database = database
        self.pagestore = pagestore
        self.config = config if config is not None else PreloadConfig()
        # The relational load is serialized; parsers run in parallel.
        self._load_lock = threading.Lock()
        self.metrics = MetricsRegistry()
        #: Armed fault injector (or None), consulted once per :meth:`run`
        #: under scope ``"preload"``, target ``"weblab/preload"``.  A
        #: ``"stale"`` fault makes the run serve its previous state — the
        #: batch is skipped (``preload.stale_serves``/``preload.stale_files``
        #: count the degradation) and users keep reading the last loaded
        #: crawl, the WebLab's graceful answer to a preload stall.  A
        #: ``"crash"`` raises before any file is parsed; ``"delay"``
        #: stretches the run's recorded elapsed time.
        self.faults = faults

    @property
    def lifetime_stats(self) -> PreloadStats:
        """Accumulated totals across every run, read from the registry."""
        return PreloadStats.from_registry(self.metrics)

    # -- single-file paths -----------------------------------------------------
    def process_arc(self, path: Union[str, Path], crawl_index: int) -> Tuple[int, float]:
        """One ARC file: content → page store, metadata rows → database.

        Returns (pages loaded, content bytes).
        """
        batch: List[Dict[str, object]] = []
        pages = 0
        content_bytes = 0.0

        def flush() -> None:
            nonlocal batch
            if batch:
                with self._load_lock:
                    self.database.load_page_batch(batch)
                batch = []

        for record in read_arc(path):
            digest = self.pagestore.put(record.content)
            content_bytes += len(record.content)
            domain = record.url.split("/")[2]
            batch.append(
                {
                    "url": record.url,
                    "domain": domain,
                    "tld": domain.rsplit(".", 1)[-1],
                    "crawl_index": crawl_index,
                    "fetched_at": _epoch_of(record.archive_date),
                    "ip": record.ip,
                    "mime": record.content_type,
                    "size_bytes": len(record.content),
                    "content_hash": digest,
                }
            )
            pages += 1
            if len(batch) >= self.config.batch_size:
                flush()
        flush()
        self.metrics.counter("preload.arc_files").inc()
        self.metrics.counter("preload.pages").inc(pages)
        self.metrics.counter("preload.content_bytes").inc(content_bytes)
        self.metrics.counter("preload.compressed_bytes").inc(
            float(Path(path).stat().st_size)
        )
        return pages, content_bytes

    def process_dat(self, path: Union[str, Path], crawl_index: int) -> int:
        """One DAT file: link rows → database.  Returns links loaded."""
        batch: List[Tuple[int, str, str]] = []
        links = 0

        def flush() -> None:
            nonlocal batch
            if batch:
                with self._load_lock:
                    self.database.load_link_batch(batch)
                batch = []

        for record in read_dat(path):
            for target in record.outlinks:
                batch.append((crawl_index, record.url, target))
                links += 1
                if len(batch) >= self.config.batch_size:
                    flush()
        flush()
        self.metrics.counter("preload.dat_files").inc()
        self.metrics.counter("preload.links").inc(links)
        self.metrics.counter("preload.compressed_bytes").inc(
            float(Path(path).stat().st_size)
        )
        return links

    # -- bulk run ---------------------------------------------------------------
    def run(
        self,
        arc_paths: Sequence[Tuple[Union[str, Path], int]],
        dat_paths: Sequence[Tuple[Union[str, Path], int]] = (),
    ) -> PreloadStats:
        """Preload a mixed set of (path, crawl_index) pairs in parallel.

        Returns the stats of *this* run — the delta of the subsystem's
        lifetime registry across the run (see :attr:`lifetime_stats` for
        the running totals).
        """
        injected = (
            self.faults.check("preload", "weblab/preload")
            if self.faults is not None
            else []
        )
        if any(record.kind == "stale" for record in injected):
            # Serve stale: skip this batch entirely; readers keep the
            # previously loaded crawls.  The cull is recorded, not silent.
            self.metrics.counter("preload.stale_serves").inc()
            self.metrics.counter("preload.stale_files").inc(
                len(list(arc_paths)) + len(list(dat_paths))
            )
            return PreloadStats.zero()
        crawl_indexes = {index for _, index in list(arc_paths) + list(dat_paths)}
        for index in sorted(crawl_indexes):
            # Registration is idempotent for matching times; preload callers
            # register real times beforehand when they have them, in which
            # case our placeholder time conflicts — that duplicate is the
            # only error this loop may swallow.
            try:
                self.database.register_crawl(index, float(index))
            except DuplicateCrawlError:
                pass
        before = self.lifetime_stats
        start = time.perf_counter()  # repro: noqa[RPR002] operational counter only
        with ThreadPoolExecutor(max_workers=self.config.workers) as pool:
            arc_futures = [
                pool.submit(self.process_arc, path, index) for path, index in arc_paths
            ]
            dat_futures = [
                pool.submit(self.process_dat, path, index) for path, index in dat_paths
            ]
            for future in arc_futures:
                future.result()
            for future in dat_futures:
                future.result()
        self.metrics.counter("preload.elapsed_s").inc(
            time.perf_counter() - start + delay_seconds(injected)  # repro: noqa[RPR002]
        )
        return self.lifetime_stats - before


def _epoch_of(archive_date: str) -> float:
    """Invert the simplified ARC date rendering to epoch seconds."""
    if len(archive_date) != 14 or not archive_date.isdigit():
        raise WebLabError(f"bad ARC date {archive_date!r}")
    year = int(archive_date[0:4])
    month = int(archive_date[4:6])
    day = int(archive_date[6:8])
    hour = int(archive_date[8:10])
    minute = int(archive_date[10:12])
    second = int(archive_date[12:14])
    days = (year - 1970) * 365 + (month - 1) * 30 + (day - 1)
    return days * 86400.0 + hour * 3600.0 + minute * 60.0 + second
