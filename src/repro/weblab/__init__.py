"""The Cornell WebLab: synthetic evolving web, ARC/DAT formats, preload
subsystem, metadata database, page store, retro browser, subsets and
stratified sampling, web-graph analytics, burst detection, full-text index,
and the web-services facade."""

from repro.weblab.arcformat import ArcRecord, pack_crawl, read_arc, write_arc
from repro.weblab.burst import (
    BurstInterval,
    bursty_terms,
    detect_bursts,
    term_time_series,
)
from repro.weblab.cluster import (
    MEMORY_ACCESS,
    NETWORK_ROUND_TRIP,
    ClusterCost,
    LocalityComparison,
    PartitionedGraph,
    compare_locality,
    single_machine_time,
)
from repro.weblab.datformat import (
    DatRecord,
    pack_crawl_metadata,
    read_dat,
    write_dat,
)
from repro.weblab.export import ExportBundle, export_subset, read_exported_metadata
from repro.weblab.incremental import (
    CrawlDelta,
    WebLabIncrementalReport,
    WebLabWindowReport,
    build_weblab_incremental,
    crawl_deltas,
)
from repro.weblab.focused import FocusedSelection, SelectedPage, select_materials
from repro.weblab.metadb import WebLabDatabase, weblab_schema
from repro.weblab.pagestore import PageStore, content_hash
from repro.weblab.preload import PreloadConfig, PreloadStats, PreloadSubsystem
from repro.weblab.retro import RetroBrowser, RetroPage
from repro.weblab.services import (
    WebLab,
    WebLabBuildReport,
    WebLabServices,
    build_weblab,
)
from repro.weblab.subsets import (
    SubsetCriteria,
    drop_subset,
    extract_subset,
    list_subsets,
    stratified_sample,
)
from repro.weblab.synthweb import (
    BurstSpec,
    CrawlSnapshot,
    PageRecord,
    SyntheticWeb,
    SyntheticWebConfig,
)
from repro.weblab.textindex import SearchHit, TextIndex, build_index, tokenize
from repro.weblab.webgraph import (
    GraphStats,
    TraversalCost,
    bfs_with_cost,
    compute_stats,
    load_web_graph,
    pagerank_with_cost,
)

__all__ = [
    "ArcRecord",
    "pack_crawl",
    "read_arc",
    "write_arc",
    "BurstInterval",
    "bursty_terms",
    "detect_bursts",
    "term_time_series",
    "MEMORY_ACCESS",
    "NETWORK_ROUND_TRIP",
    "ClusterCost",
    "LocalityComparison",
    "PartitionedGraph",
    "compare_locality",
    "single_machine_time",
    "DatRecord",
    "pack_crawl_metadata",
    "read_dat",
    "write_dat",
    "ExportBundle",
    "CrawlDelta",
    "WebLabIncrementalReport",
    "WebLabWindowReport",
    "build_weblab_incremental",
    "crawl_deltas",
    "FocusedSelection",
    "SelectedPage",
    "select_materials",
    "export_subset",
    "read_exported_metadata",
    "WebLabDatabase",
    "weblab_schema",
    "PageStore",
    "content_hash",
    "PreloadConfig",
    "PreloadStats",
    "PreloadSubsystem",
    "RetroBrowser",
    "RetroPage",
    "WebLab",
    "WebLabBuildReport",
    "WebLabServices",
    "build_weblab",
    "SubsetCriteria",
    "drop_subset",
    "extract_subset",
    "list_subsets",
    "stratified_sample",
    "BurstSpec",
    "CrawlSnapshot",
    "PageRecord",
    "SyntheticWeb",
    "SyntheticWebConfig",
    "SearchHit",
    "TextIndex",
    "build_index",
    "tokenize",
    "GraphStats",
    "TraversalCost",
    "bfs_with_cost",
    "compute_stats",
    "load_web_graph",
    "pagerank_with_cost",
]
