"""The WebLab relational metadata database.

"The decision was made to separate link information and metadata about
pages from their content, and store the meta-information in a relational
database on a single high-performance computer."

Tables: ``crawls`` (one per bimonthly pass), ``pages`` (one per url per
crawl, pointing at the page store by content hash), and ``links`` (the Web
graph's edges, per crawl).  Batch loading keeps transactions short; the
tunable batch size is one of the preload parameters the paper says needs
"extensive benchmarking".
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import DuplicateCrawlError
from repro.core.units import DataSize
from repro.db.connection import Database, connect
from repro.db.query import Select
from repro.db.schema import Schema, apply_schema, column


def weblab_schema() -> Schema:
    # v2 added the two *covering* indexes for the hot serving queries
    # (retro page resolution and outlink navigation): they carry every
    # selected column, so sqlite answers from the index b-tree alone and
    # never touches the table — asserted via EXPLAIN QUERY PLAN in
    # tests/weblab/test_serving_cache.py.
    schema = Schema("weblab", version=2)
    schema.table(
        "crawls",
        [
            column("crawl_index", "INTEGER", "PRIMARY KEY"),
            column("crawl_time", "REAL", "NOT NULL"),
            column("page_count", "INTEGER", "NOT NULL DEFAULT 0"),
        ],
    )
    schema.table(
        "pages",
        [
            column("id", "INTEGER", "PRIMARY KEY"),
            column("url", "TEXT", "NOT NULL"),
            column("domain", "TEXT", "NOT NULL"),
            column("tld", "TEXT", "NOT NULL"),
            column("crawl_index", "INTEGER", "NOT NULL REFERENCES crawls(crawl_index)"),
            column("fetched_at", "REAL", "NOT NULL"),
            column("ip", "TEXT", "NOT NULL"),
            column("mime", "TEXT", "NOT NULL"),
            column("size_bytes", "INTEGER", "NOT NULL"),
            column("content_hash", "TEXT", "NOT NULL"),
        ],
        constraints=["UNIQUE(url, crawl_index)"],
        indexes=[
            ("url", "fetched_at"),
            ("domain",),
            ("crawl_index",),
            ("tld",),
            # Covering: page_pointer_as_of reads only these four columns.
            ("url", "fetched_at", "crawl_index", "content_hash"),
        ],
    )
    schema.table(
        "links",
        [
            column("id", "INTEGER", "PRIMARY KEY"),
            column("crawl_index", "INTEGER", "NOT NULL"),
            column("src_url", "TEXT", "NOT NULL"),
            column("dst_url", "TEXT", "NOT NULL"),
        ],
        indexes=[
            ("crawl_index", "src_url"),
            ("crawl_index", "dst_url"),
            # Covering: the outlink query reads only these columns.  ``id``
            # sits before ``dst_url`` so index order is insertion order —
            # the query's ORDER BY id costs no sort step.
            ("crawl_index", "src_url", "id", "dst_url"),
        ],
    )
    return schema


class WebLabDatabase:
    """Metadata + link store over the relational layer."""

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.db: Database = connect(path)
        apply_schema(self.db, weblab_schema())

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "WebLabDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- loading ---------------------------------------------------------------
    def register_crawl(self, crawl_index: int, crawl_time: float) -> None:
        existing = self.db.query_one(
            "SELECT crawl_time FROM crawls WHERE crawl_index = ?", (crawl_index,)
        )
        if existing is not None:
            if existing["crawl_time"] != crawl_time:
                raise DuplicateCrawlError(
                    f"crawl {crawl_index} already registered with "
                    f"crawl_time {existing['crawl_time']!r} (got {crawl_time!r})"
                )
            return
        self.db.insert("crawls", crawl_index=crawl_index, crawl_time=crawl_time)

    def load_page_batch(self, rows: Sequence[Dict[str, object]]) -> int:
        """Load one metadata batch (one short transaction)."""
        with self.db.transaction():
            for row in rows:
                self.db.insert("pages", **row)
            if rows:
                self.db.execute(
                    "UPDATE crawls SET page_count = page_count + ? "
                    "WHERE crawl_index = ?",
                    (len(rows), rows[0]["crawl_index"]),
                )
        return len(rows)

    def load_link_batch(self, rows: Sequence[Tuple[int, str, str]]) -> int:
        with self.db.transaction():
            for crawl_index, src_url, dst_url in rows:
                self.db.insert(
                    "links", crawl_index=crawl_index, src_url=src_url, dst_url=dst_url
                )
        return len(rows)

    # -- queries ---------------------------------------------------------------
    def crawl_indexes(self) -> List[int]:
        return [
            row["crawl_index"]
            for row in self.db.query("SELECT crawl_index FROM crawls ORDER BY crawl_index")
        ]

    def page_count(self, crawl_index: Optional[int] = None) -> int:
        if crawl_index is None:
            return self.db.count("pages")
        return self.db.count("pages", "crawl_index = ?", (crawl_index,))

    def link_count(self, crawl_index: Optional[int] = None) -> int:
        if crawl_index is None:
            return self.db.count("links")
        return self.db.count("links", "crawl_index = ?", (crawl_index,))

    def page_as_of(self, url: str, as_of: float):
        """Most recent capture of ``url`` at or before ``as_of`` (or None)."""
        return (
            Select("pages")
            .where("url = ?", url)
            .where("fetched_at <= ?", as_of)
            .order_by("fetched_at DESC")
            .limit(1)
            .run_one(self.db)
        )

    def page_pointer_as_of(self, url: str, as_of: float) -> Optional[Dict[str, object]]:
        """The serving-path resolution: just the columns the retro browser
        needs, shaped so the covering index answers the query alone."""
        row = self.db.query_one(
            "SELECT url, fetched_at, crawl_index, content_hash FROM pages "
            "WHERE url = ? AND fetched_at <= ? ORDER BY fetched_at DESC LIMIT 1",
            (url, as_of),
        )
        if row is None:
            return None
        return {
            "url": row["url"],
            "fetched_at": row["fetched_at"],
            "crawl_index": row["crawl_index"],
            "content_hash": row["content_hash"],
        }

    def outlinks(self, crawl_index: int, src_url: str) -> List[str]:
        """Destination URLs of one page in one crawl, in load order
        (index-only query; the ORDER BY rides the covering index)."""
        rows = self.db.query(
            "SELECT dst_url FROM links WHERE crawl_index = ? AND src_url = ? "
            "ORDER BY id",
            (crawl_index, src_url),
        )
        return [row["dst_url"] for row in rows]

    def captures_of(self, url: str) -> List[float]:
        rows = self.db.query(
            "SELECT fetched_at FROM pages WHERE url = ? ORDER BY fetched_at", (url,)
        )
        return [row["fetched_at"] for row in rows]

    def links_of_crawl(self, crawl_index: int) -> List[Tuple[str, str]]:
        rows = self.db.query(
            "SELECT src_url, dst_url FROM links WHERE crawl_index = ?", (crawl_index,)
        )
        return [(row["src_url"], row["dst_url"]) for row in rows]

    def domains(self) -> List[str]:
        return [
            row["domain"]
            for row in self.db.query("SELECT DISTINCT domain FROM pages ORDER BY domain")
        ]

    def total_content_size(self) -> DataSize:
        value = self.db.query_value("SELECT coalesce(sum(size_bytes), 0) FROM pages")
        return DataSize.from_bytes(float(value))
