"""Synthetic evolving web.

Stand-in for the Internet Archive crawls: a web of domains and pages that
grows by preferential attachment, whose page text is drawn from topic
vocabularies, and which is snapshotted "every two months" into crawls.
Between crawls pages are added, modified, and deleted, and configured
topics *burst* — their terms spike in pages created during the burst
window — giving the burst-detection experiment known ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.errors import WebLabError

_COMMON_WORDS = (
    "the of and to in a is that for it on page site news home about links "
    "contact research web study report data people time year work new"
).split()

_TOPIC_VOCABULARIES = {
    "astronomy": "pulsar telescope survey radio galaxy neutron arecibo sky".split(),
    "politics": "election campaign senate vote policy debate congress".split(),
    "sports": "game season team score playoff coach league final".split(),
    "technology": "software internet server network code browser protocol".split(),
    "weblog": "blog post comment diary entry journal feed subscribe".split(),
}


@dataclass(frozen=True)
class BurstSpec:
    """Ground truth for one topic burst."""

    topic: str
    start_crawl: int
    end_crawl: int
    intensity: float = 4.0

    def active(self, crawl_index: int) -> bool:
        return self.start_crawl <= crawl_index <= self.end_crawl


@dataclass
class PageRecord:
    """One crawled page."""

    url: str
    ip: str
    fetched_at: float       # epoch seconds
    content: str
    outlinks: Tuple[str, ...]
    mime: str = "text/html"

    @property
    def domain(self) -> str:
        return self.url.split("/")[2]

    @property
    def size_bytes(self) -> int:
        return len(self.content.encode("utf-8"))


@dataclass
class CrawlSnapshot:
    """One bimonthly crawl: the pages fetched in that pass."""

    crawl_index: int
    crawl_time: float
    pages: List[PageRecord]

    @property
    def page_count(self) -> int:
        return len(self.pages)

    def urls(self) -> Set[str]:
        return {page.url for page in self.pages}

    def documents(self) -> List[Tuple[str, str]]:
        """(url, content) pairs in fetch order — the shape the text-index
        bulk build (:meth:`TextIndex.add_many`) consumes."""
        return [(page.url, page.content) for page in self.pages]


@dataclass
class SyntheticWebConfig:
    """Growth and content parameters."""

    n_domains: int = 12
    initial_pages: int = 60
    new_pages_per_crawl: int = 30
    modify_fraction: float = 0.2
    delete_fraction: float = 0.05
    links_per_page: int = 4
    words_per_page: int = 120
    # Topical assortativity: how much more likely a page is to link to a
    # same-topic page than to a random one (the real web's communities).
    topic_affinity: float = 4.0
    crawl_interval_days: float = 61.0  # "every two months"
    start_epoch: float = 820454400.0   # 1996-01-01, the archive's first crawl
    bursts: Tuple[BurstSpec, ...] = (
        BurstSpec(topic="weblog", start_crawl=3, end_crawl=5, intensity=5.0),
    )
    seed: int = 0


class SyntheticWeb:
    """Generates a sequence of crawls with preferential-attachment links."""

    def __init__(self, config: Optional[SyntheticWebConfig] = None):
        self.config = config if config is not None else SyntheticWebConfig()
        if self.config.n_domains < 1 or self.config.initial_pages < 2:
            raise WebLabError("need at least one domain and two pages")
        self._rng = random.Random(self.config.seed)
        self._domains = [
            f"site{index:02d}.{'edu' if index % 3 == 0 else 'com'}"
            for index in range(self.config.n_domains)
        ]
        self._pages: Dict[str, PageRecord] = {}
        self._inlink_counts: Dict[str, int] = {}
        self._page_counter = 0
        self._page_topics: Dict[str, str] = {}

    # -- internals ---------------------------------------------------------
    def _new_url(self) -> str:
        domain = self._rng.choice(self._domains)
        self._page_counter += 1
        return f"http://{domain}/page{self._page_counter:05d}.html"

    def _pick_topic(self, crawl_index: int) -> str:
        topics = list(_TOPIC_VOCABULARIES)
        weights = []
        for topic in topics:
            weight = 1.0
            for burst in self.config.bursts:
                if burst.topic == topic and burst.active(crawl_index):
                    weight *= burst.intensity
            weights.append(weight)
        return self._rng.choices(topics, weights=weights, k=1)[0]

    def _make_content(self, topic: str) -> str:
        words = []
        vocabulary = _TOPIC_VOCABULARIES[topic]
        for _ in range(self.config.words_per_page):
            if self._rng.random() < 0.35:
                words.append(self._rng.choice(vocabulary))
            else:
                words.append(self._rng.choice(_COMMON_WORDS))
        return " ".join(words)

    def _pick_link_targets(
        self, count: int, exclude: str, topic: Optional[str] = None
    ) -> Tuple[str, ...]:
        """Preferential attachment with topical assortativity:
        probability ~ (inlinks + 1) x affinity(topic match)."""
        candidates = [url for url in self._pages if url != exclude]
        if not candidates:
            return ()
        weights = [
            (self._inlink_counts.get(url, 0) + 1)
            * (
                self.config.topic_affinity
                if topic is not None and self._page_topics.get(url) == topic
                else 1.0
            )
            for url in candidates
        ]
        targets: List[str] = []
        for _ in range(min(count, len(candidates))):
            choice = self._rng.choices(candidates, weights=weights, k=1)[0]
            if choice not in targets:
                targets.append(choice)
                self._inlink_counts[choice] = self._inlink_counts.get(choice, 0) + 1
        return tuple(targets)

    def _create_page(self, crawl_index: int, crawl_time: float) -> PageRecord:
        url = self._new_url()
        topic = self._pick_topic(crawl_index)
        self._page_topics[url] = topic
        page = PageRecord(
            url=url,
            ip=f"10.{self._rng.randrange(256)}.{self._rng.randrange(256)}."
            f"{self._rng.randrange(1, 255)}",
            fetched_at=crawl_time,
            content=self._make_content(topic),
            outlinks=self._pick_link_targets(
                self.config.links_per_page, exclude=url, topic=topic
            ),
        )
        self._pages[url] = page
        self._inlink_counts.setdefault(url, 0)
        return page

    # -- public API ----------------------------------------------------------
    def topic_of(self, url: str) -> str:
        try:
            return self._page_topics[url]
        except KeyError:
            raise WebLabError(f"unknown page {url!r}") from None

    def generate_crawls(self, n_crawls: int) -> List[CrawlSnapshot]:
        """Simulate ``n_crawls`` bimonthly passes over the evolving web."""
        if n_crawls < 1:
            raise WebLabError("need at least one crawl")
        crawls: List[CrawlSnapshot] = []
        interval = self.config.crawl_interval_days * 86400.0
        for crawl_index in range(n_crawls):
            crawl_time = self.config.start_epoch + crawl_index * interval
            if crawl_index == 0:
                for _ in range(self.config.initial_pages):
                    self._create_page(crawl_index, crawl_time)
            else:
                # Evolution: delete, modify, add.
                urls = list(self._pages)
                n_delete = int(len(urls) * self.config.delete_fraction)
                for url in self._rng.sample(urls, n_delete):
                    del self._pages[url]
                survivors = list(self._pages)
                n_modify = int(len(survivors) * self.config.modify_fraction)
                for url in self._rng.sample(survivors, n_modify):
                    old = self._pages[url]
                    # Modified pages drift toward what the web is talking
                    # about right now — during a burst window, that is the
                    # bursting topic.
                    topic = self._pick_topic(crawl_index)
                    self._page_topics[url] = topic
                    self._pages[url] = PageRecord(
                        url=old.url,
                        ip=old.ip,
                        fetched_at=crawl_time,
                        content=self._make_content(topic),
                        outlinks=old.outlinks,
                    )
                for _ in range(self.config.new_pages_per_crawl):
                    self._create_page(crawl_index, crawl_time)
            # The crawl fetches every live page, stamped at this pass.
            snapshot_pages = [
                PageRecord(
                    url=page.url,
                    ip=page.ip,
                    fetched_at=crawl_time,
                    content=page.content,
                    outlinks=page.outlinks,
                )
                for page in self._pages.values()
            ]
            snapshot_pages.sort(key=lambda page: page.url)
            crawls.append(
                CrawlSnapshot(
                    crawl_index=crawl_index,
                    crawl_time=crawl_time,
                    pages=snapshot_pages,
                )
            )
        return crawls
