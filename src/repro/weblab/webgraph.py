"""Web-graph extraction and analysis on a single large-memory machine.

"Researchers studying the Web graph typically study the links among
billions of pages.  It is much easier to study the graph if it is loaded
into the memory of a single large computer than distributed across many
smaller ones, because network latency would be a serious concern."

This module is the single-machine side: load a crawl's links into memory
(networkx) and run the standard analyses — degree distributions, component
structure, PageRank, BFS — while counting edge traversals, so the cluster
model in :mod:`repro.weblab.cluster` can price the identical work under
per-hop network latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.errors import WebLabError
from repro.weblab.metadb import WebLabDatabase


@dataclass
class GraphStats:
    """The summary numbers researchers extract from a crawl's graph."""

    nodes: int
    edges: int
    mean_out_degree: float
    max_in_degree: int
    weakly_connected_components: int
    largest_component_fraction: float
    top_pages: List[Tuple[str, float]] = field(default_factory=list)  # by PageRank


def load_web_graph(database: WebLabDatabase, crawl_index: int) -> nx.DiGraph:
    """Build the directed link graph of one crawl in memory."""
    edges = database.links_of_crawl(crawl_index)
    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    # Pages with no links still belong to the graph.
    for row in database.db.query(
        "SELECT url FROM pages WHERE crawl_index = ?", (crawl_index,)
    ):
        graph.add_node(row["url"])
    if graph.number_of_nodes() == 0:
        raise WebLabError(f"crawl {crawl_index} has no pages")
    return graph


def compute_stats(graph: nx.DiGraph, top_n: int = 5) -> GraphStats:
    """Degree structure, components, and PageRank in one pass."""
    nodes = graph.number_of_nodes()
    edges = graph.number_of_edges()
    in_degrees = dict(graph.in_degree())
    components = list(nx.weakly_connected_components(graph))
    largest = max((len(c) for c in components), default=0)
    ranks = nx.pagerank(graph, alpha=0.85)
    top_pages = sorted(ranks.items(), key=lambda kv: -kv[1])[:top_n]
    return GraphStats(
        nodes=nodes,
        edges=edges,
        mean_out_degree=edges / nodes if nodes else 0.0,
        max_in_degree=max(in_degrees.values(), default=0),
        weakly_connected_components=len(components),
        largest_component_fraction=largest / nodes if nodes else 0.0,
        top_pages=[(url, float(rank)) for url, rank in top_pages],
    )


@dataclass
class TraversalCost:
    """Edge-traversal accounting for the latency comparison."""

    edge_visits: int = 0

    def charge(self, count: int = 1) -> None:
        self.edge_visits += count


def bfs_with_cost(
    graph: nx.DiGraph, source: str, cost: Optional[TraversalCost] = None
) -> Dict[str, int]:
    """BFS distances from ``source``, counting every edge traversal."""
    if source not in graph:
        raise WebLabError(f"no page {source!r} in graph")
    cost = cost if cost is not None else TraversalCost()
    distances = {source: 0}
    frontier = [source]
    while frontier:
        next_frontier: List[str] = []
        for node in frontier:
            for neighbor in graph.successors(node):
                cost.charge()
                if neighbor not in distances:
                    distances[neighbor] = distances[node] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return distances


def pagerank_with_cost(
    graph: nx.DiGraph,
    iterations: int = 20,
    damping: float = 0.85,
    cost: Optional[TraversalCost] = None,
) -> Dict[str, float]:
    """Power-iteration PageRank, counting edge traversals per sweep."""
    if graph.number_of_nodes() == 0:
        raise WebLabError("empty graph")
    cost = cost if cost is not None else TraversalCost()
    nodes = list(graph.nodes())
    n = len(nodes)
    rank = {node: 1.0 / n for node in nodes}
    for _ in range(iterations):
        new_rank = {node: (1.0 - damping) / n for node in nodes}
        dangling = 0.0
        for node in nodes:
            out_degree = graph.out_degree(node)
            if out_degree == 0:
                dangling += rank[node]
                continue
            share = damping * rank[node] / out_degree
            for neighbor in graph.successors(node):
                cost.charge()
                new_rank[neighbor] += share
        if dangling:
            for node in nodes:
                new_rank[node] += damping * dangling / n
        rank = new_rank
    return rank
