"""Inverted full-text index.

"Of the specific tools that researchers want, full text indexes are highly
important, but need not cover the entire Web."  The index is built over a
*subset* (a crawl, a domain slice), exactly as the paper anticipates, and
supports conjunctive queries with tf scoring.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.errors import WebLabError

_TOKEN_RE = re.compile(r"[a-z0-9]+")

_STOPWORDS = frozenset(
    "the of and to in a is that for it on as with was at by an be this are".split()
)


def tokenize(text: str) -> List[str]:
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True)
class SearchHit:
    url: str
    score: float


class TextIndex:
    """An in-memory inverted index over (url, text) documents."""

    def __init__(self, stopwords: frozenset = _STOPWORDS):
        self._postings: Dict[str, Dict[str, int]] = {}
        self._doc_lengths: Dict[str, int] = {}
        self._stopwords = stopwords

    def __len__(self) -> int:
        return len(self._doc_lengths)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def add(self, url: str, text: str) -> None:
        """Index one document; re-adding a URL replaces its old content."""
        if url in self._doc_lengths:
            self.remove(url)
        tokens = [t for t in tokenize(text) if t not in self._stopwords]
        self._doc_lengths[url] = len(tokens)
        for token, count in Counter(tokens).items():
            self._postings.setdefault(token, {})[url] = count

    def remove(self, url: str) -> None:
        if url not in self._doc_lengths:
            raise WebLabError(f"index has no document {url!r}")
        del self._doc_lengths[url]
        empty_terms = []
        for term, postings in self._postings.items():
            postings.pop(url, None)
            if not postings:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term.lower(), {}))

    def search(self, query: str, limit: int = 10) -> List[SearchHit]:
        """Conjunctive (AND) search, scored by summed term frequency
        normalized by document length."""
        terms = [t for t in tokenize(query) if t not in self._stopwords]
        if not terms:
            raise WebLabError("query has no searchable terms")
        candidate_sets: List[Set[str]] = []
        for term in terms:
            postings = self._postings.get(term)
            if not postings:
                return []
            candidate_sets.append(set(postings))
        candidates = set.intersection(*candidate_sets)
        hits = []
        for url in candidates:
            length = max(self._doc_lengths[url], 1)
            score = sum(self._postings[term][url] for term in terms) / length
            hits.append(SearchHit(url=url, score=score))
        hits.sort(key=lambda hit: (-hit.score, hit.url))
        return hits[:limit]


def build_index(documents: Iterable[Tuple[str, str]]) -> TextIndex:
    """Index (url, text) pairs."""
    index = TextIndex()
    for url, text in documents:
        index.add(url, text)
    return index
