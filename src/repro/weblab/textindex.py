"""Inverted full-text index.

"Of the specific tools that researchers want, full text indexes are highly
important, but need not cover the entire Web."  The index is built over a
*subset* (a crawl, a domain slice), exactly as the paper anticipates, and
supports conjunctive queries with tf scoring.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.errors import WebLabError
from repro.core.kernels import index_postings

_TOKEN_RE = re.compile(r"[a-z0-9]+")

_STOPWORDS = frozenset(
    "the of and to in a is that for it on as with was at by an be this are".split()
)


def tokenize(text: str) -> List[str]:
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True)
class SearchHit:
    url: str
    score: float


class TextIndex:
    """An in-memory inverted index over (url, text) documents."""

    def __init__(self, stopwords: frozenset = _STOPWORDS):
        self._postings: Dict[str, Dict[str, int]] = {}
        self._doc_lengths: Dict[str, int] = {}
        # Per-document term lists make removal O(document terms) instead of
        # a scan over the whole vocabulary.
        self._doc_terms: Dict[str, Tuple[str, ...]] = {}
        self._stopwords = stopwords

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __eq__(self, other: object) -> bool:
        """Indexes are equal when they score every query identically —
        same postings, same document lengths (dict order is irrelevant)."""
        if not isinstance(other, TextIndex):
            return NotImplemented
        return (
            self._postings == other._postings
            and self._doc_lengths == other._doc_lengths
        )

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def add(self, url: str, text: str) -> None:
        """Index one document; re-adding a URL replaces its old content."""
        if url in self._doc_lengths:
            self.remove(url)
        tokens = [t for t in tokenize(text) if t not in self._stopwords]
        self._doc_lengths[url] = len(tokens)
        counts = Counter(tokens)
        self._doc_terms[url] = tuple(counts)
        for token, count in counts.items():
            self._postings.setdefault(token, {})[url] = count

    def add_many(self, documents: Iterable[Tuple[str, str]]) -> None:
        """Index a batch of (url, text) documents in one pass.

        Equivalent to calling :meth:`add` per document (later duplicates
        win), but the postings merge runs through the batched
        :func:`repro.core.kernels.index_postings` core — the bulk-build
        path crawl snapshots use.
        """
        stopwords = self._stopwords
        tokenized = [
            (url, [t for t in tokenize(text) if t not in stopwords])
            for url, text in documents
        ]
        for url, _ in tokenized:
            if url in self._doc_lengths:
                self.remove(url)
        postings, doc_lengths, doc_terms = index_postings(tokenized)
        self._doc_lengths.update(doc_lengths)
        self._doc_terms.update(doc_terms)
        for term, bucket in postings.items():
            existing = self._postings.get(term)
            if existing is None:
                self._postings[term] = bucket
            else:
                existing.update(bucket)

    def remove(self, url: str) -> None:
        if url not in self._doc_lengths:
            raise WebLabError(f"index has no document {url!r}")
        del self._doc_lengths[url]
        for term in self._doc_terms.pop(url):
            postings = self._postings.get(term)
            if postings is None:
                continue
            postings.pop(url, None)
            if not postings:
                del self._postings[term]

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term.lower(), {}))

    def search(self, query: str, limit: int = 10) -> List[SearchHit]:
        """Conjunctive (AND) search, scored by summed term frequency
        normalized by document length."""
        terms = [t for t in tokenize(query) if t not in self._stopwords]
        if not terms:
            raise WebLabError("query has no searchable terms")
        candidate_sets: List[Set[str]] = []
        for term in terms:
            postings = self._postings.get(term)
            if not postings:
                return []
            candidate_sets.append(set(postings))
        candidates = set.intersection(*candidate_sets)
        hits = []
        for url in candidates:
            length = max(self._doc_lengths[url], 1)
            score = sum(self._postings[term][url] for term in terms) / length
            hits.append(SearchHit(url=url, score=score))
        hits.sort(key=lambda hit: (-hit.score, hit.url))
        return hits[:limit]


def build_index(documents: Iterable[Tuple[str, str]]) -> TextIndex:
    """Index (url, text) pairs via the batched :meth:`TextIndex.add_many`."""
    index = TextIndex()
    index.add_many(documents)
    return index
