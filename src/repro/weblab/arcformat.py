"""The ARC file format.

"The Internet Archive stores Web pages in the ARC file format.  The pages
are stored in the order received from the Web crawler and the entire file
is compressed with gzip.  Each compressed ARC file is about 100 MB big."

This implements the essential ARC v1 shape: a version block, then one
record per page — a space-separated header line
(``URL IP-address archive-date content-type archive-length``) followed by
exactly ``archive-length`` bytes of content and a separating newline — the
whole file gzip-compressed.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence, Union

from repro.core.errors import WebLabError
from repro.core.units import DataSize
from repro.weblab.synthweb import PageRecord

_VERSION_LINE = b"filedesc://synthetic.arc 0.0.0.0 19960101000000 text/plain 76\n"
_VERSION_BODY = b"1 0 InternetArchive\nURL IP-address Archive-date Content-type Archive-length\n"


def _archive_date(epoch: float) -> str:
    """ARC dates are YYYYMMDDhhmmss; render deterministically from epoch."""
    seconds = int(epoch)
    days = seconds // 86400
    rem = seconds % 86400
    # Simplified proleptic rendering adequate for ordering and round-trips.
    year = 1970 + days // 365
    day_of_year = days % 365
    month = min(12, day_of_year // 30 + 1)
    day = min(28, day_of_year % 30 + 1)
    return (
        f"{year:04d}{month:02d}{day:02d}"
        f"{rem // 3600:02d}{(rem % 3600) // 60:02d}{rem % 60:02d}"
    )


@dataclass(frozen=True)
class ArcRecord:
    """One page as stored in an ARC file."""

    url: str
    ip: str
    archive_date: str
    content_type: str
    content: bytes

    @classmethod
    def from_page(cls, page: PageRecord) -> "ArcRecord":
        return cls(
            url=page.url,
            ip=page.ip,
            archive_date=_archive_date(page.fetched_at),
            content_type=page.mime,
            content=page.content.encode("utf-8"),
        )

    def header_line(self) -> bytes:
        return (
            f"{self.url} {self.ip} {self.archive_date} "
            f"{self.content_type} {len(self.content)}\n"
        ).encode("ascii")


def write_arc(path: Union[str, Path], records: Sequence[ArcRecord]) -> DataSize:
    """Write records to a gzip-compressed ARC file; returns compressed size."""
    path = Path(path)
    with gzip.open(path, "wb") as stream:
        stream.write(_VERSION_LINE)
        stream.write(_VERSION_BODY)
        stream.write(b"\n")
        for record in records:
            if " " in record.url:
                raise WebLabError(f"URL contains a space: {record.url!r}")
            stream.write(record.header_line())
            stream.write(record.content)
            stream.write(b"\n")
    return DataSize.from_bytes(float(path.stat().st_size))


def read_arc(path: Union[str, Path]) -> Iterator[ArcRecord]:
    """Stream records back out of a gzip-compressed ARC file."""
    path = Path(path)
    with gzip.open(path, "rb") as stream:
        version_line = stream.readline()
        if not version_line.startswith(b"filedesc://"):
            raise WebLabError(f"{path} is not an ARC file (bad version block)")
        # Skip the declared version body and its separating blank line.
        declared = int(version_line.rsplit(b" ", 1)[1])
        stream.read(declared)
        stream.readline()
        while True:
            header = stream.readline()
            if not header:
                return
            if header == b"\n":
                continue
            parts = header.decode("ascii", errors="replace").split()
            if len(parts) != 5:
                raise WebLabError(f"{path}: malformed ARC record header {header!r}")
            url, ip, archive_date, content_type, length_text = parts
            try:
                length = int(length_text)
            except ValueError as exc:
                raise WebLabError(f"{path}: bad record length {length_text!r}") from exc
            content = stream.read(length)
            if len(content) != length:
                raise WebLabError(f"{path}: truncated ARC record for {url}")
            stream.readline()  # record separator
            yield ArcRecord(
                url=url,
                ip=ip,
                archive_date=archive_date,
                content_type=content_type,
                content=content,
            )


def pack_crawl(
    pages: Sequence[PageRecord],
    directory: Union[str, Path],
    prefix: str,
    target_file_bytes: int = 400_000,
) -> List[Path]:
    """Write a crawl's pages into ARC files of roughly the target size.

    The real archive targets ~100 MB per compressed file; the default here
    is laptop-scaled, but the splitting logic is the same: records are
    packed in crawl order until the (uncompressed) payload passes the
    target, then a new file begins.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    buffer: List[ArcRecord] = []
    buffered_bytes = 0

    def flush() -> None:
        nonlocal buffer, buffered_bytes
        if not buffer:
            return
        path = directory / f"{prefix}-{len(paths):04d}.arc.gz"
        write_arc(path, buffer)
        paths.append(path)
        buffer = []
        buffered_bytes = 0

    for page in pages:
        record = ArcRecord.from_page(page)
        buffer.append(record)
        buffered_bytes += len(record.content)
        if buffered_bytes >= target_file_bytes:
            flush()
    flush()
    return paths
