"""Crawl-delta ingestion: the WebLab's incremental preload path.

The paper's crawls are bimonthly and mostly redundant — "the Web changes
slowly enough that a new crawl largely repeats the previous one".  The
batch path (:func:`repro.weblab.services.build_weblab`) packs and preloads
every crawl in full anyway.  This module ships only the *difference*:

* :func:`crawl_deltas` diffs consecutive :class:`CrawlSnapshot`\\ s into
  :class:`CrawlDelta` records (pages added, modified, deleted);
* :func:`build_weblab_incremental` packs each delta into its own ARC/DAT
  files, transfers and preloads just those, and *merges* the full-text
  index (remove deleted URLs, re-add changed pages) instead of rebuilding
  it — one :class:`~repro.core.deltas.WindowLedger` window per crawl.

The equivalence contract: the incrementally built WebLab is identical to
one batch preload of the union of the same delta files, and the merged
text index equals a fresh :func:`~repro.weblab.textindex.build_index`
over the final crawl's live documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.deltas import WindowLedger
from repro.core.errors import IncrementalError
from repro.core.telemetry import Telemetry, get_telemetry
from repro.core.units import DataSize, Duration
from repro.transport.network import INTERNET2_100, NetworkLink
from repro.weblab.arcformat import pack_crawl
from repro.weblab.datformat import pack_crawl_metadata
from repro.weblab.preload import PreloadConfig, PreloadStats, PreloadSubsystem
from repro.weblab.services import WebLab
from repro.weblab.synthweb import (
    CrawlSnapshot,
    PageRecord,
    SyntheticWeb,
    SyntheticWebConfig,
)
from repro.weblab.textindex import TextIndex


@dataclass(frozen=True)
class CrawlDelta:
    """What one crawl changed relative to the previous one.

    ``added`` and ``modified`` carry the full new :class:`PageRecord`
    (an ARC record is self-contained either way); ``deleted`` is URLs
    only — nothing to archive, just an index/view removal.
    """

    crawl_index: int
    crawl_time: float
    added: Tuple[PageRecord, ...]
    modified: Tuple[PageRecord, ...]
    deleted: Tuple[str, ...]

    @property
    def pages(self) -> List[PageRecord]:
        """Every page this delta ships (added + modified), in URL order."""
        return sorted(self.added + self.modified, key=lambda page: page.url)

    @property
    def change_count(self) -> int:
        return len(self.added) + len(self.modified) + len(self.deleted)


def crawl_deltas(crawls: Sequence[CrawlSnapshot]) -> List[CrawlDelta]:
    """Diff consecutive crawl snapshots into per-crawl deltas.

    The first crawl is all additions.  A page counts as *modified* only
    when its archived payload changed (content, outlinks, IP, or MIME) —
    crawl timestamps are restamped on every pass and deliberately do not
    count, since shipping every page for a timestamp would be the batch
    path all over again.
    """
    deltas: List[CrawlDelta] = []
    previous: dict = {}
    for crawl in crawls:
        current = {
            page.url: (page.content, page.outlinks, page.ip, page.mime)
            for page in crawl.pages
        }
        added = tuple(p for p in crawl.pages if p.url not in previous)
        modified = tuple(
            p
            for p in crawl.pages
            if p.url in previous and previous[p.url] != current[p.url]
        )
        deleted = tuple(sorted(url for url in previous if url not in current))
        deltas.append(
            CrawlDelta(
                crawl_index=crawl.crawl_index,
                crawl_time=crawl.crawl_time,
                added=added,
                modified=modified,
                deleted=deleted,
            )
        )
        previous = current
    return deltas


@dataclass
class WebLabWindowReport:
    """One ingestion window: one crawl delta packed, shipped, preloaded."""

    index: int
    crawl_index: int
    crawl_time: float
    added: int
    modified: int
    deleted: int
    arc_files: int
    dat_files: int
    compressed: DataSize
    transfer_time: Duration
    preload: PreloadStats


@dataclass
class WebLabIncrementalReport:
    """The incremental build's totals, window by window."""

    crawls: int
    windows: List[WebLabWindowReport]
    index: TextIndex = field(repr=False)
    ledger: WindowLedger = field(repr=False)
    #: Every (path, crawl_index) job preloaded, in window order — the
    #: exact input a batch comparator run should preload in one pass.
    arc_jobs: List[Tuple[Path, int]] = field(repr=False)
    dat_jobs: List[Tuple[Path, int]] = field(repr=False)

    @property
    def pages_loaded(self) -> int:
        return sum(window.preload.pages for window in self.windows)

    @property
    def links_loaded(self) -> int:
        return sum(window.preload.links for window in self.windows)

    @property
    def compressed_volume(self) -> DataSize:
        return DataSize(sum(w.compressed.bytes for w in self.windows))

    @property
    def transfer_time(self) -> Duration:
        return Duration(sum(w.transfer_time.seconds for w in self.windows))


def build_weblab_incremental(
    root: Union[str, Path],
    web_config: Optional[SyntheticWebConfig] = None,
    n_crawls: int = 6,
    preload_config: Optional[PreloadConfig] = None,
    link: NetworkLink = INTERNET2_100,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[WebLab, WebLabIncrementalReport, SyntheticWeb]:
    """Build a WebLab crawl-by-crawl from deltas instead of full snapshots.

    Each crawl becomes one accounted window: diff against the previous
    crawl, pack only the changed pages into ``delta<NN>`` ARC/DAT files,
    ship those over ``link``, preload just them, and merge the full-text
    index in place.  An unchanged crawl ships nothing — the window still
    opens and closes on the ledger, with zero bytes.

    Returns (weblab, incremental report, the synthetic web) — the same
    shape as :func:`~repro.weblab.services.build_weblab` so the two paths
    are drop-in comparable.
    """
    if n_crawls < 1:
        raise IncrementalError("need at least one crawl")
    root = Path(root)
    incoming = root / "incoming"
    incoming.mkdir(parents=True, exist_ok=True)
    bus = telemetry if telemetry is not None else get_telemetry()

    web = SyntheticWeb(web_config)
    crawls = web.generate_crawls(n_crawls)
    deltas = crawl_deltas(crawls)

    weblab = WebLab(root / "weblab", telemetry=telemetry)
    preloader = PreloadSubsystem(weblab.database, weblab.pagestore, preload_config)
    ledger = WindowLedger("weblab-ingest", telemetry=bus)
    index = TextIndex()
    windows: List[WebLabWindowReport] = []
    all_arc_jobs: List[Tuple[Path, int]] = []
    all_dat_jobs: List[Tuple[Path, int]] = []

    for delta in deltas:
        weblab.database.register_crawl(delta.crawl_index, delta.crawl_time)
        pages = delta.pages
        if pages:
            prefix = f"delta{delta.crawl_index:02d}"
            arc_paths = pack_crawl(pages, incoming, prefix)
            dat_paths = pack_crawl_metadata(pages, arc_paths, incoming, prefix)
        else:
            arc_paths, dat_paths = [], []
        arc_jobs = [(path, delta.crawl_index) for path in arc_paths]
        dat_jobs = [(path, delta.crawl_index) for path in dat_paths]
        compressed = DataSize.from_bytes(
            float(sum(path.stat().st_size for path, _ in arc_jobs + dat_jobs))
        )
        transfer_time = link.transfer_time(compressed)

        ledger.open(
            delta.crawl_time,
            crawl=delta.crawl_index,
            added=len(delta.added),
            modified=len(delta.modified),
            deleted=len(delta.deleted),
        )
        bus.emit(
            "transfer.start",
            "weblab-ingest",
            link=link.name,
            bytes=compressed.bytes,
            mode="network",
        )
        bus.emit(
            "transfer.finish",
            "weblab-ingest",
            link=link.name,
            bytes=compressed.bytes,
            elapsed_s=transfer_time.seconds,
            mode="network",
        )
        stats = preloader.run(arc_jobs, dat_jobs) if arc_jobs or dat_jobs else (
            PreloadStats.zero()
        )
        for url in delta.deleted:
            index.remove(url)
        index.add_many([(page.url, page.content) for page in pages])
        ledger.close(
            pages=stats.pages,
            links=stats.links,
            bytes=compressed.bytes,
            elapsed_s=transfer_time.seconds,
        )

        all_arc_jobs.extend(arc_jobs)
        all_dat_jobs.extend(dat_jobs)
        windows.append(
            WebLabWindowReport(
                index=len(windows),
                crawl_index=delta.crawl_index,
                crawl_time=delta.crawl_time,
                added=len(delta.added),
                modified=len(delta.modified),
                deleted=len(delta.deleted),
                arc_files=len(arc_paths),
                dat_files=len(dat_paths),
                compressed=compressed,
                transfer_time=transfer_time,
                preload=stats,
            )
        )

    report = WebLabIncrementalReport(
        crawls=n_crawls,
        windows=windows,
        index=index,
        ledger=ledger,
        arc_jobs=all_arc_jobs,
        dat_jobs=all_dat_jobs,
    )
    return weblab, report, web


__all__ = (
    "CrawlDelta",
    "WebLabIncrementalReport",
    "WebLabWindowReport",
    "build_weblab_incremental",
    "crawl_deltas",
)
