"""The DAT metadata file format.

"Corresponding to an ARC file, there is a metadata file in the DAT file
format, also compressed with gzip.  It contains metadata for each page,
such as URL, IP address, date and time crawled, and links from the page."

One text record per page: a header line, one ``L <target>`` line per
outlink, and a blank separator — gzip-compressed, matching its ARC file
record for record (though the preload subsystem deliberately does not rely
on processing the two together).
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple, Union

from repro.core.errors import WebLabError
from repro.core.units import DataSize
from repro.weblab.synthweb import PageRecord


@dataclass(frozen=True)
class DatRecord:
    """Per-page metadata: identity plus outlinks."""

    url: str
    ip: str
    fetched_at: float
    outlinks: Tuple[str, ...]

    @classmethod
    def from_page(cls, page: PageRecord) -> "DatRecord":
        return cls(
            url=page.url,
            ip=page.ip,
            fetched_at=page.fetched_at,
            outlinks=tuple(page.outlinks),
        )


def write_dat(path: Union[str, Path], records: Sequence[DatRecord]) -> DataSize:
    """Write records to a gzip-compressed DAT file; returns compressed size."""
    path = Path(path)
    with gzip.open(path, "wb") as stream:
        for record in records:
            if " " in record.url:
                raise WebLabError(f"URL contains a space: {record.url!r}")
            stream.write(
                f"P {record.url} {record.ip} {record.fetched_at:.0f}\n".encode("ascii")
            )
            for target in record.outlinks:
                stream.write(f"L {target}\n".encode("ascii"))
            stream.write(b"\n")
    return DataSize.from_bytes(float(path.stat().st_size))


def read_dat(path: Union[str, Path]) -> Iterator[DatRecord]:
    """Stream records back out of a gzip-compressed DAT file."""
    path = Path(path)
    url = ip = None
    fetched_at = 0.0
    outlinks: List[str] = []
    with gzip.open(path, "rt", encoding="ascii") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.rstrip("\n")
            if not line:
                if url is not None:
                    yield DatRecord(
                        url=url, ip=ip, fetched_at=fetched_at, outlinks=tuple(outlinks)
                    )
                url = ip = None
                outlinks = []
                continue
            if line.startswith("P "):
                parts = line.split()
                if len(parts) != 4:
                    raise WebLabError(f"{path}:{line_number}: malformed page line")
                _, url, ip, fetched_text = parts
                fetched_at = float(fetched_text)
            elif line.startswith("L "):
                if url is None:
                    raise WebLabError(f"{path}:{line_number}: link before page")
                outlinks.append(line[2:])
            else:
                raise WebLabError(f"{path}:{line_number}: unknown DAT line {line!r}")
    if url is not None:
        yield DatRecord(url=url, ip=ip, fetched_at=fetched_at, outlinks=tuple(outlinks))


def pack_crawl_metadata(
    pages: Sequence[PageRecord],
    arc_paths: Sequence[Path],
    directory: Union[str, Path],
    prefix: str,
) -> List[Path]:
    """Write the DAT companions for a crawl, one per ARC file.

    Splitting mirrors :func:`repro.weblab.arcformat.pack_crawl`: pages are
    distributed in order across ``len(arc_paths)`` files.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if not arc_paths:
        raise WebLabError("no ARC files to pair DAT files with")
    per_file = max(1, (len(pages) + len(arc_paths) - 1) // len(arc_paths))
    paths: List[Path] = []
    for index in range(len(arc_paths)):
        chunk = pages[index * per_file : (index + 1) * per_file]
        path = directory / f"{prefix}-{index:04d}.dat.gz"
        write_dat(path, [DatRecord.from_page(page) for page in chunk])
        paths.append(path)
    return paths
