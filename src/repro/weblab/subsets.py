"""Subset extraction and stratified sampling.

"A common theme is that researchers wish to extract a portion of the Web
to analyze in depth, not the entire Web.  Almost invariably, they wish to
have several time slices [...] a facility to extract subsets of the
collection and store them as database views."

And the capability the paper says clusters make hard: "it would be
extremely difficult to extract a stratified sample of Web pages from the
Internet Archive" — trivial here, because the metadata lives in one
relational database.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import WebLabError
from repro.db.query import Select
from repro.weblab.metadb import WebLabDatabase


@dataclass(frozen=True)
class SubsetCriteria:
    """Researcher-facing selection: metadata predicates + time slices.

    "Some use conventional metadata, e.g., specific domains, file type, or
    date ranges."
    """

    domains: Tuple[str, ...] = ()
    tlds: Tuple[str, ...] = ()
    mime_prefix: Optional[str] = None
    crawl_indexes: Tuple[int, ...] = ()
    fetched_after: Optional[float] = None
    fetched_before: Optional[float] = None

    def apply(self, query: Select) -> Select:
        if self.domains:
            query = query.where_in("domain", self.domains)
        if self.tlds:
            query = query.where_in("tld", self.tlds)
        if self.mime_prefix is not None:
            query = query.where("mime LIKE ?", self.mime_prefix + "%")
        if self.crawl_indexes:
            query = query.where_in("crawl_index", self.crawl_indexes)
        if self.fetched_after is not None:
            query = query.where("fetched_at >= ?", self.fetched_after)
        if self.fetched_before is not None:
            query = query.where("fetched_at <= ?", self.fetched_before)
        return query

    def cache_token(self) -> str:
        """Stable digest of the criteria, for read-cache keys."""
        payload = json.dumps(
            {
                "domains": list(self.domains),
                "tlds": list(self.tlds),
                "mime_prefix": self.mime_prefix,
                "crawl_indexes": list(self.crawl_indexes),
                "fetched_after": self.fetched_after,
                "fetched_before": self.fetched_before,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _validate_view_name(name: str) -> str:
    if not name or not name.replace("_", "").isalnum() or not name[0].isalpha():
        raise WebLabError(f"bad view name {name!r}")
    return name


def extract_subset(
    database: WebLabDatabase, name: str, criteria: SubsetCriteria
) -> int:
    """Materialize a subset as a database view; returns its row count."""
    name = _validate_view_name(name)
    sql, params = criteria.apply(Select("pages")).sql()
    database.db.execute(f"DROP VIEW IF EXISTS {name}")
    # Views cannot carry bound parameters; inline them through a literal
    # rendering that goes through sqlite's own quoting.
    rendered = _render_literals(sql, params)
    database.db.execute(f"CREATE VIEW {name} AS {rendered}")
    return int(database.db.query_value(f"SELECT count(*) FROM {name}"))


def _render_literals(sql: str, params: Sequence[object]) -> str:
    parts = sql.split("?")
    if len(parts) - 1 != len(params):
        raise WebLabError("placeholder/parameter mismatch")
    rendered = parts[0]
    for part, param in zip(parts[1:], params):
        if isinstance(param, (int, float)):
            literal = repr(param)
        else:
            literal = "'" + str(param).replace("'", "''") + "'"
        rendered += literal + part
    return rendered


def list_subsets(database: WebLabDatabase) -> List[str]:
    rows = database.db.query(
        "SELECT name FROM sqlite_master WHERE type = 'view' ORDER BY name"
    )
    return [row["name"] for row in rows]


def drop_subset(database: WebLabDatabase, name: str) -> None:
    database.db.execute(f"DROP VIEW IF EXISTS {_validate_view_name(name)}")


def stratified_sample(
    database: WebLabDatabase,
    stratum_column: str,
    per_stratum: int,
    criteria: Optional[SubsetCriteria] = None,
    seed: int = 0,
) -> Dict[str, List[str]]:
    """Sample up to ``per_stratum`` page URLs from every stratum.

    ``stratum_column`` is one of the page metadata columns (``domain``,
    ``tld``, ``crawl_index``, ``mime``).  Sampling is deterministic per
    seed.  Returns {stratum value: [urls]}.
    """
    if stratum_column not in ("domain", "tld", "crawl_index", "mime"):
        raise WebLabError(f"cannot stratify by {stratum_column!r}")
    if per_stratum < 1:
        raise WebLabError("per_stratum must be at least 1")
    query = Select("pages", [stratum_column, "url"])
    if criteria is not None:
        query = criteria.apply(query)
    rows = query.run(database.db)
    by_stratum: Dict[str, List[str]] = {}
    for row in rows:
        by_stratum.setdefault(str(row[stratum_column]), []).append(row["url"])
    rng = random.Random(seed)
    sample: Dict[str, List[str]] = {}
    for stratum in sorted(by_stratum):
        urls = sorted(set(by_stratum[stratum]))
        if len(urls) <= per_stratum:
            sample[stratum] = urls
        else:
            sample[stratum] = sorted(rng.sample(urls, per_stratum))
    return sample
