"""Focused selection of Web materials.

"One researcher has combined focused Web crawling with statistical methods
of information retrieval to select materials automatically for an
educational digital library."

:func:`select_materials` reproduces that workflow over the archived
collection: starting from a handful of seed pages on the researcher's
topic, it builds a term-frequency centroid, then walks the stored link
graph best-first — always expanding the frontier page most similar to the
centroid — until the selection budget is spent.  The result is a ranked
reading list, plus the similarity scores a curator would review.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import WebLabError
from repro.weblab.metadb import WebLabDatabase
from repro.weblab.pagestore import PageStore
from repro.weblab.textindex import tokenize


def term_vector(text: str, idf: Optional[Dict[str, float]] = None) -> Dict[str, float]:
    """L2-normalized term vector; tf-idf when an ``idf`` table is given.

    Without IDF weighting, the ubiquitous filler vocabulary of real pages
    dominates every vector and all pages look alike; weighting by inverse
    document frequency is the "statistical methods of information
    retrieval" half of the paper's phrase.
    """
    counts = Counter(tokenize(text))
    if idf is not None:
        weights = {term: count * idf.get(term, 0.0) for term, count in counts.items()}
    else:
        weights = dict(counts)
    norm = math.sqrt(sum(weight * weight for weight in weights.values()))
    if norm == 0:
        return {}
    return {term: weight / norm for term, weight in weights.items()}


def compute_idf(
    database: WebLabDatabase, pagestore: PageStore, crawl_index: int
) -> Dict[str, float]:
    """Inverse document frequency over one crawl (curator-side precompute)."""
    rows = database.db.query(
        "SELECT content_hash FROM pages WHERE crawl_index = ?", (crawl_index,)
    )
    if not rows:
        raise WebLabError(f"crawl {crawl_index} has no pages")
    document_frequency: Counter = Counter()
    for row in rows:
        text = pagestore.get(row["content_hash"]).decode("utf-8", errors="replace")
        document_frequency.update(set(tokenize(text)))
    n_documents = len(rows)
    return {
        term: math.log((1 + n_documents) / (1 + df)) + 1e-9
        for term, df in document_frequency.items()
    }


def cosine(a: Dict[str, float], b: Dict[str, float]) -> float:
    if len(b) < len(a):
        a, b = b, a
    return sum(weight * b.get(term, 0.0) for term, weight in a.items())


def centroid(vectors: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """L2-normalized mean of term vectors."""
    if not vectors:
        raise WebLabError("centroid of zero vectors")
    total: Dict[str, float] = {}
    for vector in vectors:
        for term, weight in vector.items():
            total[term] = total.get(term, 0.0) + weight
    norm = math.sqrt(sum(weight * weight for weight in total.values()))
    if norm == 0:
        raise WebLabError("seed pages have no indexable text")
    return {term: weight / norm for term, weight in total.items()}


@dataclass(frozen=True)
class SelectedPage:
    """One page chosen for the digital library, with its relevance score."""

    url: str
    score: float
    hops_from_seed: int


@dataclass
class FocusedSelection:
    """The outcome of one focused-selection run."""

    seeds: Tuple[str, ...]
    selected: List[SelectedPage] = field(default_factory=list)
    pages_examined: int = 0

    def urls(self) -> List[str]:
        return [page.url for page in self.selected]

    @property
    def harvest_ratio(self) -> float:
        """Selected fraction of examined pages — focused crawling's metric."""
        if self.pages_examined == 0:
            return 0.0
        return len(self.selected) / self.pages_examined


def select_materials(
    database: WebLabDatabase,
    pagestore: PageStore,
    seed_urls: Sequence[str],
    crawl_index: int,
    budget: int = 20,
    min_score: float = 0.3,
    max_frontier: int = 2000,
    idf: Optional[Dict[str, float]] = None,
) -> FocusedSelection:
    """Best-first focused selection over one crawl's stored link graph.

    ``budget`` bounds how many pages may be *examined* (fetched from the
    page store and scored) — the focused crawler's defining constraint.
    Pages scoring at least ``min_score`` against the seed centroid are
    selected.
    """
    if not seed_urls:
        raise WebLabError("focused selection needs at least one seed URL")
    if budget < 1:
        raise WebLabError("budget must be at least 1")
    if idf is None:
        idf = compute_idf(database, pagestore, crawl_index)

    def content_of(url: str) -> Optional[str]:
        row = database.db.query_one(
            "SELECT content_hash FROM pages WHERE url = ? AND crawl_index = ?",
            (url, crawl_index),
        )
        if row is None:
            return None
        return pagestore.get(row["content_hash"]).decode("utf-8", errors="replace")

    def neighbours_of(url: str) -> List[str]:
        """Both link directions: an archived graph knows its backlinks,
        which a live focused crawler never sees — one of the research
        affordances the paper attributes to storing "the link structure"."""
        out_rows = database.db.query(
            "SELECT dst_url FROM links WHERE crawl_index = ? AND src_url = ?",
            (crawl_index, url),
        )
        in_rows = database.db.query(
            "SELECT src_url FROM links WHERE crawl_index = ? AND dst_url = ?",
            (crawl_index, url),
        )
        return [row["dst_url"] for row in out_rows] + [
            row["src_url"] for row in in_rows
        ]

    seed_vectors = []
    for url in seed_urls:
        text = content_of(url)
        if text is None:
            raise WebLabError(f"seed {url!r} is not in crawl {crawl_index}")
        seed_vectors.append(term_vector(text, idf))
    topic = centroid(seed_vectors)

    selection = FocusedSelection(seeds=tuple(seed_urls))
    visited: Set[str] = set(seed_urls)
    tie_breaker = itertools.count()
    # Max-heap on (estimated relevance of the *linking* page, hops).
    frontier: List[Tuple[float, int, int, str]] = []
    for url in seed_urls:
        for target in neighbours_of(url):
            if target not in visited:
                heapq.heappush(frontier, (-1.0, next(tie_breaker), 1, target))
                visited.add(target)

    while frontier and selection.pages_examined < budget:
        priority, _, hops, url = heapq.heappop(frontier)
        text = content_of(url)
        if text is None:
            continue  # linked page not captured in this crawl
        selection.pages_examined += 1
        score = cosine(topic, term_vector(text, idf))
        if score >= min_score:
            selection.selected.append(
                SelectedPage(url=url, score=score, hops_from_seed=hops)
            )
            # Expand only from relevant pages: the focused part.
            for target in neighbours_of(url):
                if target not in visited and len(frontier) < max_frontier:
                    heapq.heappush(
                        frontier, (-score, next(tie_breaker), hops + 1, target)
                    )
                    visited.add(target)

    selection.selected.sort(key=lambda page: -page.score)
    return selection
