"""Research dataset export.

"Many social science research groups are reasonably strong technically,
but they do not wish to program high-performance, parallel computers.  The
expectation is that most researchers will download sets of partially
analyzed data to their own computers for further analysis."

:func:`export_subset` packages a subset (criteria or an existing view)
into a self-contained download bundle: a gzip TSV of page metadata, a gzip
TSV of the subset's internal link edges, and optionally the page content
as an ARC file — the "partially analyzed data" a researcher takes home.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.core.errors import WebLabError
from repro.core.units import DataSize
from repro.db.query import Select
from repro.weblab.arcformat import ArcRecord, write_arc
from repro.weblab.metadb import WebLabDatabase
from repro.weblab.pagestore import PageStore
from repro.weblab.subsets import SubsetCriteria

_METADATA_COLUMNS = (
    "url", "domain", "tld", "crawl_index", "fetched_at", "ip", "mime",
    "size_bytes", "content_hash",
)


@dataclass
class ExportBundle:
    """Paths and row counts of one exported dataset."""

    directory: Path
    metadata_path: Path
    links_path: Path
    content_path: Optional[Path]
    pages: int
    links: int

    @property
    def total_size(self) -> DataSize:
        paths = [self.metadata_path, self.links_path]
        if self.content_path is not None:
            paths.append(self.content_path)
        return DataSize.from_bytes(float(sum(p.stat().st_size for p in paths)))


def export_subset(
    database: WebLabDatabase,
    pagestore: PageStore,
    directory: Union[str, Path],
    criteria: SubsetCriteria,
    name: str = "subset",
    include_content: bool = False,
) -> ExportBundle:
    """Materialize a downloadable bundle for the pages matching ``criteria``.

    The links file contains only edges *internal* to the subset (both
    endpoints selected), which is what graph studies of a slice need.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    rows = criteria.apply(Select("pages", _METADATA_COLUMNS)).run(database.db)
    if not rows:
        raise WebLabError("subset criteria match no pages; nothing to export")

    metadata_path = directory / f"{name}-pages.tsv.gz"
    with gzip.open(metadata_path, "wt", encoding="utf-8") as stream:
        stream.write("\t".join(_METADATA_COLUMNS) + "\n")
        for row in rows:
            stream.write(
                "\t".join(str(row[column]) for column in _METADATA_COLUMNS) + "\n"
            )

    selected = {(row["url"], row["crawl_index"]) for row in rows}
    selected_urls_by_crawl: dict = {}
    for url, crawl_index in sorted(selected):
        selected_urls_by_crawl.setdefault(crawl_index, set()).add(url)

    links_path = directory / f"{name}-links.tsv.gz"
    link_count = 0
    with gzip.open(links_path, "wt", encoding="utf-8") as stream:
        stream.write("crawl_index\tsrc_url\tdst_url\n")
        for crawl_index, urls in sorted(selected_urls_by_crawl.items()):
            for src, dst in database.links_of_crawl(crawl_index):
                if src in urls and dst in urls:
                    stream.write(f"{crawl_index}\t{src}\t{dst}\n")
                    link_count += 1

    content_path: Optional[Path] = None
    if include_content:
        content_path = directory / f"{name}-content.arc.gz"
        records = []
        for row in rows:
            records.append(
                ArcRecord(
                    url=row["url"],
                    ip=row["ip"],
                    archive_date="19960101000000",
                    content_type=row["mime"],
                    content=pagestore.get(row["content_hash"]),
                )
            )
        write_arc(content_path, records)

    return ExportBundle(
        directory=directory,
        metadata_path=metadata_path,
        links_path=links_path,
        content_path=content_path,
        pages=len(rows),
        links=link_count,
    )


def read_exported_metadata(path: Union[str, Path]) -> List[dict]:
    """Load an exported pages TSV back into row dicts (for verification)."""
    rows: List[dict] = []
    with gzip.open(path, "rt", encoding="utf-8") as stream:
        header = stream.readline().rstrip("\n").split("\t")
        if header != list(_METADATA_COLUMNS):
            raise WebLabError(f"{path}: unexpected export header {header}")
        for line in stream:
            values = line.rstrip("\n").split("\t")
            if len(values) != len(header):
                raise WebLabError(f"{path}: malformed export row")
            rows.append(dict(zip(header, values)))
    return rows
