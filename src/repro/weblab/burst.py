"""Burst detection on term streams.

"Others plan to extend research on burst detection, which can be used to
identify emerging topics, to highlight portions of the Web that are
undergoing rapid change at any point in time, and to provide a means of
structuring the content of emerging media like Weblogs."

This is Kleinberg's two-state automaton adapted to batched (per-crawl)
counts: in each time slice a term occurs ``k`` of ``n`` times; the base
state emits at the corpus rate, the burst state at ``scaling`` times that
rate; switching into the burst state costs ``gamma``; Viterbi decoding
yields the burst intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import WebLabError


@dataclass(frozen=True)
class BurstInterval:
    """One decoded burst: [start, end] time-slice indexes, with weight."""

    start: int
    end: int
    weight: float  # summed log-likelihood advantage over the base state

    def overlaps(self, other: "BurstInterval") -> bool:
        return self.start <= other.end and other.start <= self.end


def _binomial_log_likelihood(k: int, n: int, p: float) -> float:
    """log P(k of n | rate p), dropping the k-independent binomial term.

    The combinatorial coefficient cancels when comparing states, so only
    the rate-dependent part is kept.
    """
    p = min(max(p, 1e-12), 1 - 1e-12)
    return k * math.log(p) + (n - k) * math.log(1 - p)


def detect_bursts(
    counts: Sequence[int],
    totals: Sequence[int],
    scaling: float = 3.0,
    gamma: float = 1.0,
) -> List[BurstInterval]:
    """Two-state Viterbi decoding of a term's time series.

    ``counts[t]`` is the term's occurrences in slice ``t``; ``totals[t]``
    the slice's total word count.  Returns maximal burst-state intervals.
    """
    if len(counts) != len(totals):
        raise WebLabError("counts and totals must align")
    if not counts:
        return []
    if scaling <= 1.0:
        raise WebLabError("burst-state scaling must exceed 1")
    if any(k > n for k, n in zip(counts, totals)):
        raise WebLabError("a slice's term count exceeds its total")
    total_k = sum(counts)
    total_n = sum(totals)
    if total_n == 0:
        raise WebLabError("empty corpus")
    base_rate = max(total_k / total_n, 1e-12)
    burst_rate = min(base_rate * scaling, 0.9999)
    transition_cost = gamma * math.log(len(counts) + 1)

    # Viterbi over states {0: base, 1: burst}.
    score = [0.0, -transition_cost]
    backpointer: List[Tuple[int, int]] = []
    for k, n in zip(counts, totals):
        emit0 = _binomial_log_likelihood(k, n, base_rate)
        emit1 = _binomial_log_likelihood(k, n, burst_rate)
        stay0 = score[0]
        from1 = score[1]  # leaving a burst is free
        best0, back0 = (stay0, 0) if stay0 >= from1 else (from1, 1)
        stay1 = score[1]
        from0 = score[0] - transition_cost
        best1, back1 = (stay1, 1) if stay1 >= from0 else (from0, 0)
        score = [best0 + emit0, best1 + emit1]
        backpointer.append((back0, back1))

    # Trace back the state sequence.
    state = 0 if score[0] >= score[1] else 1
    states = [0] * len(counts)
    for t in range(len(counts) - 1, -1, -1):
        states[t] = state
        state = backpointer[t][state]

    # Collect burst intervals and weight them.
    intervals: List[BurstInterval] = []
    start: Optional[int] = None
    weight = 0.0
    for t, s in enumerate(states):
        advantage = _binomial_log_likelihood(
            counts[t], totals[t], burst_rate
        ) - _binomial_log_likelihood(counts[t], totals[t], base_rate)
        if s == 1 and start is None:
            start = t
            weight = advantage
        elif s == 1:
            weight += advantage
        elif start is not None:
            intervals.append(BurstInterval(start=start, end=t - 1, weight=weight))
            start = None
    if start is not None:
        intervals.append(BurstInterval(start=start, end=len(counts) - 1, weight=weight))
    return intervals


def term_time_series(
    documents_by_slice: Sequence[Sequence[str]], term: str
) -> Tuple[List[int], List[int]]:
    """(term counts, total word counts) per time slice from raw documents."""
    counts: List[int] = []
    totals: List[int] = []
    for documents in documents_by_slice:
        slice_count = 0
        slice_total = 0
        for document in documents:
            words = document.split()
            slice_total += len(words)
            slice_count += sum(1 for word in words if word == term)
        counts.append(slice_count)
        totals.append(slice_total)
    return counts, totals


def bursty_terms(
    documents_by_slice: Sequence[Sequence[str]],
    vocabulary: Sequence[str],
    scaling: float = 3.0,
    gamma: float = 1.0,
    min_weight: float = 1.0,
) -> Dict[str, List[BurstInterval]]:
    """Burst intervals per vocabulary term, weight-filtered."""
    results: Dict[str, List[BurstInterval]] = {}
    for term in vocabulary:
        counts, totals = term_time_series(documents_by_slice, term)
        intervals = [
            interval
            for interval in detect_bursts(counts, totals, scaling, gamma)
            if interval.weight >= min_weight
        ]
        if intervals:
            results[term] = intervals
    return results
