"""The commodity-cluster counterfactual for web-graph analysis.

"The conventional architecture for providing heavily used services on the
Web distributes the data and processing across a very large number of
small commodity computers. [...] While highly successful for production
services, large clusters of commodity computers are inconvenient for
researchers who carry out Web-scale research [...] because network latency
would be a serious concern."

:class:`PartitionedGraph` holds the same graph hash-partitioned across k
simulated workers.  Every edge whose endpoints live on different workers
costs a network round trip when traversed; local edges cost a memory
access.  Running the identical BFS/PageRank workloads through both models
produces the latency comparison of experiment C11 — same answers,
radically different completion times.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.errors import WebLabError
from repro.core.units import Duration

# Access-time constants: a main-memory pointer chase vs a cluster-network
# round trip (commodity gigabit + kernel stacks, mid-2000s).
MEMORY_ACCESS = Duration.from_seconds(100e-9)
NETWORK_ROUND_TRIP = Duration.from_seconds(200e-6)


@dataclass
class ClusterCost:
    """Edge-traversal accounting split by locality."""

    local_visits: int = 0
    remote_visits: int = 0

    @property
    def total_visits(self) -> int:
        return self.local_visits + self.remote_visits

    @property
    def remote_fraction(self) -> float:
        return self.remote_visits / self.total_visits if self.total_visits else 0.0

    def elapsed(
        self,
        memory_access: Duration = MEMORY_ACCESS,
        round_trip: Duration = NETWORK_ROUND_TRIP,
    ) -> Duration:
        return Duration(
            self.local_visits * memory_access.seconds
            + self.remote_visits * round_trip.seconds
        )


def single_machine_time(
    edge_visits: int, memory_access: Duration = MEMORY_ACCESS
) -> Duration:
    """Completion time of the same traversal on one shared-memory machine."""
    return Duration(edge_visits * memory_access.seconds)


class PartitionedGraph:
    """A directed graph hash-partitioned across ``n_workers`` machines.

    Partitioning is by a stable content hash of the node id, so runs are
    reproducible across processes.
    """

    def __init__(self, graph: nx.DiGraph, n_workers: int):
        if n_workers < 1:
            raise WebLabError("cluster needs at least one worker")
        self.graph = graph
        self.n_workers = n_workers

    def worker_of(self, node: str) -> int:
        return zlib.crc32(str(node).encode("utf-8")) % self.n_workers

    def is_remote(self, src: str, dst: str) -> bool:
        return self.worker_of(src) != self.worker_of(dst)

    def edge_census(self) -> ClusterCost:
        """Classify every edge once (the static cut fraction)."""
        cost = ClusterCost()
        for src, dst in self.graph.edges():
            if self.is_remote(src, dst):
                cost.remote_visits += 1
            else:
                cost.local_visits += 1
        return cost

    def _charge(self, cost: ClusterCost, src: str, dst: str) -> None:
        if self.is_remote(src, dst):
            cost.remote_visits += 1
        else:
            cost.local_visits += 1

    # -- workloads ---------------------------------------------------------
    def bfs(self, source: str) -> Tuple[Dict[str, int], ClusterCost]:
        """BFS distances plus locality-split traversal cost."""
        if source not in self.graph:
            raise WebLabError(f"no page {source!r} in graph")
        cost = ClusterCost()
        distances = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                for neighbor in self.graph.successors(node):
                    self._charge(cost, node, neighbor)
                    if neighbor not in distances:
                        distances[neighbor] = distances[node] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return distances, cost

    def pagerank(
        self, iterations: int = 20, damping: float = 0.85
    ) -> Tuple[Dict[str, float], ClusterCost]:
        """Power-iteration PageRank plus locality-split traversal cost."""
        if self.graph.number_of_nodes() == 0:
            raise WebLabError("empty graph")
        cost = ClusterCost()
        nodes = list(self.graph.nodes())
        n = len(nodes)
        rank = {node: 1.0 / n for node in nodes}
        for _ in range(iterations):
            new_rank = {node: (1.0 - damping) / n for node in nodes}
            dangling = 0.0
            for node in nodes:
                out_degree = self.graph.out_degree(node)
                if out_degree == 0:
                    dangling += rank[node]
                    continue
                share = damping * rank[node] / out_degree
                for neighbor in self.graph.successors(node):
                    self._charge(cost, node, neighbor)
                    new_rank[neighbor] += share
            if dangling:
                for node in nodes:
                    new_rank[node] += damping * dangling / n
            rank = new_rank
        return rank, cost


@dataclass
class LocalityComparison:
    """Single-machine vs cluster timing for one workload."""

    workload: str
    n_workers: int
    edge_visits: int
    remote_fraction: float
    single_machine: Duration
    cluster: Duration

    @property
    def slowdown(self) -> float:
        if self.single_machine.seconds == 0:
            return 1.0
        return self.cluster.seconds / self.single_machine.seconds


def compare_locality(
    graph: nx.DiGraph,
    n_workers: int,
    workload: str = "pagerank",
    source: Optional[str] = None,
    iterations: int = 20,
) -> LocalityComparison:
    """Run one workload through the cluster model and price both designs."""
    partitioned = PartitionedGraph(graph, n_workers)
    if workload == "pagerank":
        _, cost = partitioned.pagerank(iterations=iterations)
    elif workload == "bfs":
        if source is None:
            raise WebLabError("BFS needs a source page")
        _, cost = partitioned.bfs(source)
    else:
        raise WebLabError(f"unknown workload {workload!r}")
    return LocalityComparison(
        workload=workload,
        n_workers=n_workers,
        edge_visits=cost.total_visits,
        remote_fraction=cost.remote_fraction,
        single_machine=single_machine_time(cost.total_visits),
        cluster=cost.elapsed(),
    )
