"""Page content store.

"The preload subsystem [...] generates two types of output files: metadata
for loading into a relational database and the actual content of the Web
pages to be stored separately."  This is the *separately*: a
content-addressed store on disk, keyed by the content hash that the
metadata database records for each (url, crawl) pair.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Union

from repro.core.errors import WebLabError
from repro.core.units import DataSize


def content_hash(content: bytes) -> str:
    return hashlib.sha1(content).hexdigest()


class PageStore:
    """Content-addressed blob store with two-level fan-out directories."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path_for(self, digest: str) -> Path:
        if len(digest) < 4:
            raise WebLabError(f"bad content hash {digest!r}")
        return self.root / digest[:2] / digest[2:4] / digest

    def put(self, content: bytes) -> str:
        """Store content; returns its hash.  Duplicate content is stored once
        (crawls re-fetch mostly unchanged pages, so this dedup is where the
        archive's compression really comes from)."""
        digest = content_hash(content)
        path = self._path_for(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(content)
        return digest

    def get(self, digest: str) -> bytes:
        path = self._path_for(digest)
        if not path.exists():
            raise WebLabError(f"page store has no content {digest!r}")
        return path.read_bytes()

    def __contains__(self, digest: str) -> bool:
        return self._path_for(digest).exists()

    def blob_count(self) -> int:
        return sum(1 for path in self.root.glob("*/*/*") if path.is_file())

    def total_size(self) -> DataSize:
        return DataSize.from_bytes(
            float(sum(path.stat().st_size for path in self.root.glob("*/*/*")))
        )
