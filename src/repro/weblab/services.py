"""The WebLab service layer and end-to-end build.

"Access to the WebLab is provided via a Web Services interface to a
dedicated Web server.  General services provided include a Retro Browser
[...], a facility to extract subsets of the collection and store them as
database views, and tools for common analyses of subsets, such as
extraction of the Web graph and calculations of graph statistics."

:func:`build_weblab` is the whole ingestion path (Figure-less, but the
paper's Section 4 flow): synthesize crawls → pack real gzip ARC/DAT files
→ ship over the dedicated link → preload into the metadata DB and page
store.  :class:`WebLabServices` is the facade researchers then call.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import WebLabError
from repro.core.readcache import ReadCache
from repro.core.shards import map_shards
from repro.core.telemetry import MetricsRegistry, Telemetry, get_telemetry
from repro.core.units import DataSize, Duration
from repro.transport.network import INTERNET2_100, NetworkLink
from repro.weblab.arcformat import pack_crawl
from repro.weblab.burst import BurstInterval, bursty_terms
from repro.weblab.cluster import LocalityComparison, compare_locality
from repro.weblab.datformat import pack_crawl_metadata
from repro.weblab.metadb import WebLabDatabase
from repro.weblab.pagestore import PageStore
from repro.weblab.preload import PreloadConfig, PreloadStats, PreloadSubsystem
from repro.weblab.retro import RetroBrowser, RetroPage
from repro.weblab.subsets import (
    SubsetCriteria,
    extract_subset,
    list_subsets,
    stratified_sample,
)
from repro.weblab.synthweb import CrawlSnapshot, SyntheticWeb, SyntheticWebConfig
from repro.weblab.textindex import TextIndex, build_index
from repro.weblab.webgraph import GraphStats, compute_stats, load_web_graph


@dataclass
class WebLabBuildReport:
    """What the ingestion run produced and moved."""

    crawls: int
    pages_loaded: int
    links_loaded: int
    arc_files: int
    dat_files: int
    compressed_volume: DataSize
    transfer_time: Duration
    preload: PreloadStats


class WebLab:
    """One WebLab installation: database + page store + services."""

    def __init__(
        self,
        root: Union[str, Path],
        telemetry: Optional[Telemetry] = None,
        cache: Optional[ReadCache] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.database = WebLabDatabase(self.root / "weblab.db")
        self.pagestore = PageStore(self.root / "pages")
        self.services = WebLabServices(self, telemetry=telemetry, cache=cache)

    def close(self) -> None:
        self.database.close()

    def __enter__(self) -> "WebLab":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class WebLabServices:
    """The researcher-facing service facade.

    Every facade call is metered: a per-method ``service.calls.<method>``
    counter in the facade's registry, plus a ``service.call`` event on the
    telemetry bus — the Web-server access log of the simulated lab.

    An optional :class:`ReadCache` accelerates the hot read paths: retro
    browsing/navigation (pointer, outlink, and content tiers inside the
    browser) and subset extraction (keyed on the subset name plus the
    criteria digest).  With ``cache=None`` every call goes to the
    database and page store, exactly as before.
    """

    def __init__(
        self,
        weblab: WebLab,
        telemetry: Optional[Telemetry] = None,
        cache: Optional[ReadCache] = None,
    ):
        self._weblab = weblab
        self.cache = cache
        self._retro = RetroBrowser(weblab.database, weblab.pagestore, cache=cache)
        self.metrics = MetricsRegistry()
        self._telemetry = telemetry if telemetry is not None else get_telemetry()

    def _record(self, method: str, **attrs: object) -> None:
        self.metrics.counter(f"service.calls.{method}").inc()
        self._telemetry.emit("service.call", method, **attrs)

    @property
    def service_stats(self) -> Dict[str, int]:
        """Per-method call counts, read from the metrics registry."""
        prefix = "service.calls."
        return {
            name[len(prefix):]: int(self.metrics.value(name))
            for name in self.metrics.names()
            if name.startswith(prefix)
        }

    # -- retro browsing ----------------------------------------------------
    def browse(self, url: str, as_of: float) -> RetroPage:
        """Browse the Web as it was at a certain date."""
        self._record("browse", url=url, as_of=as_of)
        return self._retro.get(url, as_of)

    def navigate(self, url: str, as_of: float, link_index: int) -> RetroPage:
        self._record("navigate", url=url, as_of=as_of, link_index=link_index)
        return self._retro.navigate(url, as_of, link_index)

    def capture_history(self, url: str) -> List[float]:
        self._record("capture_history", url=url)
        return self._retro.history(url)

    # -- subsets ---------------------------------------------------------------
    def extract_subset(self, name: str, criteria: SubsetCriteria) -> int:
        """Materialize (or re-serve) a subset view; returns its row count.

        With a cache attached, repeating the same (name, criteria) pair
        skips the view DDL and count query — the view from the first call
        is still in place.  After loading new pages, call
        ``cache.invalidate_prefix("subset:")`` to force re-extraction.
        """
        self._record("extract_subset", subset=name)
        if self.cache is None:
            return extract_subset(self._weblab.database, name, criteria)
        count = self.cache.get_or_load(
            f"subset:{name}:{criteria.cache_token()}",
            lambda: extract_subset(self._weblab.database, name, criteria),
        )
        return int(count)  # type: ignore[arg-type]

    def subsets(self) -> List[str]:
        self._record("subsets")
        return list_subsets(self._weblab.database)

    def stratified_sample(
        self,
        stratum_column: str,
        per_stratum: int,
        criteria: Optional[SubsetCriteria] = None,
        seed: int = 0,
    ) -> Dict[str, List[str]]:
        self._record(
            "stratified_sample", stratum=stratum_column, per_stratum=per_stratum
        )
        return stratified_sample(
            self._weblab.database, stratum_column, per_stratum, criteria, seed
        )

    # -- graph analysis ----------------------------------------------------
    def graph_stats(self, crawl_index: int) -> GraphStats:
        self._record("graph_stats", crawl_index=crawl_index)
        graph = load_web_graph(self._weblab.database, crawl_index)
        return compute_stats(graph)

    def locality_comparison(
        self, crawl_index: int, n_workers: int, workload: str = "pagerank"
    ) -> LocalityComparison:
        self._record(
            "locality_comparison", crawl_index=crawl_index, workload=workload
        )
        graph = load_web_graph(self._weblab.database, crawl_index)
        return compare_locality(graph, n_workers, workload=workload)

    # -- text --------------------------------------------------------------
    def build_text_index(self, crawl_index: int) -> TextIndex:
        """Full-text index over one crawl (a subset, per the paper)."""
        self._record("build_text_index", crawl_index=crawl_index)
        rows = self._weblab.database.db.query(
            "SELECT url, content_hash FROM pages WHERE crawl_index = ?",
            (crawl_index,),
        )
        documents = (
            (row["url"], self._weblab.pagestore.get(row["content_hash"]).decode("utf-8"))
            for row in rows
        )
        return build_index(documents)

    def detect_bursts(
        self, vocabulary: Sequence[str], scaling: float = 1.5, min_weight: float = 3.0
    ) -> Dict[str, List[BurstInterval]]:
        """Burst detection across all crawls' page text."""
        self._record("detect_bursts", terms=len(vocabulary))
        slices: List[List[str]] = []
        for crawl_index in self._weblab.database.crawl_indexes():
            rows = self._weblab.database.db.query(
                "SELECT content_hash FROM pages WHERE crawl_index = ?",
                (crawl_index,),
            )
            slices.append(
                [
                    self._weblab.pagestore.get(row["content_hash"]).decode("utf-8")
                    for row in rows
                ]
            )
        return bursty_terms(slices, vocabulary, scaling=scaling, min_weight=min_weight)


def _pack_crawl_shard(task: Tuple[CrawlSnapshot, Path]) -> Tuple[List[Path], List[Path]]:
    """Pack one crawl snapshot's ARC + DAT files (picklable shard body)."""
    crawl, incoming = task
    arc_paths = pack_crawl(crawl.pages, incoming, f"crawl{crawl.crawl_index:02d}")
    dat_paths = pack_crawl_metadata(
        crawl.pages, arc_paths, incoming, f"crawl{crawl.crawl_index:02d}"
    )
    return arc_paths, dat_paths


def build_weblab(
    root: Union[str, Path],
    web_config: Optional[SyntheticWebConfig] = None,
    n_crawls: int = 6,
    preload_config: Optional[PreloadConfig] = None,
    link: NetworkLink = INTERNET2_100,
    workers: int = 1,
    executor: str = "thread",
    telemetry: Optional[Telemetry] = None,
) -> Tuple[WebLab, WebLabBuildReport, SyntheticWeb]:
    """Synthesize, pack, transfer, and preload a whole WebLab.

    ``workers`` fans the per-crawl ARC/DAT packing out across a shard
    pool — threads by default, worker processes with
    ``executor="process"`` — and becomes the preload subsystem's parser
    parallelism (unless an explicit ``preload_config`` already pins it).
    Crawls pack into disjoint files and results merge in crawl order, so
    the built WebLab is identical for any worker count or executor.

    Returns (weblab, build report, the synthetic web with its ground truth).
    """
    if workers < 1:
        raise WebLabError("need at least one worker")
    root = Path(root)
    incoming = root / "incoming"
    incoming.mkdir(parents=True, exist_ok=True)
    web = SyntheticWeb(web_config)
    crawls = web.generate_crawls(n_crawls)

    packed = map_shards(
        _pack_crawl_shard,
        [(crawl, incoming) for crawl in crawls],
        workers=workers,
        executor=executor,
        telemetry=telemetry,
    )

    arc_jobs: List[Tuple[Path, int]] = []
    dat_jobs: List[Tuple[Path, int]] = []
    for crawl, (arc_paths, dat_paths) in zip(crawls, packed):
        arc_jobs.extend((path, crawl.crawl_index) for path in arc_paths)
        dat_jobs.extend((path, crawl.crawl_index) for path in dat_paths)

    compressed = DataSize.from_bytes(
        float(sum(path.stat().st_size for path, _ in arc_jobs + dat_jobs))
    )
    transfer_time = link.transfer_time(compressed)
    bus = telemetry if telemetry is not None else get_telemetry()
    bus.emit(
        "transfer.start",
        "weblab-ingest",
        link=link.name,
        bytes=compressed.bytes,
        mode="network",
    )
    bus.emit(
        "transfer.finish",
        "weblab-ingest",
        link=link.name,
        bytes=compressed.bytes,
        elapsed_s=transfer_time.seconds,
        mode="network",
    )

    weblab = WebLab(root / "weblab", telemetry=telemetry)
    for crawl in crawls:
        weblab.database.register_crawl(crawl.crawl_index, crawl.crawl_time)
    if preload_config is None and workers > 1:
        preload_config = PreloadConfig(workers=workers)
    preloader = PreloadSubsystem(weblab.database, weblab.pagestore, preload_config)
    stats = preloader.run(arc_jobs, dat_jobs)

    report = WebLabBuildReport(
        crawls=n_crawls,
        pages_loaded=stats.pages,
        links_loaded=stats.links,
        arc_files=len(arc_jobs),
        dat_files=len(dat_jobs),
        compressed_volume=compressed,
        transfer_time=transfer_time,
        preload=stats,
    )
    return weblab, report, web
