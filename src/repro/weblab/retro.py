"""The Retro Browser.

"General services provided include a Retro Browser to browse the Web as it
was at a certain date" — resolve a URL to its most recent capture at or
before the requested date, serve the archived content from the page store,
and rewrite outlinks so navigation stays inside the chosen time slice.

The browser is the hottest access path the workload engine (C21) drives,
so its read path is built in three cacheable tiers, each a separate
:class:`~repro.core.readcache.ReadCache` key space:

* ``asof:`` — the (url, as_of) → capture-pointer resolution (including
  *negative* results: "never captured by then" is cached too);
* ``links:`` — the (crawl, url) → outlink list;
* ``blob:`` — content by hash.  Content addresses are immutable, so this
  tier may additionally read/write a shared on-disk
  :class:`~repro.core.cachestore.DiskCacheStore` when the cache has one.

Navigation resolves the *source* page through the pointer + link tiers
only — it never fetches the source page's content just to follow one
outlink (the double-fetch this layout exists to kill).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import WebLabError
from repro.core.readcache import ReadCache
from repro.weblab.metadb import WebLabDatabase
from repro.weblab.pagestore import PageStore


@dataclass(frozen=True)
class RetroPage:
    """One archived page as served by the retro browser."""

    url: str
    as_of: float
    fetched_at: float
    crawl_index: int
    content: bytes
    outlinks: Tuple[str, ...]

    @property
    def text(self) -> str:
        return self.content.decode("utf-8", errors="replace")


class RetroBrowser:
    """Date-pinned navigation over the archive.

    The resolution rule is the same most-recent-prior rule the EventStore
    uses for grades — the paper's three projects converge on timestamp-
    pinned consistency from different directions.

    ``cache=None`` (the default) serves every request straight from the
    database and page store; passing a :class:`ReadCache` turns on the
    tiered read path described in the module docstring.
    """

    def __init__(
        self,
        database: WebLabDatabase,
        pagestore: PageStore,
        cache: Optional[ReadCache] = None,
    ):
        self.database = database
        self.pagestore = pagestore
        self.cache = cache

    # -- cacheable tiers ---------------------------------------------------
    def _pointer(self, url: str, as_of: float) -> Optional[Dict[str, object]]:
        """(url, as_of) → capture pointer, negative results included."""
        if self.cache is None:
            return self.database.page_pointer_as_of(url, as_of)
        return self.cache.get_or_load(
            f"asof:{url}@{as_of!r}",
            lambda: self.database.page_pointer_as_of(url, as_of),
        )

    def _outlinks(self, crawl_index: int, url: str) -> Tuple[str, ...]:
        if self.cache is None:
            return tuple(self.database.outlinks(crawl_index, url))
        return self.cache.get_or_load(
            f"links:{crawl_index}:{url}",
            lambda: tuple(self.database.outlinks(crawl_index, url)),
        )

    def _content(self, digest: str) -> bytes:
        if self.cache is None:
            return self.pagestore.get(digest)
        return self.cache.get_or_load(
            f"blob:{digest}",
            lambda: self.pagestore.get(digest),
            content_key=digest,
        )

    # -- the service -------------------------------------------------------
    def get(self, url: str, as_of: float) -> RetroPage:
        """The page as it was at ``as_of``; raises if never captured by then."""
        pointer = self._pointer(url, as_of)
        if pointer is None:
            raise WebLabError(f"no capture of {url!r} at or before {as_of}")
        crawl_index = int(pointer["crawl_index"])  # type: ignore[arg-type]
        return RetroPage(
            url=url,
            as_of=as_of,
            fetched_at=float(pointer["fetched_at"]),  # type: ignore[arg-type]
            crawl_index=crawl_index,
            content=self._content(str(pointer["content_hash"])),
            outlinks=self._outlinks(crawl_index, url),
        )

    def outlinks(self, url: str, as_of: float) -> Tuple[str, ...]:
        """Just the date-pinned outlinks — no page content is fetched."""
        pointer = self._pointer(url, as_of)
        if pointer is None:
            raise WebLabError(f"no capture of {url!r} at or before {as_of}")
        return self._outlinks(int(pointer["crawl_index"]), url)  # type: ignore[arg-type]

    def navigate(self, url: str, as_of: float, link_index: int) -> RetroPage:
        """Follow the n-th outlink, staying pinned at the same date.

        Only the *destination* page's content is fetched; the source page
        contributes its outlink list alone.
        """
        outlinks = self.outlinks(url, as_of)
        if not 0 <= link_index < len(outlinks):
            raise WebLabError(
                f"{url!r} has {len(outlinks)} outlinks; no index {link_index}"
            )
        return self.get(outlinks[link_index], as_of)

    def history(self, url: str) -> List[float]:
        """All capture times of a URL, oldest first (the time-slice axis)."""
        return self.database.captures_of(url)

    def diff_times(self, url: str) -> List[Tuple[float, str]]:
        """(capture time, content hash) pairs — where the page changed."""
        rows = self.database.db.query(
            "SELECT fetched_at, content_hash FROM pages WHERE url = ? "
            "ORDER BY fetched_at",
            (url,),
        )
        return [(row["fetched_at"], row["content_hash"]) for row in rows]
