"""The Retro Browser.

"General services provided include a Retro Browser to browse the Web as it
was at a certain date" — resolve a URL to its most recent capture at or
before the requested date, serve the archived content from the page store,
and rewrite outlinks so navigation stays inside the chosen time slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.errors import WebLabError
from repro.weblab.metadb import WebLabDatabase
from repro.weblab.pagestore import PageStore


@dataclass(frozen=True)
class RetroPage:
    """One archived page as served by the retro browser."""

    url: str
    as_of: float
    fetched_at: float
    crawl_index: int
    content: bytes
    outlinks: Tuple[str, ...]

    @property
    def text(self) -> str:
        return self.content.decode("utf-8", errors="replace")


class RetroBrowser:
    """Date-pinned navigation over the archive.

    The resolution rule is the same most-recent-prior rule the EventStore
    uses for grades — the paper's three projects converge on timestamp-
    pinned consistency from different directions.
    """

    def __init__(self, database: WebLabDatabase, pagestore: PageStore):
        self.database = database
        self.pagestore = pagestore

    def get(self, url: str, as_of: float) -> RetroPage:
        """The page as it was at ``as_of``; raises if never captured by then."""
        row = self.database.page_as_of(url, as_of)
        if row is None:
            raise WebLabError(f"no capture of {url!r} at or before {as_of}")
        content = self.pagestore.get(row["content_hash"])
        outlinks = [
            dst
            for _, dst in self.database.db.query(
                "SELECT src_url, dst_url FROM links "
                "WHERE crawl_index = ? AND src_url = ?",
                (row["crawl_index"], url),
            )
        ]
        return RetroPage(
            url=url,
            as_of=as_of,
            fetched_at=row["fetched_at"],
            crawl_index=row["crawl_index"],
            content=content,
            outlinks=tuple(outlinks),
        )

    def navigate(self, url: str, as_of: float, link_index: int) -> RetroPage:
        """Follow the n-th outlink, staying pinned at the same date."""
        page = self.get(url, as_of)
        if not 0 <= link_index < len(page.outlinks):
            raise WebLabError(
                f"{url!r} has {len(page.outlinks)} outlinks; no index {link_index}"
            )
        return self.get(page.outlinks[link_index], as_of)

    def history(self, url: str) -> List[float]:
        """All capture times of a URL, oldest first (the time-slice axis)."""
        return self.database.captures_of(url)

    def diff_times(self, url: str) -> List[Tuple[float, str]]:
        """(capture time, content hash) pairs — where the page changed."""
        rows = self.database.db.query(
            "SELECT fetched_at, content_hash FROM pages WHERE url = ? "
            "ORDER BY fetched_at",
            (url,),
        )
        return [(row["fetched_at"], row["content_hash"]) for row in rows]
