"""Post-reconstruction pass.

"In addition to the reconstructed data files, post-reconstruction values
are also produced and stored.  These values depend on statistics gathered
from the reconstructed data, and so cannot be calculated until after
reconstruction.  There are typically a dozen ASUs per event in the
post-reconstruction data."

The pass is therefore two-phase by construction: first a run-statistics
sweep over all reconstructed events, then a per-event derivation of twelve
small ASUs normalized against those run statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.errors import SearchError
from repro.core.provenance import ProvenanceStamp
from repro.cleo.reconstruction import tracks_of
from repro.eventstore.arrays import array_asu
from repro.eventstore.model import Event
from repro.eventstore.provenance import stamp_step

# The dozen post-reconstruction ASUs.
POSTRECON_ASUS = (
    "multiplicity",
    "meanChi2",
    "maxChi2",
    "slopeSpread",
    "interceptSpread",
    "eventShape",
    "vertexEstimate",
    "momentumProxy",
    "qualityFlag",
    "multiplicityZ",   # multiplicity z-score against run statistics
    "chi2Z",           # chi2 z-score against run statistics
    "runNormFactor",
)


@dataclass(frozen=True)
class RunStatistics:
    """Statistics gathered from one run's reconstructed data."""

    run_number: int
    n_events: int
    mean_multiplicity: float
    std_multiplicity: float
    mean_chi2: float
    std_chi2: float

    @classmethod
    def gather(cls, run_number: int, recon_events: Sequence[Event]) -> "RunStatistics":
        if not recon_events:
            raise SearchError(f"run {run_number}: no reconstructed events")
        multiplicities = []
        chi2_means = []
        for event in recon_events:
            tracks = tracks_of(event)
            multiplicities.append(tracks.shape[0])
            chi2_means.append(float(tracks[:, 2].mean()))
        multiplicities = np.asarray(multiplicities, dtype=np.float64)
        chi2_means = np.asarray(chi2_means, dtype=np.float64)
        return cls(
            run_number=run_number,
            n_events=len(recon_events),
            mean_multiplicity=float(multiplicities.mean()),
            std_multiplicity=float(max(multiplicities.std(), 1e-9)),
            mean_chi2=float(chi2_means.mean()),
            std_chi2=float(max(chi2_means.std(), 1e-9)),
        )


class PostReconstructor:
    """Derives the dozen post-recon ASUs for each event of a run."""

    def __init__(self, release: str):
        if not release:
            raise SearchError("post-reconstruction release must be non-empty")
        self.release = release

    @property
    def version(self) -> str:
        return f"PostRecon_{self.release}"

    def derive_event(self, recon_event: Event, stats: RunStatistics) -> Event:
        tracks = tracks_of(recon_event)
        n_tracks = tracks.shape[0]
        x0 = tracks[:, 0]
        slopes = tracks[:, 1]
        chi2 = tracks[:, 2]
        mean_chi2 = float(chi2.mean())
        values = {
            "multiplicity": float(n_tracks),
            "meanChi2": mean_chi2,
            "maxChi2": float(chi2.max()),
            "slopeSpread": float(slopes.std()),
            "interceptSpread": float(x0.std()),
            # A crude sphericity proxy: spread of intercepts over spread of slopes.
            "eventShape": float(x0.std() / (slopes.std() + 1e-6)),
            "vertexEstimate": float(x0.mean()),
            "momentumProxy": float(np.abs(slopes).mean()),
            "qualityFlag": float(1.0 if mean_chi2 < 3.0 else 0.0),
            "multiplicityZ": float(
                (n_tracks - stats.mean_multiplicity) / stats.std_multiplicity
            ),
            "chi2Z": float((mean_chi2 - stats.mean_chi2) / stats.std_chi2),
            "runNormFactor": float(stats.mean_multiplicity),
        }
        asus = {
            name: array_asu(name, np.array([values[name]], dtype=np.float32))
            for name in POSTRECON_ASUS
        }
        return Event(
            run_number=recon_event.run_number,
            event_number=recon_event.event_number,
            asus=asus,
        )

    def process_run(
        self,
        run_number: int,
        recon_events: Sequence[Event],
        recon_stamp: ProvenanceStamp,
    ) -> Tuple[List[Event], RunStatistics, ProvenanceStamp]:
        """The two-phase pass: gather statistics, then derive per event."""
        stats = RunStatistics.gather(run_number, recon_events)
        derived = [self.derive_event(event, stats) for event in recon_events]
        stamp = stamp_step(
            module="PassPostRecon",
            release=self.release,
            params={
                "meanMultiplicity": round(stats.mean_multiplicity, 6),
                "meanChi2": round(stats.mean_chi2, 6),
            },
            parents=[recon_stamp],
        )
        return derived, stats, stamp
