"""Monte-Carlo simulation matched to data runs.

"Generation of Monte-Carlo simulation data for each run" — MC events are
generated against a run's conditions with a known generator truth, using
the same detector model as real data but a separate random stream.  The
paper notes MC is produced *offsite* and shipped back on USB disks into a
personal EventStore; :func:`produce_offsite_mc` packages exactly that
workflow for the pipeline and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.core.provenance import ProvenanceStamp
from repro.cleo.detector import Detector, EventTruth
from repro.eventstore.model import Event, Run
from repro.eventstore.provenance import stamp_step
from repro.eventstore.scales import PersonalEventStore


@dataclass
class MonteCarloProducer:
    """One release of the MC generator, bound to a detector model."""

    detector: Detector
    release: str
    events_per_data_event: float = 1.0

    @property
    def version(self) -> str:
        return f"MC_{self.release}"

    def generate_for_run(
        self, run: Run, seed: int
    ) -> Tuple[List[Event], List[EventTruth], ProvenanceStamp]:
        """MC sample sized relative to the run's recorded event count."""
        rng = np.random.default_rng(seed)
        count = max(1, int(run.event_count * self.events_per_data_event))
        events: List[Event] = []
        truths: List[EventTruth] = []
        for event_number in range(count):
            event, truth = self.detector.generate_event(run.number, event_number, rng)
            events.append(event)
            truths.append(truth)
        stamp = stamp_step(
            module="MCGen",
            release=self.release,
            params={"run": run.number, "seed": seed, "ratio": self.events_per_data_event},
        )
        return events, truths, stamp


def produce_offsite_mc(
    producer: MonteCarloProducer,
    runs: List[Run],
    staging_dir: Union[str, Path],
    site: str,
    base_seed: int = 0,
) -> PersonalEventStore:
    """Generate MC at a remote site into a fresh personal EventStore.

    "We are implementing a system where these data are stored in a personal
    EventStore as they are produced, shipped to Cornell on USB disks, and
    merged into the collaboration EventStore."  The returned store is the
    thing that goes on the disk; merging it is the caller's (or the
    shipping lane's) job.
    """
    store = PersonalEventStore(Path(staging_dir) / f"mc-{site}", name=f"mc-{site}")
    for index, run in enumerate(runs):
        events, _, stamp = producer.generate_for_run(run, seed=base_seed + index)
        store.register_run(run)
        store.inject(run, events, producer.version, "mc", stamp)
    return store
