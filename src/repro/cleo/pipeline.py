"""Figure 2, executable: the CLEO data flow end to end.

Acquisition → reconstruction → post-reconstruction → offsite Monte Carlo
(shipped back and merged) → grade assignment → pinned physics analysis,
with every arrow carried by the core dataflow engine so stage volumes and
CPU are accounted, and every artifact stored in a real EventStore on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union


from repro.cleo.analysis import AnalysisJob, AnalysisResult
from repro.cleo.calibration import perfect_calibration, true_misalignment
from repro.cleo.detector import Detector, DetectorConfig
from repro.cleo.montecarlo import MonteCarloProducer, produce_offsite_mc
from repro.cleo.postrecon import PostReconstructor
from repro.cleo.reconstruction import Reconstructor
from repro.core.dataflow import DataFlow, StageFn, structural_stub
from repro.core.dataset import Dataset
from repro.core.deltas import WindowLedger
from repro.core.engine import Engine, FlowReport
from repro.core.errors import IncrementalError
from repro.core.faults import FaultInjector, FaultPlan
from repro.core.recovery import RetryPolicy
from repro.core.stagecache import StageCache
from repro.core.telemetry import Telemetry, write_event_log
from repro.core.units import DataSize
from repro.eventstore.hsm_store import HsmEventStore
from repro.eventstore.merge import merge_into
from repro.eventstore.model import Run, run_key
from repro.eventstore.provenance import stamp_step
from repro.eventstore.scales import CollaborationEventStore


@dataclass
class CleoPipelineConfig:
    """Laptop-scale parameters with the full-scale projection factor."""

    n_runs: int = 3
    events_scale: float = 0.0005
    recon_release: str = "Feb13_04_P2"
    postrecon_release: str = "Mar02_04_A1"
    mc_release: str = "Gen_03"
    grade: str = "physics"
    grade_timestamp: float = 1000.0
    # Store the collaboration data in an HSM ("most of the data are stored
    # in a hierarchical storage management system"); the cache size
    # determines how much analysis traffic pages against tape.
    use_hsm: bool = False
    hsm_cache: DataSize = field(default_factory=lambda: DataSize.megabytes(1))
    # Engine stage concurrency: Figure 2 is a genuine DAG (the offsite
    # Monte Carlo runs beside the reconstruction chain), so workers > 1
    # overlaps those branches while reporting identical accounting.
    # ``executor`` additionally picks where the per-run reconstruction
    # batch fans out: ``"thread"`` (default) or ``"process"`` — the
    # paper's farm of independent reconstruction workers fed from the
    # central store.
    workers: int = 1
    executor: str = "thread"
    seed: int = 11


@dataclass
class CleoPipelineReport:
    """Volumes, analysis outcome, and the flow-engine accounting."""

    config: CleoPipelineConfig
    flow_report: FlowReport
    store_root: Path
    runs: List[Run]
    sizes_by_kind: Dict[str, DataSize]
    analysis: AnalysisResult
    storage: Optional[dict] = None  # HSM cache/recall stats when use_hsm

    @property
    def total_stored(self) -> DataSize:
        return DataSize(sum(size.bytes for size in self.sizes_by_kind.values()))

    def projected_total(self, full_runs: int = 10_000) -> DataSize:
        """Project laptop volumes to survey scale (the ">90 TB" claim).

        Scales by the event down-sampling factor and from ``n_runs`` to the
        experiment's full run count.
        """
        factor = (1.0 / self.config.events_scale) * (full_runs / self.config.n_runs)
        return DataSize(self.total_stored.bytes * factor)

    def summary_rows(self) -> List[Dict[str, object]]:
        rows = self.flow_report.summary_rows()
        rows.append(
            {
                "stage": "TOTAL STORED",
                "site": "Cornell",
                "in": "",
                "out": str(self.total_stored),
                "cpu": str(self.flow_report.total_cpu_time),
            }
        )
        return rows


def _cache_fingerprint(config: CleoPipelineConfig) -> Dict[str, object]:
    """Stage ``cache_params`` for the Figure-2 flow.

    As with Figure 1, every config parameter invalidates the cache except
    ``workers`` and ``executor`` — stage outputs are invariant to worker
    count and shard executor.
    """
    return {"pipeline": repr(replace(config, workers=1, executor="thread"))}


def _shard_fingerprint(config: CleoPipelineConfig) -> Dict[str, object]:
    """Shard-level ``cache_params``: the config minus the run count.

    Run generation is prefix-stable (run *i* is seeded from
    ``config.seed + i`` regardless of ``n_runs``), so per-run
    reconstruction shards computed by a shorter window replay verbatim
    when later windows append runs to the open dataset.
    """
    return {
        "pipeline": repr(replace(config, workers=1, executor="thread", n_runs=0))
    }


def figure2_flow(
    transforms: Optional[Mapping[str, StageFn]] = None,
    cache_params: Optional[Mapping[str, object]] = None,
) -> DataFlow:
    """Build the Figure-2 flow graph: the single construction site.

    :func:`run_cleo_pipeline` binds its transform closures here; static
    tooling (:mod:`repro.analysis.flowcheck`, rendering, tests) calls it
    bare and gets the same topology with
    :func:`~repro.core.dataflow.structural_stub` transforms that raise
    if executed, so the checked graph is the executed graph.
    """
    transforms = dict(transforms or {})

    def fn(name: str) -> StageFn:
        return transforms.get(name) or structural_stub(name)

    flow = DataFlow("cleo-figure2")
    flow.stage("acquisition", fn("acquisition"), site="CESR/CLEO",
               description="runs of collision measurements",
               cache_params=cache_params)
    flow.stage("reconstruction", fn("reconstruction"), site="Cornell",
               cpu_seconds_per_gb=2000, description="track fitting per run",
               cache_params=cache_params)
    flow.stage("post-reconstruction", fn("post-reconstruction"), site="Cornell",
               cpu_seconds_per_gb=300, description="run-statistics pass + dozen ASUs",
               cache_params=cache_params)
    flow.stage("monte-carlo", fn("monte-carlo"), site="offsite",
               cpu_seconds_per_gb=3000, description="MC generation, USB-disk merge",
               cache_params=cache_params)
    flow.stage("physics-analysis", fn("physics-analysis"), site="Cornell/remote",
               cpu_seconds_per_gb=100, description="pinned grade+timestamp analysis",
               cache_params=cache_params)
    flow.chain("acquisition", "reconstruction", "post-reconstruction")
    flow.connect("acquisition", "monte-carlo", label="run conditions")
    flow.connect("post-reconstruction", "physics-analysis")
    flow.connect("monte-carlo", "physics-analysis", label="simulation")
    return flow


# Module-level (not a closure) so it can cross a process boundary under
# ``executor="process"``.  A Reconstructor is a plain dataclass (detector
# geometry, calibration, release tag) and an event batch is plain data, so
# one task tuple carries everything a farm worker needs — the parent owns
# all EventStore traffic on both sides of the shard.
def _reconstruct_run_shard(task):
    reconstructor, events, stamp = task
    return reconstructor.reconstruct_run(events, stamp)


def run_cleo_pipeline(
    workdir: Union[str, Path],
    config: Optional[CleoPipelineConfig] = None,
    cache: Optional[StageCache] = None,
    faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    retry: Optional[RetryPolicy] = None,
) -> CleoPipelineReport:
    """Run the whole Figure-2 flow into ``workdir``; returns the report.

    With a shared :class:`~repro.core.stagecache.StageCache`, reruns of an
    unchanged configuration replay stage results (datasets, stashes, CPU
    charges) without recomputing; each stage stashes the event products it
    injected into the store, so a later cache *miss* downstream of a hit
    lazily re-injects exactly the products its ancestors would have
    written.

    ``faults`` aims a :class:`~repro.core.faults.FaultPlan` (or an
    already-armed injector, the resume idiom) at the engine's stage
    attempts (scope ``"stage"``, targets ``"cleo-figure2/<stage>"``).
    Engine crash faults strike *before* a transform runs, so a retried
    attempt never sees a half-injected EventStore.  ``retry`` is the
    engine-wide :class:`~repro.core.recovery.RetryPolicy`.
    """
    config = config if config is not None else CleoPipelineConfig()
    workdir = Path(workdir)
    detector_config = DetectorConfig()
    misalignment = true_misalignment(detector_config.n_planes, 0.2, seed=config.seed)
    detector = Detector(detector_config, misalignment)
    calibration = perfect_calibration(misalignment, version=f"cal_{config.recon_release}")
    reconstructor = Reconstructor(detector_config, calibration, config.recon_release)
    postrecon = PostReconstructor(config.postrecon_release)
    mc_producer = MonteCarloProducer(detector, config.mc_release)

    if config.use_hsm:
        store = HsmEventStore(
            workdir / "collab",
            cache_capacity=config.hsm_cache,
            scale="collaboration",
            name="cleo-collab",
        )
    else:
        store = CollaborationEventStore(workdir / "collab", name="cleo-collab")
    def kind_size(kind: str) -> DataSize:
        return DataSize.from_bytes(float(
            store.db.query_value(
                "SELECT coalesce(sum(size_bytes), 0) FROM files WHERE kind = ?",
                (kind,),
            )
        ))

    # Stages that executed (and therefore wrote their products into this
    # run's store).  A stage serviced from the cache leaves the store
    # untouched; its products live in the cached stash instead.
    injected: set = set()

    def restore_products(ctx, stage_names):
        """Re-inject products of cache-hit ancestors a miss depends on.

        Idempotent per stage; only needed when an upstream stage hit while
        this one missed (e.g. after an eviction), so the store lacks the
        files this stage is about to read.
        """
        for name in stage_names:
            if name in injected:
                continue
            for run, events, version, kind, stamp in ctx.dep_stash(name)["products"]:
                store.inject(run, events, version, kind, stamp, admin=True)
            injected.add(name)

    def acquire(inputs, ctx):
        runs: List[Run] = []
        products = []
        total = 0.0
        for index in range(config.n_runs):
            run, events, _ = detector.generate_run(
                run_number=index + 1,
                start_time=100.0 * (index + 1),
                seed=config.seed + index,
                events_scale=config.events_scale,
            )
            stamp = stamp_step("DAQ", "daq_v3", {"run": run.number})
            store.inject(run, events, "Raw_daq_v3", "raw", stamp, admin=True)
            runs.append(run)
            products.append((run, events, "Raw_daq_v3", "raw", stamp))
            total += sum(event.size.bytes for event in events)
        injected.add("acquisition")
        ctx.stash["runs"] = runs
        ctx.stash["products"] = products
        ctx.stash["kind_size"] = kind_size("raw")
        return Dataset("raw-runs", DataSize(total), version="Raw_daq_v3",
                       attrs={"runs": config.n_runs})

    def reconstruct(inputs, ctx):
        """Track fitting per run, fanned out as the paper's farm batch.

        The parent (this transform) owns all store traffic: it reads each
        run's raw events from the central store, hands ``(reconstructor,
        events, stamp)`` tasks to the engine's shard pool — threads or
        worker processes per ``config.executor`` — and injects the results
        back in run order, so the store contents and accounting are
        byte-identical for any worker count or executor.
        """
        restore_products(ctx, ["acquisition"])
        runs = ctx.dep_stash("acquisition")["runs"]
        tasks = []
        for run in runs:
            raw_file = store.open_file(run.number, "Raw_daq_v3", "raw")
            tasks.append((reconstructor, list(raw_file.events()), raw_file.stamp))
        shard_results = ctx.map_shards(
            _reconstruct_run_shard,
            tasks,
            cache_keys=[f"recon|run{run.number:04d}" for run in runs],
            cache_params=_shard_fingerprint(config),
        )
        products = []
        total = 0.0
        for run, (recon_events, stamp) in zip(runs, shard_results):
            store.inject(run, recon_events, reconstructor.version, "recon",
                         stamp, admin=True)
            products.append((run, recon_events, reconstructor.version, "recon", stamp))
            total += sum(event.size.bytes for event in recon_events)
        injected.add("reconstruction")
        ctx.stash["products"] = products
        ctx.stash["kind_size"] = kind_size("recon")
        return Dataset("recon-runs", DataSize(total), version=reconstructor.version)

    def post_reconstruct(inputs, ctx):
        restore_products(ctx, ["acquisition", "reconstruction"])
        runs = ctx.dep_stash("acquisition")["runs"]
        products = []
        total = 0.0
        for run in runs:
            recon_file = store.open_file(run.number, reconstructor.version, "recon")
            derived, _, stamp = postrecon.process_run(
                run.number, recon_file.read_all(), recon_file.stamp
            )
            store.inject(run, derived, postrecon.version, "postrecon", stamp, admin=True)
            products.append((run, derived, postrecon.version, "postrecon", stamp))
            total += sum(event.size.bytes for event in derived)
        injected.add("post-reconstruction")
        ctx.stash["products"] = products
        ctx.stash["kind_size"] = kind_size("postrecon")
        return Dataset("postrecon-runs", DataSize(total), version=postrecon.version)

    def monte_carlo(inputs, ctx):
        runs = ctx.dep_stash("acquisition")["runs"]
        personal = produce_offsite_mc(
            mc_producer, runs, workdir / "offsite", site="remote-u",
            base_seed=config.seed + 1000,
        )
        merge_into(personal, store)
        personal.close()
        products = []
        for run in runs:
            mc_file = store.open_file(run.number, mc_producer.version, "mc")
            products.append(
                (run, mc_file.read_all(), mc_producer.version, "mc", mc_file.stamp)
            )
        injected.add("monte-carlo")
        ctx.stash["products"] = products
        ctx.stash["kind_size"] = kind_size("mc")
        return Dataset(
            "mc-runs", ctx.stash["kind_size"], version=mc_producer.version
        )

    def grade_and_analyze(inputs, ctx):
        restore_products(
            ctx,
            ["acquisition", "reconstruction", "post-reconstruction", "monte-carlo"],
        )
        runs = ctx.dep_stash("acquisition")["runs"]
        assignments = {run_key(run.number): reconstructor.version for run in runs}
        store.assign_grade(config.grade, config.grade_timestamp, assignments, admin=True)
        job = AnalysisJob(
            "trackSpread", store, config.grade, config.grade_timestamp + 1.0
        )
        result = job.run()
        injected.add("physics-analysis")
        ctx.stash["analysis"] = result
        ctx.stash["storage"] = store.storage_report() if config.use_hsm else None
        return Dataset(
            "analysis-products",
            DataSize.from_bytes(float(result.histogram.counts.nbytes)),
            version=f"Analysis_iter{result.iteration}",
            attrs={"selected": result.events_selected},
        )

    flow = figure2_flow(
        transforms={
            "acquisition": acquire,
            "reconstruction": reconstruct,
            "post-reconstruction": post_reconstruct,
            "monte-carlo": monte_carlo,
            "physics-analysis": grade_and_analyze,
        },
        cache_params=_cache_fingerprint(config),
    )

    flow_report = Engine(
        seed=config.seed,
        max_workers=config.workers,
        executor=config.executor,
        cache=cache,
        retry=retry,
        faults=faults,
    ).run(flow)
    write_event_log(workdir / "telemetry.jsonl", flow_report.events)
    stashes = flow_report.stashes

    # Cache-hit stages never touched this run's store; re-inject their
    # products and the pinned grade so the persisted EventStore matches a
    # cold run's (downstream consumers replay analyses from store_root).
    for name in ("acquisition", "reconstruction", "post-reconstruction",
                 "monte-carlo"):
        if name in injected:
            continue
        for run, events, version, kind, stamp in stashes[name]["products"]:
            store.inject(run, events, version, kind, stamp, admin=True)
        injected.add(name)
    if "physics-analysis" not in injected:
        store.assign_grade(
            config.grade,
            config.grade_timestamp,
            {
                run_key(run.number): reconstructor.version
                for run in stashes["acquisition"]["runs"]
            },
            admin=True,
        )

    sizes_by_kind: Dict[str, DataSize] = {
        "raw": stashes["acquisition"]["kind_size"],
        "recon": stashes["reconstruction"]["kind_size"],
        "postrecon": stashes["post-reconstruction"]["kind_size"],
        "mc": stashes["monte-carlo"]["kind_size"],
    }

    report = CleoPipelineReport(
        config=config,
        flow_report=flow_report,
        store_root=store.root,
        runs=stashes["acquisition"]["runs"],
        sizes_by_kind=sizes_by_kind,
        analysis=stashes["physics-analysis"]["analysis"],
        storage=stashes["physics-analysis"]["storage"],
    )
    store.close()
    return report


# -- incremental (windowed) execution --------------------------------------
@dataclass
class CleoWindowReport:
    """One run-append window of an incremental Figure-2 run."""

    index: int
    watermark: float
    new_runs: int
    runs_seen: int
    report: CleoPipelineReport
    stage_hits: int = 0
    stage_misses: int = 0
    shard_hits: int = 0
    shard_misses: int = 0


@dataclass
class CleoIncrementalReport:
    """A Figure-2 production as a sequence of run-append windows."""

    config: CleoPipelineConfig
    windows: List[CleoWindowReport]
    ledger: WindowLedger
    telemetry: Telemetry

    @property
    def final(self) -> CleoPipelineReport:
        """The last window's report — the whole production, byte-identical
        (canonical accounting, EventStore contents) to one cold batch."""
        return self.windows[-1].report


def run_cleo_incremental(
    workdir: Union[str, Path],
    config: Optional[CleoPipelineConfig] = None,
    arrivals: Optional[Sequence[int]] = None,
    cache: Optional[StageCache] = None,
    telemetry: Optional[Telemetry] = None,
) -> CleoIncrementalReport:
    """Run Figure 2 incrementally: runs append to the open dataset.

    ``arrivals`` lists how many new runs land per window (default one per
    window) and must sum to ``config.n_runs``.  Each window replays the
    flow over all runs seen so far against the shared stage cache; the
    per-run reconstruction batch recomputes only appended runs (shard
    hits cover the rest), mirroring CLEO's staged production where
    reprocessing sweeps reuse everything unchanged.  Every window builds
    a fresh EventStore under ``workdir/window<i>``, so the final window's
    store is exactly the store a cold batch run would have built.
    """
    config = config if config is not None else CleoPipelineConfig()
    if arrivals is None:
        arrivals = [1] * config.n_runs
    arrivals = [int(count) for count in arrivals]
    if any(count < 0 for count in arrivals):
        raise IncrementalError(f"negative arrival counts: {arrivals}")
    if sum(arrivals) != config.n_runs:
        raise IncrementalError(
            f"arrivals {arrivals} sum to {sum(arrivals)}, "
            f"expected n_runs={config.n_runs}"
        )
    workdir = Path(workdir)
    cache = cache if cache is not None else StageCache()
    bus = telemetry if telemetry is not None else Telemetry()
    ledger = WindowLedger("cleo-figure2", bus)
    windows: List[CleoWindowReport] = []
    seen = 0
    for index, count in enumerate(arrivals):
        seen += count
        before = (
            cache.hits, cache.misses, cache.shard_hits, cache.shard_misses,
        )
        ledger.open(float(index + 1), arrivals=count, runs=seen)
        report = run_cleo_pipeline(
            workdir / f"window{index:02d}",
            replace(config, n_runs=seen),
            cache=cache,
        )
        ledger.close(
            arrivals=count,
            runs=seen,
            events_selected=report.analysis.events_selected,
            cpu_seconds=report.flow_report.total_cpu_time.seconds,
            bytes=report.flow_report.total_output.bytes,
        )
        windows.append(
            CleoWindowReport(
                index=index,
                watermark=float(index + 1),
                new_runs=count,
                runs_seen=seen,
                report=report,
                stage_hits=cache.hits - before[0],
                stage_misses=cache.misses - before[1],
                shard_hits=cache.shard_hits - before[2],
                shard_misses=cache.shard_misses - before[3],
            )
        )
    return CleoIncrementalReport(
        config=config, windows=windows, ledger=ledger, telemetry=bus
    )
