"""Detector calibration data.

Calibration is the canonical "input that might affect the results" in the
paper's versioning discussion: the version identifier's date reflects "the
most recent change to the software or inputs to the reconstruction (e.g.,
calibration data)".  A :class:`CalibrationSet` carries per-wire-plane
position offsets; reconstruction subtracts them, so reconstructing with the
wrong calibration version produces measurably biased tracks — which is how
the provenance experiments detect drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import EventStoreError


@dataclass(frozen=True)
class CalibrationSet:
    """Per-plane alignment offsets, identified by a version tag."""

    version: str
    offsets: np.ndarray  # shape (n_planes,), cm

    def __post_init__(self) -> None:
        if not self.version:
            raise EventStoreError("calibration version must be non-empty")
        if self.offsets.ndim != 1:
            raise EventStoreError("calibration offsets must be one-dimensional")
        object.__setattr__(self, "offsets", np.asarray(self.offsets, dtype=np.float64))

    @property
    def n_planes(self) -> int:
        return int(self.offsets.shape[0])

    def apply(self, hit_positions: np.ndarray) -> np.ndarray:
        """Correct measured positions (subtract the known misalignment).

        ``hit_positions`` has planes along its last axis.
        """
        if hit_positions.shape[-1] != self.n_planes:
            raise EventStoreError(
                f"hits cover {hit_positions.shape[-1]} planes, calibration knows "
                f"{self.n_planes}"
            )
        return hit_positions - self.offsets


def true_misalignment(n_planes: int, scale_cm: float, seed: int) -> np.ndarray:
    """The detector's actual plane misalignment (what calibration estimates)."""
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, scale_cm, size=n_planes)


def perfect_calibration(misalignment: np.ndarray, version: str) -> CalibrationSet:
    """A calibration that exactly cancels the misalignment."""
    return CalibrationSet(version=version, offsets=misalignment.copy())


def degraded_calibration(
    misalignment: np.ndarray, version: str, error_cm: float, seed: int = 0
) -> CalibrationSet:
    """A calibration with residual error (an earlier, cruder pass)."""
    rng = np.random.default_rng(seed)
    return CalibrationSet(
        version=version,
        offsets=misalignment + rng.normal(0.0, error_cm, size=misalignment.shape),
    )
