"""Quality thresholds for the CLEO event-reconstruction channel.

What "healthy" means for detector-data reconstruction: the pass
completed, essentially nothing was served from a degraded fallback
(physics results must not silently come from fallback calibrations,
hence the tighter degraded band than Arecibo's), and uploads into the
archive landed promptly so downstream skims see fresh runs.
"""

from __future__ import annotations

from repro.ops.dashboard import MetricSpec, QualitySpec

#: Threshold bands for ``cleo*`` flows.
CLEO_QUALITY = QualitySpec(
    channel="cleo",
    flow_pattern="cleo*",
    metrics=(
        MetricSpec(
            metric="completeness",
            label="stage completeness",
            unit="%",
            higher_is_better=True,
            green=0.95,
            yellow=0.90,
        ),
        MetricSpec(
            metric="degraded_rate",
            label="degraded-finish rate",
            unit="%",
            higher_is_better=False,
            green=0.02,
            yellow=0.10,
        ),
        MetricSpec(
            metric="upload_lag_s",
            label="worst archive-upload lag",
            unit="s",
            higher_is_better=False,
            green=600.0,
            yellow=3600.0,
        ),
        MetricSpec(
            metric="retries",
            label="stage retries",
            higher_is_better=False,
            green=0.0,
            yellow=5.0,
        ),
    ),
)


def quality_spec() -> QualitySpec:
    """The channel spec :func:`repro.ops.default_quality_specs` mounts."""
    return CLEO_QUALITY


__all__ = ("CLEO_QUALITY", "quality_spec")
