"""Physics analysis over the EventStore.

An analysis is pinned to (grade, timestamp): "a physicist will usually
specify physics grade data and use the date the analysis project started
[...] so that the same consistent version will be used throughout the
lifetime of the project."  :class:`AnalysisJob` reads the consistent event
set, applies selection cuts, and fills a histogram; re-running with the
same pin reproduces the result bit-for-bit even after reprocessing lands.

Analyses iterate ("the processes for reconstruction and physics analysis
require iterative refinement"): :meth:`AnalysisJob.refine` produces a new
job with tightened cuts whose provenance extends the previous iteration's.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.errors import EventStoreError
from repro.core.provenance import ProvenanceStamp
from repro.cleo.reconstruction import ASU_TRACKS, tracks_of
from repro.eventstore.partition import AccessProfile
from repro.eventstore.provenance import stamp_step
from repro.eventstore.store import EventStore


@dataclass(frozen=True)
class SelectionCuts:
    """Event-selection cuts for one analysis iteration."""

    min_tracks: int = 2
    max_mean_chi2: float = 5.0
    max_abs_slope: float = 0.05

    def accepts(self, tracks: np.ndarray) -> bool:
        if tracks.shape[0] < self.min_tracks:
            return False
        if float(tracks[:, 2].mean()) > self.max_mean_chi2:
            return False
        if float(np.abs(tracks[:, 1]).max()) > self.max_abs_slope:
            return False
        return True

    def tighten(self) -> "SelectionCuts":
        """One refinement step: stricter quality requirements."""
        return SelectionCuts(
            min_tracks=self.min_tracks,
            max_mean_chi2=self.max_mean_chi2 * 0.7,
            max_abs_slope=self.max_abs_slope * 0.9,
        )


@dataclass
class Histogram:
    """A fixed-binning 1-D histogram."""

    low: float
    high: float
    bins: int
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.high <= self.low or self.bins <= 0:
            raise EventStoreError("histogram needs high > low and bins > 0")
        if self.counts is None:
            self.counts = np.zeros(self.bins, dtype=np.int64)

    def fill(self, value: float) -> None:
        if value < self.low or value >= self.high:
            return
        index = int((value - self.low) / (self.high - self.low) * self.bins)
        self.counts[index] += 1

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def fingerprint(self) -> str:
        """Digest of the contents — the reproducibility check."""
        return hashlib.md5(self.counts.tobytes()).hexdigest()


@dataclass
class AnalysisResult:
    """Everything one analysis pass produces."""

    name: str
    grade: str
    timestamp: float
    iteration: int
    events_read: int
    events_selected: int
    histogram: Histogram
    stamp: ProvenanceStamp

    @property
    def efficiency(self) -> float:
        return self.events_selected / self.events_read if self.events_read else 0.0


class AnalysisJob:
    """One iteration of a physics analysis pinned to (grade, timestamp)."""

    def __init__(
        self,
        name: str,
        store: EventStore,
        grade: str,
        timestamp: float,
        cuts: Optional[SelectionCuts] = None,
        iteration: int = 1,
        parent_stamp: Optional[ProvenanceStamp] = None,
        access_profile: Optional[AccessProfile] = None,
    ):
        if iteration < 1:
            raise EventStoreError("analysis iterations count from 1")
        self.name = name
        self.store = store
        self.grade = grade
        self.timestamp = timestamp
        self.cuts = cuts if cuts is not None else SelectionCuts()
        self.iteration = iteration
        self.parent_stamp = parent_stamp
        # Optional shared profile: every analysis records its ASU working
        # set, which is what the hot/warm/cold partitioning is derived from
        # ("a column-wise split [...] based on usage patterns").
        self.access_profile = access_profile

    def run(self) -> AnalysisResult:
        """Read the pinned consistent set and fill the analysis histogram.

        The observable is a track-pair separation proxy: the spread of
        track intercepts in selected events.
        """
        if self.access_profile is not None:
            self.access_profile.record([ASU_TRACKS])
        histogram = Histogram(low=0.0, high=60.0, bins=60)
        events_read = 0
        events_selected = 0
        for event in self.store.events_for(
            self.grade, self.timestamp, "recon", asu_names=[ASU_TRACKS]
        ):
            events_read += 1
            tracks = tracks_of(event)
            if not self.cuts.accepts(tracks):
                continue
            events_selected += 1
            histogram.fill(float(tracks[:, 0].std() * 2.0))
        stamp = stamp_step(
            module=f"Analysis_{self.name}",
            release=f"iter{self.iteration}",
            params={
                "grade": self.grade,
                "timestamp": self.timestamp,
                "min_tracks": self.cuts.min_tracks,
                "max_mean_chi2": round(self.cuts.max_mean_chi2, 6),
                "max_abs_slope": round(self.cuts.max_abs_slope, 6),
            },
            parents=[self.parent_stamp] if self.parent_stamp is not None else (),
        )
        return AnalysisResult(
            name=self.name,
            grade=self.grade,
            timestamp=self.timestamp,
            iteration=self.iteration,
            events_read=events_read,
            events_selected=events_selected,
            histogram=histogram,
            stamp=stamp,
        )

    def refine(self, previous: AnalysisResult) -> "AnalysisJob":
        """Next iteration: tighter cuts, same pin, provenance chained."""
        return AnalysisJob(
            name=self.name,
            store=self.store,
            grade=self.grade,
            timestamp=self.timestamp,
            cuts=self.cuts.tighten(),
            iteration=self.iteration + 1,
            parent_stamp=previous.stamp,
            access_profile=self.access_profile,
        )

    def adopt_newer_data(self, new_timestamp: float) -> "AnalysisJob":
        """Explicitly move the pin ("the physicists have to explicitly
        change the analysis timestamp to a later date")."""
        if new_timestamp < self.timestamp:
            raise EventStoreError("analysis timestamps only move forward")
        return AnalysisJob(
            name=self.name,
            store=self.store,
            grade=self.grade,
            timestamp=new_timestamp,
            cuts=self.cuts,
            iteration=self.iteration,
            parent_stamp=self.parent_stamp,
        )
