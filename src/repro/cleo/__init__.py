"""The CLEO physics pipeline: synthetic detector, reconstruction,
post-reconstruction, Monte Carlo, analysis, and the Figure-2 flow."""

from repro.cleo.analysis import (
    AnalysisJob,
    AnalysisResult,
    Histogram,
    SelectionCuts,
)
from repro.cleo.calibration import (
    CalibrationSet,
    degraded_calibration,
    perfect_calibration,
    true_misalignment,
)
from repro.cleo.detector import (
    ASU_ADC,
    ASU_HITS,
    ASU_TRIGGER,
    Detector,
    DetectorConfig,
    EventTruth,
    TrackTruth,
    hits_of,
)
from repro.cleo.montecarlo import MonteCarloProducer, produce_offsite_mc
from repro.cleo.pipeline import (
    CleoIncrementalReport,
    CleoPipelineConfig,
    CleoPipelineReport,
    CleoWindowReport,
    run_cleo_incremental,
    run_cleo_pipeline,
)
from repro.cleo.postrecon import (
    POSTRECON_ASUS,
    PostReconstructor,
    RunStatistics,
)
from repro.cleo.reconstruction import (
    ASU_RECON_SUMMARY,
    ASU_TRACKS,
    Reconstructor,
    track_residual_bias,
    tracks_of,
)

__all__ = [
    "AnalysisJob",
    "AnalysisResult",
    "Histogram",
    "SelectionCuts",
    "CalibrationSet",
    "degraded_calibration",
    "perfect_calibration",
    "true_misalignment",
    "ASU_ADC",
    "ASU_HITS",
    "ASU_TRIGGER",
    "Detector",
    "DetectorConfig",
    "EventTruth",
    "TrackTruth",
    "hits_of",
    "MonteCarloProducer",
    "produce_offsite_mc",
    "CleoIncrementalReport",
    "CleoPipelineConfig",
    "CleoPipelineReport",
    "CleoWindowReport",
    "run_cleo_incremental",
    "run_cleo_pipeline",
    "POSTRECON_ASUS",
    "PostReconstructor",
    "RunStatistics",
    "ASU_RECON_SUMMARY",
    "ASU_TRACKS",
    "Reconstructor",
    "track_residual_bias",
    "tracks_of",
]
