"""Synthetic CLEO detector: collision events as wire-chamber hits.

The physics is deliberately simple but real: each collision event produces
a few charged tracks, each a straight line ``x(z) = x0 + slope * z``
crossing ``n_planes`` measure-wire planes.  The detector records, per
track and plane, the hit position smeared by wire resolution and biased by
the (uncalibrated) plane misalignment.  Reconstruction must undo both —
which gives calibration versions and provenance real teeth in the tests.

Runs follow the paper's parameters: 45–60 minutes, 15K–300K events each
(scaled down by ``events_scale`` for laptop runs, with the scale recorded
so volume accounting can be projected back up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.errors import EventStoreError
from repro.core.units import Duration
from repro.eventstore.arrays import array_asu, asu_array
from repro.eventstore.model import Event, Run

# Raw-event ASU names.
ASU_HITS = "hits"          # (n_tracks, n_planes) float32 measured positions
ASU_TRIGGER = "trigger"    # small trigger summary
ASU_ADC = "adc"            # bulk readout payload (sizes the raw data)


@dataclass(frozen=True)
class DetectorConfig:
    """Geometry and response of the synthetic detector."""

    n_planes: int = 8
    plane_spacing_cm: float = 10.0
    wire_resolution_cm: float = 0.05
    track_separation_cm: float = 6.0
    max_slope: float = 0.04
    mean_multiplicity: float = 4.0
    max_multiplicity: int = 12
    adc_bytes_per_track: int = 256

    def __post_init__(self) -> None:
        if self.n_planes < 3:
            raise EventStoreError("need at least 3 wire planes to fit tracks")
        if self.mean_multiplicity <= 0:
            raise EventStoreError("mean multiplicity must be positive")


@dataclass
class TrackTruth:
    """Generator-level parameters of one track."""

    x0: float
    slope: float


@dataclass
class EventTruth:
    """Generator-level record of one event (kept out of the data files)."""

    event_number: int
    tracks: List[TrackTruth]


class Detector:
    """Generates runs of raw events against a fixed plane misalignment."""

    def __init__(self, config: DetectorConfig, misalignment: np.ndarray):
        if misalignment.shape != (config.n_planes,):
            raise EventStoreError(
                f"misalignment must have shape ({config.n_planes},), "
                f"got {misalignment.shape}"
            )
        self.config = config
        self.misalignment = np.asarray(misalignment, dtype=np.float64)

    @property
    def plane_z(self) -> np.ndarray:
        return np.arange(self.config.n_planes) * self.config.plane_spacing_cm

    def _sample_multiplicity(self, rng: np.random.Generator) -> int:
        n = int(rng.poisson(self.config.mean_multiplicity))
        return int(np.clip(n, 1, self.config.max_multiplicity))

    def _sample_tracks(self, n_tracks: int, rng: np.random.Generator) -> List[TrackTruth]:
        # Tracks are spaced by at least track_separation so rank-order
        # matching in the reconstructor is well-posed for typical events.
        base = rng.uniform(-50.0, 50.0)
        offsets = np.cumsum(
            rng.uniform(self.config.track_separation_cm, 2 * self.config.track_separation_cm,
                        size=n_tracks)
        )
        slopes = rng.uniform(-self.config.max_slope, self.config.max_slope, size=n_tracks)
        return [
            TrackTruth(x0=float(base + offset), slope=float(slope))
            for offset, slope in zip(offsets, slopes)
        ]

    def measure(self, tracks: List[TrackTruth], rng: np.random.Generator) -> np.ndarray:
        """Hit positions (n_tracks, n_planes): truth + misalignment + smear."""
        z = self.plane_z
        truth = np.array(
            [[track.x0 + track.slope * plane_z for plane_z in z] for track in tracks]
        )
        smear = rng.normal(0.0, self.config.wire_resolution_cm, size=truth.shape)
        return (truth + self.misalignment + smear).astype(np.float32)

    def generate_event(
        self, run_number: int, event_number: int, rng: np.random.Generator
    ) -> Tuple[Event, EventTruth]:
        """One collision event plus its generator-level truth."""
        n_tracks = self._sample_multiplicity(rng)
        tracks = self._sample_tracks(n_tracks, rng)
        hits = self.measure(tracks, rng)
        trigger = np.array([n_tracks, run_number % 7], dtype=np.int32)
        adc = rng.integers(
            0, 256, size=n_tracks * self.config.adc_bytes_per_track, dtype=np.uint8
        )
        event = Event(
            run_number=run_number,
            event_number=event_number,
            asus={
                ASU_HITS: array_asu(ASU_HITS, hits),
                ASU_TRIGGER: array_asu(ASU_TRIGGER, trigger),
                ASU_ADC: array_asu(ASU_ADC, adc),
            },
        )
        return event, EventTruth(event_number=event_number, tracks=tracks)

    def generate_run(
        self,
        run_number: int,
        start_time: float,
        seed: int,
        events_scale: float = 0.001,
    ) -> Tuple[Run, List[Event], List[EventTruth]]:
        """A full run: 45–60 min, 15K–300K events scaled by ``events_scale``."""
        if not 0 < events_scale <= 1:
            raise EventStoreError("events_scale must be in (0, 1]")
        rng = np.random.default_rng(seed)
        duration = Duration.minutes(float(rng.uniform(45, 60)))
        nominal_events = int(rng.integers(15_000, 300_000))
        event_count = max(1, int(nominal_events * events_scale))
        events: List[Event] = []
        truths: List[EventTruth] = []
        for event_number in range(event_count):
            event, truth = self.generate_event(run_number, event_number, rng)
            events.append(event)
            truths.append(truth)
        run = Run.create(
            number=run_number,
            start_time=start_time,
            duration=duration,
            event_count=event_count,
            conditions={
                "beam_energy": "5.29GeV",
                "nominal_events": nominal_events,
                "events_scale": events_scale,
            },
        )
        return run, events, truths


def hits_of(event: Event) -> np.ndarray:
    """Decode the hits ASU of a raw event."""
    return asu_array(event.asu(ASU_HITS))
