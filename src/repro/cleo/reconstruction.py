"""Track reconstruction.

"A typical example is the identification of particle trajectories from the
energy levels recorded by measure wires."  The reconstructor takes raw hit
positions, applies the calibration correction, and least-squares fits a
straight track through each hit sequence.  Output events carry a ``tracks``
ASU (x0, slope, chi2 per track) and a small ``reconSummary`` ASU.

The reconstruction version string follows the paper's convention
(``Recon_<release>``), and the output provenance stamp extends the raw
stamp with the module, release, and calibration version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.errors import SearchError
from repro.core.provenance import ProvenanceStamp
from repro.cleo.calibration import CalibrationSet
from repro.cleo.detector import ASU_HITS, DetectorConfig
from repro.eventstore.arrays import array_asu, asu_array
from repro.eventstore.model import Event
from repro.eventstore.provenance import stamp_step

# Reconstructed-event ASU names.
ASU_TRACKS = "tracks"            # (n_tracks, 3) float32: x0, slope, chi2
ASU_RECON_SUMMARY = "reconSummary"  # (3,) float32: n_tracks, mean chi2, max |slope|


@dataclass
class Reconstructor:
    """One release of the reconstruction pass."""

    config: DetectorConfig
    calibration: CalibrationSet
    release: str

    @property
    def version(self) -> str:
        return f"Recon_{self.release}"

    def fit_tracks(self, hits: np.ndarray) -> np.ndarray:
        """Least-squares line fits, one per hit row.

        Returns (n_tracks, 3): intercept, slope, chi2 (per degree of
        freedom, against the nominal wire resolution).
        """
        if hits.ndim != 2 or hits.shape[1] != self.config.n_planes:
            raise SearchError(
                f"hits must be (n_tracks, {self.config.n_planes}), got {hits.shape}"
            )
        corrected = self.calibration.apply(hits.astype(np.float64))
        z = np.arange(self.config.n_planes) * self.config.plane_spacing_cm
        design = np.vstack([np.ones_like(z), z]).T  # (n_planes, 2)
        # Solve all tracks at once: design @ params.T = corrected.T
        params, *_ = np.linalg.lstsq(design, corrected.T, rcond=None)
        fitted = design @ params  # (n_planes, n_tracks)
        residuals = corrected.T - fitted
        dof = self.config.n_planes - 2
        chi2 = (residuals**2).sum(axis=0) / (
            dof * self.config.wire_resolution_cm**2
        )
        return np.vstack([params[0], params[1], chi2]).T.astype(np.float32)

    def reconstruct_event(self, raw_event: Event) -> Event:
        hits = asu_array(raw_event.asu(ASU_HITS))
        tracks = self.fit_tracks(hits)
        summary = np.array(
            [tracks.shape[0], float(tracks[:, 2].mean()), float(np.abs(tracks[:, 1]).max())],
            dtype=np.float32,
        )
        return Event(
            run_number=raw_event.run_number,
            event_number=raw_event.event_number,
            asus={
                ASU_TRACKS: array_asu(ASU_TRACKS, tracks),
                ASU_RECON_SUMMARY: array_asu(ASU_RECON_SUMMARY, summary),
            },
        )

    def reconstruct_run(
        self, raw_events: Iterable[Event], raw_stamp: ProvenanceStamp
    ) -> Tuple[List[Event], ProvenanceStamp]:
        """Reconstruct a whole run ("it always processes a run as a unit,
        [so] all events in a run have identical provenance")."""
        recon_events = [self.reconstruct_event(event) for event in raw_events]
        stamp = stamp_step(
            module="PassRecon",
            release=self.release,
            params={"calibration": self.calibration.version},
            parents=[raw_stamp],
        )
        return recon_events, stamp


def tracks_of(event: Event) -> np.ndarray:
    """Decode the tracks ASU of a reconstructed event."""
    return asu_array(event.asu(ASU_TRACKS))


def track_residual_bias(recon_events: Sequence[Event], truth_x0: Sequence[np.ndarray]) -> float:
    """Mean |fitted x0 - true x0| over a run — the calibration-quality metric."""
    total, count = 0.0, 0
    for event, truths in zip(recon_events, truth_x0):
        fitted = tracks_of(event)[:, 0]
        n = min(len(fitted), len(truths))
        total += float(np.abs(fitted[:n] - truths[:n]).sum())
        count += n
    if count == 0:
        raise SearchError("no tracks to compare")
    return total / count
