"""EventStore over hierarchical storage management.

"Most of the data are stored in a hierarchical storage management (HSM)
system (which automatically moves data between tape and disk cache)."

:class:`HsmEventStore` is an EventStore whose registered files live in an
HSM: injections write through to tape and leave the file cached; reads hit
the disk cache when the working set fits and pay a tape recall when it
does not.  The store's read paths are unchanged — only the
:meth:`~repro.eventstore.store.EventStore._touch_file` hook is overridden
— so analyses can be costed against realistic storage behaviour.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.units import DataSize, Duration
from repro.eventstore.store import EventStore
from repro.storage.hsm import HierarchicalStore
from repro.storage.media import LTO3_TAPE
from repro.storage.tape import RoboticTapeLibrary


class HsmEventStore(EventStore):
    """An EventStore whose files are managed by an HSM.

    Parameters
    ----------
    cache_capacity:
        Size of the disk cache in front of the tape robot.  Working sets
        larger than this page against tape — which is exactly why the
        hot/warm/cold partitioning (small hot files) pays off on HSM-backed
        collections.
    """

    def __init__(
        self,
        root: Union[str, Path],
        cache_capacity: DataSize,
        scale: str = "collaboration",
        name: Optional[str] = None,
        hsm: Optional[HierarchicalStore] = None,
    ):
        super().__init__(root, scale=scale, name=name)
        if hsm is None:
            library = RoboticTapeLibrary(f"{self.name}-robot", LTO3_TAPE)
            hsm = HierarchicalStore(library, cache_capacity=cache_capacity)
        self.hsm = hsm
        self.total_recall_time = Duration.zero()

    def inject(self, run, events, version, kind, stamp, admin=False,
               created_at=0.0) -> Path:
        path = super().inject(run, events, version, kind, stamp,
                              admin=admin, created_at=created_at)
        relative = str(path.relative_to(self.root))
        self.hsm.store(relative, DataSize.from_bytes(float(path.stat().st_size)))
        return path

    def _touch_file(self, row) -> None:
        """Serve the read through the HSM: cache hit or tape recall."""
        super()._touch_file(row)
        if not self.hsm.library.holds(row["path"]):
            # Files that arrived by merge rather than inject are archived
            # lazily on first access (write-through on the migration path).
            self.hsm.store(row["path"], DataSize.from_bytes(row["size_bytes"]))
            return
        _, elapsed = self.hsm.read(row["path"])
        self.total_recall_time += elapsed

    # -- reporting ---------------------------------------------------------
    def storage_report(self) -> dict:
        """Cache behaviour of the analysis traffic so far."""
        stats = self.hsm.stats
        return {
            "cache_hits": stats.hits,
            "tape_recalls": stats.misses,
            "hit_rate": stats.hit_rate,
            "bytes_recalled": stats.bytes_recalled,
            "recall_time_s": self.total_recall_time.seconds,
            "cartridges": self.hsm.library.cartridge_count,
        }
