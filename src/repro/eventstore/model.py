"""EventStore data model: runs, events, and atomic storage units.

From the paper:

* "A run is the set of records collected continuously over a period of
  time (typically between 45 and 60 minutes), under (nominally) constant
  detector conditions.  A run worth analyzing typically comprises between
  15K and 300K particle collision events."
* "An atomic storage unit (ASU) is the smallest storable sub-object of an
  event.  An ASU will never be split into component objects for storage
  purposes."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.errors import EventStoreError
from repro.core.units import DataSize, Duration

# Canonical data kinds flowing through Figure 2.
KIND_RAW = "raw"
KIND_RECON = "recon"
KIND_POSTRECON = "postrecon"
KIND_MC = "mc"
DATA_KINDS = (KIND_RAW, KIND_RECON, KIND_POSTRECON, KIND_MC)


@dataclass(frozen=True)
class Run:
    """One continuous data-taking period under constant conditions."""

    number: int
    start_time: float
    duration: Duration
    event_count: int
    conditions: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.number <= 0:
            raise EventStoreError(f"run numbers are positive, got {self.number}")
        if self.event_count < 0:
            raise EventStoreError("event count cannot be negative")

    @classmethod
    def create(
        cls,
        number: int,
        start_time: float,
        duration: Duration,
        event_count: int,
        conditions: Optional[Mapping[str, object]] = None,
    ) -> "Run":
        frozen = tuple(sorted((str(k), str(v)) for k, v in (conditions or {}).items()))
        return cls(
            number=number,
            start_time=start_time,
            duration=duration,
            event_count=event_count,
            conditions=frozen,
        )

    @property
    def condition_map(self) -> Dict[str, str]:
        return dict(self.conditions)


@dataclass
class ASU:
    """Atomic storage unit: a named, indivisible sub-object of an event."""

    name: str
    payload: bytes

    def __post_init__(self) -> None:
        if not self.name:
            raise EventStoreError("ASU name must be non-empty")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise EventStoreError(
                f"ASU payload must be bytes, got {type(self.payload).__name__}"
            )
        self.payload = bytes(self.payload)

    @property
    def size(self) -> DataSize:
        return DataSize.from_bytes(len(self.payload))


@dataclass
class Event:
    """One collision event: a run-scoped id plus its ASUs."""

    run_number: int
    event_number: int
    asus: Dict[str, ASU] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.event_number < 0:
            raise EventStoreError("event numbers are non-negative")
        for name, asu in self.asus.items():
            if name != asu.name:
                raise EventStoreError(
                    f"ASU keyed {name!r} but named {asu.name!r} in event "
                    f"{self.run_number}/{self.event_number}"
                )

    def add(self, asu: ASU) -> None:
        if asu.name in self.asus:
            raise EventStoreError(
                f"event {self.run_number}/{self.event_number} already has "
                f"ASU {asu.name!r}"
            )
        self.asus[asu.name] = asu

    def asu(self, name: str) -> ASU:
        try:
            return self.asus[name]
        except KeyError:
            raise EventStoreError(
                f"event {self.run_number}/{self.event_number} has no ASU {name!r}"
            ) from None

    def project(self, names: Iterable[str]) -> "Event":
        """A shallow copy carrying only the named ASUs (column projection)."""
        wanted = set(names)
        return Event(
            run_number=self.run_number,
            event_number=self.event_number,
            asus={name: asu for name, asu in self.asus.items() if name in wanted},
        )

    @property
    def size(self) -> DataSize:
        return DataSize.from_bytes(sum(len(asu.payload) for asu in self.asus.values()))

    @property
    def asu_names(self) -> List[str]:
        return sorted(self.asus)


def total_size(events: Iterable[Event]) -> DataSize:
    return DataSize.from_bytes(
        sum(len(asu.payload) for event in events for asu in event.asus.values())
    )


def run_key(run_number: int) -> str:
    """Grade-history key for a single run."""
    return f"run:{run_number}"


def run_range_key(first: int, last: int) -> str:
    """Grade-history key for an inclusive run range."""
    if first > last:
        raise EventStoreError(f"bad run range {first}-{last}")
    return f"runs:{first}-{last}"


def parse_run_key(key: str) -> Tuple[int, int]:
    """Expand a grade key into its inclusive (first, last) run interval."""
    if key.startswith("run:"):
        number = int(key[len("run:"):])
        return number, number
    if key.startswith("runs:"):
        first_text, _, last_text = key[len("runs:"):].partition("-")
        return int(first_text), int(last_text)
    raise EventStoreError(f"unrecognized run key {key!r}")
