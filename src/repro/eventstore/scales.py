"""The three EventStore sizes.

"In order to support a variety of use cases, the CLEO EventStore comes in
three sizes, tailored to the scale of the application: personal, group and
collaboration.  The only user interface differences between the three
sizes is the name of the software module loaded, which is also the first
word of all EventStore commands."

The classes below are exactly that: the same :class:`EventStore` behind
three module names, plus the factory :func:`open_store`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.errors import EventStoreError
from repro.eventstore.store import SCALES, EventStore


class PersonalEventStore(EventStore):
    """Self-contained store for one physicist's machine.

    "The personal EventStore was originally meant to manage user-selected
    subsets of the data on an external personal system such as a laptop or
    desktop [...] making the personal EventStore self-contained [...] and
    supporting completely disconnected operation."
    """

    def __init__(self, root: Union[str, Path], name: Optional[str] = None):
        super().__init__(root, scale="personal", name=name)


class GroupEventStore(EventStore):
    """Shared store for one analysis group; grows by merge."""

    def __init__(self, root: Union[str, Path], name: Optional[str] = None):
        super().__init__(root, scale="group", name=name)


class CollaborationEventStore(EventStore):
    """The centrally managed repository; officers assign grades."""

    def __init__(self, root: Union[str, Path], name: Optional[str] = None):
        super().__init__(root, scale="collaboration", name=name)


_SCALE_CLASSES = {
    "personal": PersonalEventStore,
    "group": GroupEventStore,
    "collaboration": CollaborationEventStore,
}


def open_store(
    root: Union[str, Path], scale: str = "personal", name: Optional[str] = None
) -> EventStore:
    """Open (or create) a store of the requested size."""
    try:
        cls = _SCALE_CLASSES[scale]
    except KeyError:
        raise EventStoreError(f"unknown scale {scale!r}; pick one of {SCALES}") from None
    return cls(root, name=name)
