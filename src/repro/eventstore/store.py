"""The EventStore: metadata, versioning, and consistent data access.

"EventStore is primarily a metadata and provenance system, designed to
simplify many common tasks of data analysis by relieving physicists of the
burden of data versioning and file management, while supporting legacy
data formats.  Data stored in the various formats are managed such that
physicists conducting analyses are always presented with a consistent set
of data and can recover exactly the versions of the data used previously."

One class implements all three sizes; see :mod:`repro.eventstore.scales`
for the personal/group/collaboration wrappers ("The only user interface
differences between the three sizes is the name of the software module
loaded, which is also the first word of all EventStore commands").
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.core.errors import EventStoreError
from repro.core.provenance import ProvenanceStamp
from repro.core.readcache import ReadCache
from repro.core.telemetry import MetricsRegistry, Telemetry, get_telemetry
from repro.core.units import DataSize, Duration
from repro.core.versioning import GradeHistory
from repro.db.connection import Database, SqliteBackend
from repro.db.schema import apply_schema
from repro.eventstore.fileformat import (
    EventFile,
    FileHeader,
    open_event_file,
    write_event_file,
)
from repro.eventstore.model import DATA_KINDS, Event, Run, parse_run_key
from repro.eventstore.schema import eventstore_schema

SCALES = ("personal", "group", "collaboration")


@dataclass
class IngestStats:
    """Write/read traffic counters for one store (a registry snapshot view)."""

    files_injected: int = 0
    events_injected: int = 0
    bytes_injected: float = 0.0
    files_opened: int = 0

    @classmethod
    def zero(cls) -> "IngestStats":
        """An explicit all-zero traffic record."""
        return cls()

    @classmethod
    def from_registry(cls, metrics: MetricsRegistry) -> "IngestStats":
        return cls(
            files_injected=int(metrics.value("eventstore.files_injected")),
            events_injected=int(metrics.value("eventstore.events_injected")),
            bytes_injected=metrics.value("eventstore.bytes_injected"),
            files_opened=int(metrics.value("eventstore.files_opened")),
        )


class EventStore:
    """A store of event files with grade/version metadata in a relational DB.

    Parameters
    ----------
    root:
        Directory for event files and the embedded database.
    scale:
        ``personal`` stores accept direct :meth:`inject`; ``group`` and
        ``collaboration`` stores only grow through merges (or explicit
        ``admin=True``), the paper's central operational lesson.
    name:
        Identifier used in merge records; defaults to the directory name.
    cache:
        Optional :class:`ReadCache` for the hot read path: grade
        resolution (``grade:`` keys, invalidated by :meth:`assign_grade`
        and :meth:`register_run`) and file-row lookups (``file:`` keys,
        negative results included, invalidated by :meth:`inject`).
    """

    def __init__(
        self,
        root: Union[str, Path],
        scale: str = "personal",
        name: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        cache: Optional[ReadCache] = None,
    ):
        if scale not in SCALES:
            raise EventStoreError(f"unknown scale {scale!r}; pick one of {SCALES}")
        self.root = Path(root)
        self.scale = scale
        self.name = name if name is not None else self.root.name
        self.files_dir = self.root / "files"
        self.files_dir.mkdir(parents=True, exist_ok=True)
        self.db: Database = SqliteBackend(self.root / "eventstore.db")
        apply_schema(self.db, eventstore_schema())
        self.metrics = MetricsRegistry()
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        self.cache = cache

    @property
    def ingest_stats(self) -> IngestStats:
        """Write/read traffic counters, read from the metrics registry."""
        return IngestStats.from_registry(self.metrics)

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "EventStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def command(self, verb: str) -> str:
        """Render a store command; the scale is its first word."""
        return f"{self.scale} {verb}"

    # -- write path ---------------------------------------------------------
    def _require_writable(self, admin: bool) -> None:
        if self.scale != "personal" and not admin:
            raise EventStoreError(
                f"{self.scale} stores only grow by merge (or admin override); "
                "build a personal store and merge it in"
            )

    def register_run(self, run: Run, admin: bool = False) -> None:
        """Record a run's metadata (idempotent for identical metadata)."""
        self._require_writable(admin)
        existing = self.db.query_one("SELECT * FROM runs WHERE number = ?", (run.number,))
        if existing is not None:
            if (
                existing["event_count"] != run.event_count
                or existing["start_time"] != run.start_time
            ):
                raise EventStoreError(
                    f"run {run.number} already registered with different metadata"
                )
            return
        self.db.insert(
            "runs",
            number=run.number,
            start_time=run.start_time,
            duration_s=run.duration.seconds,
            event_count=run.event_count,
            conditions=json.dumps(run.condition_map, sort_keys=True),
        )
        if self.cache is not None:
            # A new run changes what every grade's run keys expand to.
            self.cache.invalidate_prefix("grade:")

    def inject(
        self,
        run: Run,
        events: Sequence[Event],
        version: str,
        kind: str,
        stamp: ProvenanceStamp,
        admin: bool = False,
        created_at: float = 0.0,
    ) -> Path:
        """Write an event file and register it under (run, version, kind)."""
        self._require_writable(admin)
        if kind not in DATA_KINDS:
            raise EventStoreError(f"unknown data kind {kind!r}; expected {DATA_KINDS}")
        self.register_run(run, admin=admin)
        if self._file_row(run.number, version, kind) is not None:
            raise EventStoreError(
                f"store already has run {run.number} {kind} at version {version!r}"
            )
        filename = f"run{run.number:06d}_{kind}_{_safe(version)}.evs"
        path = self.files_dir / filename
        header = FileHeader(
            run_number=run.number, version=version, data_kind=kind, created_at=created_at
        )
        count = write_event_file(path, header, events, stamp)
        size_bytes = float(path.stat().st_size)
        if self.cache is not None:
            # Drop a cached "no such file" answer for this coordinate.
            self.cache.invalidate(f"file:{run.number}:{version}:{kind}")
        self.db.insert(
            "files",
            path=str(path.relative_to(self.root)),
            run_number=run.number,
            version=version,
            kind=kind,
            event_count=count,
            size_bytes=size_bytes,
            digest=stamp.digest,
        )
        self.metrics.counter("eventstore.files_injected").inc()
        self.metrics.counter("eventstore.events_injected").inc(count)
        self.metrics.counter("eventstore.bytes_injected").inc(size_bytes)
        self._telemetry.emit(
            "storage.write",
            filename,
            store=self.name,
            bytes=size_bytes,
            events=count,
            run=run.number,
            version=version,
            data_kind=kind,
        )
        return path

    # -- grades ---------------------------------------------------------------
    def assign_grade(
        self,
        grade: str,
        timestamp: float,
        assignments: Dict[str, str],
        admin: bool = False,
    ) -> None:
        """Record grade assignments ("an administrative procedure").

        Keys are run keys (``run:N`` or ``runs:A-B``); values are versions.
        Timestamps must be non-decreasing per grade.
        """
        if self.scale == "collaboration" and not admin:
            raise EventStoreError(
                "grade assignment on the collaboration store is an officers-only "
                "operation; pass admin=True"
            )
        if not assignments:
            raise EventStoreError("grade assignment needs at least one run key")
        latest = self.db.query_value(
            "SELECT max(timestamp) FROM grade_entries WHERE grade = ?", (grade,)
        )
        if latest is not None and timestamp < latest:
            raise EventStoreError(
                f"grade {grade!r}: timestamps must be non-decreasing "
                f"({timestamp} < {latest})"
            )
        for key, version in sorted(assignments.items()):
            parse_run_key(key)  # validates
            self.db.insert(
                "grade_entries",
                grade=grade,
                timestamp=timestamp,
                run_key=key,
                version=version,
            )
        if self.cache is not None:
            self.cache.invalidate_prefix(f"grade:{grade}@")

    def _grade_history(self, grade: str) -> GradeHistory[str]:
        history: GradeHistory[str] = GradeHistory(grade)
        rows = self.db.query(
            "SELECT timestamp, run_key, version FROM grade_entries "
            "WHERE grade = ? ORDER BY timestamp, id",
            (grade,),
        )
        for row in rows:
            history.assign(row["timestamp"], {row["run_key"]: row["version"]})
        return history

    def grades(self) -> List[str]:
        return [
            row["grade"]
            for row in self.db.query(
                "SELECT DISTINCT grade FROM grade_entries ORDER BY grade"
            )
        ]

    def resolve_grade(
        self, grade: str, timestamp: float, include_new_data: bool = True
    ) -> Dict[str, str]:
        """Run-key → version mapping for an analysis pinned at ``timestamp``."""
        history = self._grade_history(grade)
        if not len(history):
            raise EventStoreError(f"store has no grade {grade!r}")
        return history.resolve(timestamp, include_new_data=include_new_data)

    def resolve_runs(
        self, grade: str, timestamp: float, include_new_data: bool = True
    ) -> Dict[int, str]:
        """Run-number → version mapping for an analysis pinned at ``timestamp``.

        Resolution happens at run granularity: each grade entry's run key is
        expanded over the runs the store knows about *before* the snapshot
        rules apply, so a reassignment that uses a different key shape
        (``run:1`` after ``runs:1-2``) still pins correctly and the
        first-time-data exception only fires for genuinely new runs.

        With a cache attached, the resolved mapping is served from the
        ``grade:`` key space (every analysis iteration re-resolves the
        same pinned coordinate); grade assignments and new runs
        invalidate it.
        """
        if self.cache is not None:
            resolved = self.cache.get_or_load(
                f"grade:{grade}@{timestamp!r}:{include_new_data}",
                lambda: self._resolve_runs_uncached(
                    grade, timestamp, include_new_data
                ),
            )
            return dict(resolved)  # type: ignore[arg-type]
        return self._resolve_runs_uncached(grade, timestamp, include_new_data)

    def _resolve_runs_uncached(
        self, grade: str, timestamp: float, include_new_data: bool
    ) -> Dict[int, str]:
        rows = self.db.query(
            "SELECT timestamp, run_key, version FROM grade_entries "
            "WHERE grade = ? ORDER BY timestamp, id",
            (grade,),
        )
        if not rows:
            raise EventStoreError(f"store has no grade {grade!r}")
        known = [row["number"] for row in self.db.query("SELECT number FROM runs")]
        history: GradeHistory[int] = GradeHistory(grade)
        for row in rows:
            first, last = parse_run_key(row["run_key"])
            covered = {
                number: row["version"] for number in known if first <= number <= last
            }
            if covered:
                history.assign(row["timestamp"], covered)
        if not len(history):
            return {}
        return history.resolve(timestamp, include_new_data=include_new_data)

    # -- read path ---------------------------------------------------------
    def _file_row(self, run_number: int, version: str, kind: str):
        """The file registered under (run, version, kind), or None.

        Cached (including the None case — resolved grades routinely cover
        runs with no file of a given kind) under ``file:`` keys; files are
        immutable once injected, so only :meth:`inject` invalidates.
        """
        if self.cache is not None:
            return self.cache.get_or_load(
                f"file:{run_number}:{version}:{kind}",
                lambda: self._file_row_uncached(run_number, version, kind),
            )
        return self._file_row_uncached(run_number, version, kind)

    def _file_row_uncached(self, run_number: int, version: str, kind: str):
        row = self.db.query_one(
            "SELECT * FROM files WHERE run_number = ? AND version = ? AND kind = ?",
            (run_number, version, kind),
        )
        return None if row is None else dict(row)

    def _touch_file(self, row) -> None:
        """Hook called before a registered file is read.

        The base store only counts the access; the HSM-backed store extends
        it to charge a disk-cache hit or a tape recall (see
        :mod:`repro.eventstore.hsm_store`).
        """
        self.metrics.counter("eventstore.files_opened").inc()

    def open_file(self, run_number: int, version: str, kind: str) -> EventFile:
        row = self._file_row(run_number, version, kind)
        if row is None:
            raise EventStoreError(
                f"no {kind} file for run {run_number} at version {version!r}"
            )
        self._touch_file(row)
        return open_event_file(self.root / row["path"])

    def events_for(
        self,
        grade: str,
        timestamp: float,
        kind: str,
        asu_names: Optional[Iterable[str]] = None,
        include_new_data: bool = True,
    ) -> Iterator[Event]:
        """Stream the consistent event set for (grade, timestamp, kind).

        This is the physicist-facing read path: pick a grade and the date
        the analysis started, and iterate — the store guarantees the same
        versions come back every time.
        """
        resolved = self.resolve_runs(grade, timestamp, include_new_data)
        asu_list = list(asu_names) if asu_names is not None else None
        for run_number in sorted(resolved):
            version = resolved[run_number]
            row = self._file_row(run_number, version, kind)
            if row is None:
                continue  # grade covers a run with no file of this kind
            self._touch_file(row)
            event_file = open_event_file(self.root / row["path"])
            yield from event_file.events(asu_list)

    def consistency_digests(
        self, grade: str, timestamp: float, kind: str
    ) -> Dict[int, str]:
        """Per-run provenance digests of the resolved set (discrepancy check)."""
        resolved = self.resolve_runs(grade, timestamp)
        digests: Dict[int, str] = {}
        for run_number, version in resolved.items():
            row = self._file_row(run_number, version, kind)
            if row is not None:
                digests[run_number] = row["digest"]
        return digests

    # -- inventory ---------------------------------------------------------
    def runs(self) -> List[Run]:
        rows = self.db.query("SELECT * FROM runs ORDER BY number")
        return [
            Run.create(
                number=row["number"],
                start_time=row["start_time"],
                duration=Duration(row["duration_s"]),
                event_count=row["event_count"],
                conditions=json.loads(row["conditions"]),
            )
            for row in rows
        ]

    def versions_of(self, run_number: int, kind: str) -> List[str]:
        rows = self.db.query(
            "SELECT version FROM files WHERE run_number = ? AND kind = ? ORDER BY id",
            (run_number, kind),
        )
        return [row["version"] for row in rows]

    def file_count(self) -> int:
        return self.db.count("files")

    def total_size(self) -> DataSize:
        value = self.db.query_value("SELECT coalesce(sum(size_bytes), 0) FROM files")
        return DataSize.from_bytes(float(value))


def _safe(version: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in version)
