"""The CLEO EventStore: event data model, binary file format with provenance
extensions, grade/snapshot metadata, three store scales, merge-based ingest,
and hot/warm/cold partitioning."""

from repro.eventstore.fileformat import (
    EventFile,
    FileHeader,
    open_event_file,
    write_event_file,
)
from repro.eventstore.hsm_store import HsmEventStore
from repro.eventstore.merge import MergeReport, merge_into
from repro.eventstore.model import (
    ASU,
    DATA_KINDS,
    KIND_MC,
    KIND_POSTRECON,
    KIND_RAW,
    KIND_RECON,
    Event,
    Run,
    parse_run_key,
    run_key,
    run_range_key,
    total_size,
)
from repro.eventstore.partition import (
    TEMPERATURES,
    AccessProfile,
    PartitionLayout,
    PartitionedRun,
    derive_layout,
    split_events,
    write_partitioned_run,
)
from repro.eventstore.provenance import (
    DiscrepancyReport,
    ProvenanceCost,
    asu_level_cost,
    check_consistency,
    file_level_cost,
    stamp_step,
)
from repro.eventstore.scales import (
    CollaborationEventStore,
    GroupEventStore,
    PersonalEventStore,
    open_store,
)
from repro.eventstore.store import SCALES, EventStore

__all__ = [
    "EventFile",
    "FileHeader",
    "open_event_file",
    "write_event_file",
    "HsmEventStore",
    "MergeReport",
    "merge_into",
    "ASU",
    "DATA_KINDS",
    "KIND_MC",
    "KIND_POSTRECON",
    "KIND_RAW",
    "KIND_RECON",
    "Event",
    "Run",
    "parse_run_key",
    "run_key",
    "run_range_key",
    "total_size",
    "TEMPERATURES",
    "AccessProfile",
    "PartitionLayout",
    "PartitionedRun",
    "derive_layout",
    "split_events",
    "write_partitioned_run",
    "DiscrepancyReport",
    "ProvenanceCost",
    "asu_level_cost",
    "check_consistency",
    "file_level_cost",
    "stamp_step",
    "CollaborationEventStore",
    "GroupEventStore",
    "PersonalEventStore",
    "open_store",
    "SCALES",
    "EventStore",
]
