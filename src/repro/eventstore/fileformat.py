"""Binary event-file format with provenance extension records.

"Provenance data are stored in the data files using a simple extension to
the standard CLEO data storage system [...] The version strings and hash
are stored in the output stream of each file written, so that every derived
data file carries a summary of its provenance."

Layout (all integers little-endian, unsigned):

========  =======================================================
bytes     meaning
========  =======================================================
8         magic ``b"CLEOESF1"``
4         header length ``H``
H         UTF-8 JSON header: run, version, data kind, created-at
4         provenance line count ``P``
P x       (4-byte length + UTF-8 line) — the accumulated version strings
32        ASCII MD5 digest over the provenance lines
4         event count ``E``
E x       event record:
            4   event number
            2   ASU count ``A``
            A x (2-byte name length + name, 4-byte payload length + payload)
========  =======================================================
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Optional, Union

from repro.core.errors import EventStoreError
from repro.core.provenance import ProvenanceStamp
from repro.eventstore.model import ASU, Event

MAGIC = b"CLEOESF1"

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


def _write_u16(stream: BinaryIO, value: int) -> None:
    if not 0 <= value <= 0xFFFF:
        raise EventStoreError(f"u16 overflow: {value}")
    stream.write(_U16.pack(value))


def _write_u32(stream: BinaryIO, value: int) -> None:
    if not 0 <= value <= 0xFFFFFFFF:
        raise EventStoreError(f"u32 overflow: {value}")
    stream.write(_U32.pack(value))


def _read_exact(stream: BinaryIO, n: int, what: str) -> bytes:
    data = stream.read(n)
    if len(data) != n:
        raise EventStoreError(f"truncated event file while reading {what}")
    return data


def _read_u16(stream: BinaryIO, what: str) -> int:
    return _U16.unpack(_read_exact(stream, 2, what))[0]


def _read_u32(stream: BinaryIO, what: str) -> int:
    return _U32.unpack(_read_exact(stream, 4, what))[0]


@dataclass(frozen=True)
class FileHeader:
    """The JSON header of an event file."""

    run_number: int
    version: str
    data_kind: str
    created_at: float

    def to_json(self) -> bytes:
        return json.dumps(
            {
                "run": self.run_number,
                "version": self.version,
                "kind": self.data_kind,
                "created": self.created_at,
            },
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def from_json(cls, data: bytes) -> "FileHeader":
        try:
            parsed = json.loads(data.decode("utf-8"))
            return cls(
                run_number=int(parsed["run"]),
                version=str(parsed["version"]),
                data_kind=str(parsed["kind"]),
                created_at=float(parsed["created"]),
            )
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise EventStoreError(f"bad event-file header: {exc}") from exc


def write_event_file(
    path: Union[str, Path],
    header: FileHeader,
    events: Iterable[Event],
    stamp: ProvenanceStamp,
) -> int:
    """Serialize events (and their provenance stamp) to ``path``.

    Returns the number of events written.  Events must all belong to the
    header's run.
    """
    events = list(events)
    for event in events:
        if event.run_number != header.run_number:
            raise EventStoreError(
                f"event from run {event.run_number} in file for run "
                f"{header.run_number}"
            )
    path = Path(path)
    with path.open("wb") as stream:
        stream.write(MAGIC)
        header_bytes = header.to_json()
        _write_u32(stream, len(header_bytes))
        stream.write(header_bytes)
        _write_u32(stream, len(stamp.history))
        for line in stamp.history:
            encoded = line.encode("utf-8")
            _write_u32(stream, len(encoded))
            stream.write(encoded)
        digest = stamp.digest.encode("ascii")
        if len(digest) != 32:
            raise EventStoreError("provenance digest must be a 32-char MD5 hex string")
        stream.write(digest)
        _write_u32(stream, len(events))
        for event in events:
            _write_u32(stream, event.event_number)
            _write_u16(stream, len(event.asus))
            for name in sorted(event.asus):
                asu = event.asus[name]
                encoded = name.encode("utf-8")
                _write_u16(stream, len(encoded))
                stream.write(encoded)
                _write_u32(stream, len(asu.payload))
                stream.write(asu.payload)
    return len(events)


@dataclass
class EventFile:
    """Parsed header + provenance of an event file, with lazy event access."""

    path: Path
    header: FileHeader
    stamp: ProvenanceStamp
    event_count: int
    _events_offset: int

    def events(self, asu_names: Optional[Iterable[str]] = None) -> Iterator[Event]:
        """Stream events; optionally project to a subset of ASUs.

        Projection still reads past unwanted payloads (this format is
        row-major); the hot/warm/cold partitioning in
        :mod:`repro.eventstore.partition` exists precisely because that
        is expensive.
        """
        wanted = set(asu_names) if asu_names is not None else None
        with self.path.open("rb") as stream:
            stream.seek(self._events_offset)
            for _ in range(self.event_count):
                event_number = _read_u32(stream, "event number")
                asu_count = _read_u16(stream, "ASU count")
                asus = {}
                for _ in range(asu_count):
                    name_length = _read_u16(stream, "ASU name length")
                    name = _read_exact(stream, name_length, "ASU name").decode("utf-8")
                    payload_length = _read_u32(stream, "payload length")
                    if wanted is None or name in wanted:
                        payload = _read_exact(stream, payload_length, "payload")
                        asus[name] = ASU(name=name, payload=payload)
                    else:
                        stream.seek(payload_length, 1)
                yield Event(
                    run_number=self.header.run_number,
                    event_number=event_number,
                    asus=asus,
                )

    def read_all(self) -> List[Event]:
        return list(self.events())


def open_event_file(path: Union[str, Path]) -> EventFile:
    """Parse the header and provenance block; events stay on disk."""
    path = Path(path)
    with path.open("rb") as stream:
        magic = stream.read(len(MAGIC))
        if magic != MAGIC:
            raise EventStoreError(f"{path} is not an event file (bad magic)")
        header_length = _read_u32(stream, "header length")
        header = FileHeader.from_json(_read_exact(stream, header_length, "header"))
        line_count = _read_u32(stream, "provenance line count")
        lines = []
        for _ in range(line_count):
            line_length = _read_u32(stream, "provenance line length")
            raw_line = _read_exact(stream, line_length, "provenance line")
            try:
                lines.append(raw_line.decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise EventStoreError(
                    f"{path}: corrupt provenance line (digest check would fail): {exc}"
                ) from exc
        digest = _read_exact(stream, 32, "digest").decode("ascii")
        stamp = ProvenanceStamp(history=tuple(lines), digest=digest)
        if not stamp.matches(ProvenanceStamp(history=tuple(lines),
                                             digest=ProvenanceStamp._digest_of(lines))):
            raise EventStoreError(f"{path}: provenance digest does not match history")
        event_count = _read_u32(stream, "event count")
        offset = stream.tell()
    return EventFile(
        path=path,
        header=header,
        stamp=stamp,
        event_count=event_count,
        _events_offset=offset,
    )
