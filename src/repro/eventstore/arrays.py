"""Packing numpy arrays into ASU payloads.

Detector data is numeric; ASU payloads are opaque bytes.  This module is
the bridge: a tiny self-describing binary encoding (dtype + shape header,
then the raw buffer) so any pipeline stage can round-trip arrays through
event files without pickling.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.core.errors import EventStoreError
from repro.eventstore.model import ASU

_LEN = struct.Struct("<I")


def pack_array(array: np.ndarray) -> bytes:
    """Serialize an array: 4-byte header length, JSON header, raw bytes."""
    array = np.ascontiguousarray(array)
    header = json.dumps(
        {"dtype": array.dtype.str, "shape": list(array.shape)}
    ).encode("ascii")
    return _LEN.pack(len(header)) + header + array.tobytes()


def unpack_array(payload: bytes) -> np.ndarray:
    """Inverse of :func:`pack_array`."""
    if len(payload) < 4:
        raise EventStoreError("array payload too short for header length")
    (header_length,) = _LEN.unpack(payload[:4])
    if len(payload) < 4 + header_length:
        raise EventStoreError("array payload truncated in header")
    try:
        header = json.loads(payload[4 : 4 + header_length].decode("ascii"))
        dtype = np.dtype(header["dtype"])
        shape = tuple(int(dim) for dim in header["shape"])
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise EventStoreError(f"bad array payload header: {exc}") from exc
    expected = dtype.itemsize * int(np.prod(shape)) if shape else dtype.itemsize
    body = payload[4 + header_length :]
    if len(body) != expected:
        raise EventStoreError(
            f"array payload body is {len(body)} bytes, expected {expected}"
        )
    return np.frombuffer(body, dtype=dtype).reshape(shape).copy()


def array_asu(name: str, array: np.ndarray) -> ASU:
    """Build an ASU holding one array."""
    return ASU(name=name, payload=pack_array(array))


def asu_array(asu: ASU) -> np.ndarray:
    """Extract the array from an ASU built by :func:`array_asu`."""
    return unpack_array(asu.payload)
