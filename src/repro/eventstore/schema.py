"""Relational schema of an EventStore.

"Other metadata about the data are stored in a relational database
supporting the standard SQL query language."  One schema serves all three
store sizes; only the backend placement differs (embedded for personal,
shared file for group/collaboration).
"""

from __future__ import annotations

from repro.db.schema import Schema, column

SCHEMA_VERSION = 1


def eventstore_schema() -> Schema:
    schema = Schema("eventstore", version=SCHEMA_VERSION)
    schema.table(
        "runs",
        [
            column("number", "INTEGER", "PRIMARY KEY"),
            column("start_time", "REAL", "NOT NULL"),
            column("duration_s", "REAL", "NOT NULL"),
            column("event_count", "INTEGER", "NOT NULL"),
            column("conditions", "TEXT", "NOT NULL DEFAULT '{}'"),
        ],
    )
    schema.table(
        "files",
        [
            column("id", "INTEGER", "PRIMARY KEY"),
            column("path", "TEXT", "NOT NULL"),
            column("run_number", "INTEGER", "NOT NULL REFERENCES runs(number)"),
            column("version", "TEXT", "NOT NULL"),
            column("kind", "TEXT", "NOT NULL"),
            column("event_count", "INTEGER", "NOT NULL"),
            column("size_bytes", "REAL", "NOT NULL"),
            column("digest", "TEXT", "NOT NULL"),
        ],
        constraints=["UNIQUE(run_number, version, kind)"],
        indexes=[("run_number",), ("version",), ("kind",)],
    )
    schema.table(
        "grade_entries",
        [
            column("id", "INTEGER", "PRIMARY KEY"),
            column("grade", "TEXT", "NOT NULL"),
            column("timestamp", "REAL", "NOT NULL"),
            column("run_key", "TEXT", "NOT NULL"),
            column("version", "TEXT", "NOT NULL"),
        ],
        indexes=[("grade", "timestamp"), ("grade", "run_key")],
    )
    schema.table(
        "merges",
        [
            column("id", "INTEGER", "PRIMARY KEY"),
            column("source_name", "TEXT", "NOT NULL"),
            column("merged_at", "REAL", "NOT NULL"),
            column("files_added", "INTEGER", "NOT NULL"),
            column("runs_added", "INTEGER", "NOT NULL"),
            column("grade_entries_added", "INTEGER", "NOT NULL"),
        ],
    )
    return schema
