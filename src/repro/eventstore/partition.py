"""Hot/warm/cold ASU partitioning.

"CLEO data are partitioned into hot, warm and cold storage units.  This is
a column-wise split of the event into groups of ASUs, based on usage
patterns.  The hot data are those components of an event most frequently
accessed during physics analysis.  These ASUs are typically small compared
with the less frequently accessed ASUs."

This module derives a partitioning from recorded access patterns and
materializes it as one event file per temperature, so an analysis touching
only hot ASUs reads only the (small) hot file — the effect quantified by
experiment C7.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.core.errors import EventStoreError
from repro.core.provenance import ProvenanceStamp
from repro.core.units import DataSize
from repro.eventstore.fileformat import FileHeader, open_event_file, write_event_file
from repro.eventstore.model import Event

TEMPERATURES = ("hot", "warm", "cold")


class AccessProfile:
    """Records which ASUs each analysis touched."""

    def __init__(self) -> None:
        self._touches: Counter = Counter()
        self.analyses = 0

    def record(self, asu_names: Iterable[str]) -> None:
        """Log one analysis's ASU working set."""
        names = set(asu_names)
        if not names:
            raise EventStoreError("an analysis touches at least one ASU")
        self.analyses += 1
        self._touches.update(names)

    def frequency(self, name: str) -> float:
        """Fraction of analyses that touched this ASU."""
        if self.analyses == 0:
            return 0.0
        return self._touches[name] / self.analyses

    def known_asus(self) -> List[str]:
        return sorted(self._touches)


@dataclass(frozen=True)
class PartitionLayout:
    """An assignment of ASU names to temperatures."""

    assignment: Tuple[Tuple[str, str], ...]  # (asu name, temperature)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, str]) -> "PartitionLayout":
        for name, temperature in mapping.items():
            if temperature not in TEMPERATURES:
                raise EventStoreError(
                    f"ASU {name!r}: unknown temperature {temperature!r}"
                )
        return cls(assignment=tuple(sorted(mapping.items())))

    def temperature_of(self, asu_name: str) -> str:
        for name, temperature in self.assignment:
            if name == asu_name:
                return temperature
        raise EventStoreError(f"layout does not cover ASU {asu_name!r}")

    def asus_at(self, temperature: str) -> List[str]:
        if temperature not in TEMPERATURES:
            raise EventStoreError(f"unknown temperature {temperature!r}")
        return [name for name, temp in self.assignment if temp == temperature]

    def temperatures_for(self, asu_names: Iterable[str]) -> List[str]:
        """The set of storage units an analysis working set must open."""
        return sorted({self.temperature_of(name) for name in asu_names})

    def as_dict(self) -> Dict[str, str]:
        return dict(self.assignment)


def derive_layout(
    profile: AccessProfile,
    all_asus: Iterable[str],
    hot_threshold: float = 0.5,
    warm_threshold: float = 0.1,
) -> PartitionLayout:
    """Assign temperatures from access frequencies.

    ASUs touched by at least ``hot_threshold`` of analyses are hot; at
    least ``warm_threshold``, warm; anything rarer (or never seen), cold.
    """
    if not 0.0 <= warm_threshold <= hot_threshold <= 1.0:
        raise EventStoreError("thresholds must satisfy 0 <= warm <= hot <= 1")
    mapping: Dict[str, str] = {}
    for name in all_asus:
        frequency = profile.frequency(name)
        if frequency >= hot_threshold:
            mapping[name] = "hot"
        elif frequency >= warm_threshold:
            mapping[name] = "warm"
        else:
            mapping[name] = "cold"
    if not mapping:
        raise EventStoreError("cannot derive a layout over zero ASUs")
    return PartitionLayout.from_mapping(mapping)


def split_events(
    events: Sequence[Event], layout: PartitionLayout
) -> Dict[str, List[Event]]:
    """Project events column-wise into one event list per temperature."""
    by_temperature: Dict[str, List[Event]] = {temp: [] for temp in TEMPERATURES}
    for temperature in TEMPERATURES:
        names = set(layout.asus_at(temperature))
        for event in events:
            by_temperature[temperature].append(event.project(names))
    return by_temperature


@dataclass
class PartitionedRun:
    """One run's events written as one file per temperature."""

    run_number: int
    paths: Dict[str, Path]
    sizes: Dict[str, DataSize]

    def read_size(self, asu_names: Iterable[str], layout: PartitionLayout) -> DataSize:
        """Bytes an analysis must read to cover ``asu_names``."""
        needed = layout.temperatures_for(asu_names)
        return DataSize(sum(self.sizes[temp].bytes for temp in needed))

    def monolithic_size(self) -> DataSize:
        return DataSize(sum(size.bytes for size in self.sizes.values()))

    def events(self, temperatures: Iterable[str]):
        """Stream events merged across the requested temperature files."""
        streams = [
            open_event_file(self.paths[temp]).events() for temp in sorted(set(temperatures))
        ]
        if not streams:
            return
        for parts in zip(*streams):
            merged = Event(
                run_number=parts[0].run_number,
                event_number=parts[0].event_number,
                asus={},
            )
            for part in parts:
                if part.event_number != merged.event_number:
                    raise EventStoreError(
                        "temperature files are misaligned; they must be written "
                        "from the same event sequence"
                    )
                for asu in part.asus.values():
                    merged.add(asu)
            yield merged


def write_partitioned_run(
    directory: Union[str, Path],
    run_number: int,
    events: Sequence[Event],
    layout: PartitionLayout,
    version: str,
    stamp: ProvenanceStamp,
    kind: str = "recon",
) -> PartitionedRun:
    """Write one event file per temperature for a run."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    split = split_events(events, layout)
    paths: Dict[str, Path] = {}
    sizes: Dict[str, DataSize] = {}
    for temperature in TEMPERATURES:
        path = directory / f"run{run_number:06d}_{kind}_{temperature}.evs"
        header = FileHeader(
            run_number=run_number,
            version=version,
            data_kind=kind,
            created_at=0.0,
        )
        write_event_file(path, header, split[temperature], stamp)
        paths[temperature] = path
        sizes[temperature] = DataSize.from_bytes(float(path.stat().st_size))
    return PartitionedRun(run_number=run_number, paths=paths, sizes=sizes)
