"""EventStore-level provenance: stamping, discrepancy detection, cost study.

Implements the paper's pragmatic design point: full ASU-granularity
provenance "will be large, and it will be inappropriate to store it in the
headers of the data files", so CLEO stores a file-level summary (version
strings + MD5) and accepts that it "only tells which ASUs *might* have been
used".  The functions here provide both the file-level mechanism and the
cost model for the ASU-level alternative, so the trade-off can be measured
(experiment C8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.provenance import ProcessingStep, ProvenanceStamp
from repro.eventstore.fileformat import EventFile


def stamp_step(
    module: str,
    release: str,
    params: Optional[Mapping[str, object]] = None,
    inputs: Sequence[str] = (),
    parents: Sequence[ProvenanceStamp] = (),
) -> ProvenanceStamp:
    """Build the stamp for one processing step over its input stamps.

    This is the "collect, as strings, all the software module names, their
    parameters, plus all the input file information and make an MD5 hash"
    operation, performed at every step of reconstruction and analysis.
    """
    step = ProcessingStep.create(module, release, params, inputs)
    if not parents:
        return ProvenanceStamp.initial(step)
    return ProvenanceStamp.merged(list(parents), step)


@dataclass
class DiscrepancyReport:
    """Outcome of checking a set of files for consistent provenance."""

    groups: Dict[str, List[str]] = field(default_factory=dict)  # digest -> file names
    explanations: List[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return len(self.groups) <= 1

    @property
    def majority_digest(self) -> Optional[str]:
        if not self.groups:
            return None
        return max(self.groups, key=lambda digest: len(self.groups[digest]))

    def outliers(self) -> List[str]:
        """Files whose digest differs from the majority."""
        majority = self.majority_digest
        return sorted(
            name
            for digest, names in self.groups.items()
            if digest != majority
            for name in names
        )


def check_consistency(files: Sequence[EventFile]) -> DiscrepancyReport:
    """Group files by provenance digest; explain any split.

    "We can detect the majority of usage discrepancies by comparing the
    hashes.  In the event of a discrepancy, the physicists can view the
    strings to see what has changed."
    """
    report = DiscrepancyReport()
    for event_file in files:
        report.groups.setdefault(event_file.stamp.digest, []).append(
            event_file.path.name
        )
    for names in report.groups.values():
        names.sort()
    if not report.consistent:
        digests = sorted(report.groups)
        reference = next(f for f in files if f.stamp.digest == digests[0])
        for digest in digests[1:]:
            other = next(f for f in files if f.stamp.digest == digest)
            for line in reference.stamp.diff(other.stamp):
                report.explanations.append(
                    f"{reference.path.name} vs {other.path.name}: {line}"
                )
    return report


@dataclass(frozen=True)
class ProvenanceCost:
    """Metadata volume of a provenance scheme over a dataset."""

    scheme: str
    records: int
    bytes_total: float

    @property
    def bytes_per_event(self) -> float:
        return self.bytes_total


def file_level_cost(files: Sequence[EventFile]) -> ProvenanceCost:
    """Metadata footprint of the implemented file-level scheme."""
    total = sum(f.stamp.metadata_bytes for f in files)
    return ProvenanceCost(scheme="file-level", records=len(files), bytes_total=float(total))


def asu_level_cost(
    files: Sequence[EventFile],
    asus_per_event: int,
    bytes_per_record: int = 48,
) -> ProvenanceCost:
    """Projected footprint of exact ASU-granularity tracking.

    One record per (event, ASU) pair — the paper's "metadata volume to
    track at the ASU level will be large" claim, made quantitative.  48
    bytes is a tight lower bound for (event id, ASU id, provenance ref,
    input refs).
    """
    records = sum(f.event_count for f in files) * asus_per_event
    return ProvenanceCost(
        scheme="asu-level",
        records=records,
        bytes_total=float(records * bytes_per_record),
    )
