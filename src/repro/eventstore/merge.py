"""Merging a personal EventStore into a larger store.

"Somewhat to our surprise, merging became the fundamental operation for
adding results to the group and collaboration stores.  Rather than having
long-running jobs hold lengthy open transactions on the main data
repository, it proved simpler to create a personal EventStore for the
operation, which is merged into the larger store upon successful
completion of the operation.  This stratagem allowed the highest degree of
integrity protection for the centrally managed data repositories with the
fewest modifications to the legacy data analysis applications."

:func:`merge_into` implements exactly that: the whole merge runs inside one
short transaction on the target; file payloads are copied byte-for-byte;
conflicting content (same run/version/kind, different provenance digest)
aborts the merge leaving the target untouched.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import List

from repro.core.errors import MergeConflictError
from repro.eventstore.store import EventStore


@dataclass
class MergeReport:
    """What one merge changed in the target store."""

    source: str
    target: str
    files_added: int = 0
    files_skipped: int = 0
    runs_added: int = 0
    grade_entries_added: int = 0
    copied_paths: List[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.files_added or self.runs_added or self.grade_entries_added)


def merge_into(source: EventStore, target: EventStore, merged_at: float = 0.0) -> MergeReport:
    """Merge everything in ``source`` into ``target`` atomically.

    Identical content already present is skipped (merges are idempotent);
    genuinely conflicting content raises :class:`MergeConflictError` and
    rolls the target back, files included.
    """
    report = MergeReport(source=source.name, target=target.name)
    copied: List[Path] = []
    try:
        with target.db.transaction():
            _merge_runs(source, target, report)
            _merge_files(source, target, report, copied)
            _merge_grades(source, target, report)
            target.db.insert(
                "merges",
                source_name=source.name,
                merged_at=merged_at,
                files_added=report.files_added,
                runs_added=report.runs_added,
                grade_entries_added=report.grade_entries_added,
            )
    except Exception:
        # The DB transaction rolled back; undo file copies too.
        for path in copied:
            path.unlink(missing_ok=True)
        raise
    report.copied_paths = [str(path) for path in copied]
    return report


def _merge_runs(source: EventStore, target: EventStore, report: MergeReport) -> None:
    for row in source.db.query("SELECT * FROM runs ORDER BY number"):
        existing = target.db.query_one(
            "SELECT * FROM runs WHERE number = ?", (row["number"],)
        )
        if existing is not None:
            if (
                existing["event_count"] != row["event_count"]
                or existing["start_time"] != row["start_time"]
            ):
                raise MergeConflictError(
                    f"run {row['number']}: source and target disagree on metadata"
                )
            continue
        target.db.insert(
            "runs",
            number=row["number"],
            start_time=row["start_time"],
            duration_s=row["duration_s"],
            event_count=row["event_count"],
            conditions=row["conditions"],
        )
        report.runs_added += 1


def _merge_files(
    source: EventStore,
    target: EventStore,
    report: MergeReport,
    copied: List[Path],
) -> None:
    for row in source.db.query("SELECT * FROM files ORDER BY id"):
        existing = target.db.query_one(
            "SELECT * FROM files WHERE run_number = ? AND version = ? AND kind = ?",
            (row["run_number"], row["version"], row["kind"]),
        )
        if existing is not None:
            if existing["digest"] != row["digest"]:
                raise MergeConflictError(
                    f"run {row['run_number']} {row['kind']} {row['version']!r}: "
                    f"digest mismatch (target {existing['digest'][:8]}..., "
                    f"source {row['digest'][:8]}...)"
                )
            report.files_skipped += 1
            continue
        source_path = source.root / row["path"]
        target_path = target.root / row["path"]
        if target_path.exists():
            raise MergeConflictError(
                f"target already has an unregistered file at {row['path']!r}"
            )
        target_path.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(source_path, target_path)
        copied.append(target_path)
        target.db.insert(
            "files",
            path=row["path"],
            run_number=row["run_number"],
            version=row["version"],
            kind=row["kind"],
            event_count=row["event_count"],
            size_bytes=row["size_bytes"],
            digest=row["digest"],
        )
        report.files_added += 1


def _merge_grades(source: EventStore, target: EventStore, report: MergeReport) -> None:
    for row in source.db.query(
        "SELECT * FROM grade_entries ORDER BY grade, timestamp, id"
    ):
        existing = target.db.query_one(
            "SELECT * FROM grade_entries WHERE grade = ? AND timestamp = ? "
            "AND run_key = ? AND version = ?",
            (row["grade"], row["timestamp"], row["run_key"], row["version"]),
        )
        if existing is not None:
            continue
        latest = target.db.query_value(
            "SELECT max(timestamp) FROM grade_entries WHERE grade = ?",
            (row["grade"],),
        )
        if latest is not None and row["timestamp"] < latest:
            raise MergeConflictError(
                f"grade {row['grade']!r}: merging entry at t={row['timestamp']} "
                f"would rewrite history (target already at t={latest})"
            )
        target.db.insert(
            "grade_entries",
            grade=row["grade"],
            timestamp=row["timestamp"],
            run_key=row["run_key"],
            version=row["version"],
        )
        report.grade_entries_added += 1
