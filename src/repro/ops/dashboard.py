"""Quality dashboard model: threshold bands over rollup projections.

The paper's operational teams watched *quality signals*, not raw logs —
completeness of nightly processing, degraded-serve rates, upload lag —
and acted on colour: green (within target), yellow (drifting), red
(act now).  This module is that judgment layer, kept strictly separate
from the fold (:mod:`repro.ops.rollup` computes, this module grades):

* :class:`MetricSpec` — one metric's label, unit, direction, and the
  green/yellow thresholds that band it (the traffic-light pattern from
  SNIPPETS.md snippets 1 and 3);
* :class:`QualitySpec` — a channel: a flow-name pattern plus the metric
  specs that matter for flows of that kind.  Each pipeline package ships
  its own (``repro.arecibo.quality`` etc.) because "healthy" means
  different things for a tape-recall archive and a serving tier;
* :func:`build_dashboard` — match specs against a projection's flows,
  grade every cell, and roll panel/overall status up as the *worst*
  cell, so one red metric is never averaged away.

Everything here is a pure function of (projection, specs): same inputs,
same dashboard, cell for cell — the property the byte-reproducible
nightly report and the deterministic alert evaluator both lean on.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import OpsError
from repro.ops.rollup import FlowQuality, RollupProjection

#: Status values in severity order; dashboards and alerts compare by rank.
STATUS_ORDER = ("green", "no-data", "yellow", "red")
_STATUS_RANK = {name: rank for rank, name in enumerate(STATUS_ORDER)}


def status_rank(status: str) -> int:
    """Severity rank of a status (its index in :data:`STATUS_ORDER`)."""
    try:
        return _STATUS_RANK[status]
    except KeyError:
        raise OpsError(
            f"unknown status {status!r}; expected one of {STATUS_ORDER}"
        ) from None


def worst_status(statuses: Sequence[str]) -> str:
    """The most severe status present (``green`` when given nothing)."""
    worst = "green"
    for status in statuses:
        if _STATUS_RANK[status] > _STATUS_RANK[worst]:
            worst = status
    return worst


@dataclass(frozen=True)
class MetricSpec:
    """One graded metric: thresholds plus presentation.

    ``green`` and ``yellow`` are the band edges.  When
    ``higher_is_better``, a value at or above ``green`` is green, at or
    above ``yellow`` is yellow, below is red; when lower is better the
    comparisons flip.  A missing value (no data to judge) grades
    ``no-data`` — idle is not healthy.
    """

    metric: str
    label: str
    green: float
    yellow: float
    unit: str = ""
    higher_is_better: bool = True

    def __post_init__(self) -> None:
        if self.higher_is_better:
            if self.green < self.yellow:
                raise OpsError(
                    f"metric {self.metric!r}: higher-is-better needs "
                    f"green >= yellow, got {self.green} < {self.yellow}"
                )
        elif self.green > self.yellow:
            raise OpsError(
                f"metric {self.metric!r}: lower-is-better needs "
                f"green <= yellow, got {self.green} > {self.yellow}"
            )

    def grade(self, value: Optional[float]) -> str:
        if value is None:
            return "no-data"
        if self.higher_is_better:
            if value >= self.green:
                return "green"
            if value >= self.yellow:
                return "yellow"
            return "red"
        if value <= self.green:
            return "green"
        if value <= self.yellow:
            return "yellow"
        return "red"

    def format(self, value: Optional[float]) -> str:
        """Deterministic display string for a cell value."""
        if value is None:
            return "—"
        if self.unit == "%":
            return f"{value * 100:.1f}%"
        if self.unit == "s":
            return f"{value:.1f} s"
        if float(value).is_integer():
            return str(int(value))
        return f"{value:.2f}"


@dataclass(frozen=True)
class QualitySpec:
    """A dashboard channel: which flows it covers and how to grade them."""

    channel: str
    flow_pattern: str
    metrics: Tuple[MetricSpec, ...]

    def __post_init__(self) -> None:
        if not self.channel:
            raise OpsError("quality spec needs a non-empty channel name")
        if not self.metrics:
            raise OpsError(f"quality spec {self.channel!r} grades no metrics")
        names = [spec.metric for spec in self.metrics]
        if len(names) != len(set(names)):
            raise OpsError(
                f"quality spec {self.channel!r} repeats a metric: {names}"
            )

    def matches(self, flow: str) -> bool:
        return fnmatchcase(flow, self.flow_pattern)


@dataclass(frozen=True)
class MetricCell:
    """One graded dashboard cell."""

    metric: str
    label: str
    value: Optional[float]
    display: str
    status: str


@dataclass
class ChannelPanel:
    """One channel's panel: matched flows merged, every metric graded."""

    channel: str
    spec: QualitySpec
    flows: Tuple[str, ...]
    quality: FlowQuality
    cells: Tuple[MetricCell, ...]

    @property
    def status(self) -> str:
        return worst_status([cell.status for cell in self.cells])

    @property
    def last_sim_time(self) -> Optional[float]:
        return self.quality.totals.last_sim_time

    @property
    def events(self) -> int:
        return self.quality.totals.events

    def cell(self, metric: str) -> Optional[MetricCell]:
        for candidate in self.cells:
            if candidate.metric == metric:
                return candidate
        return None


@dataclass
class Dashboard:
    """The graded surface: one panel per channel, spec order preserved."""

    panels: Tuple[ChannelPanel, ...]
    max_sim_time: float
    truncated_lines: int
    unmatched_flows: Tuple[str, ...]

    @property
    def status(self) -> str:
        return worst_status([panel.status for panel in self.panels])

    def status_counts(self) -> Dict[str, int]:
        counts = {name: 0 for name in STATUS_ORDER}
        for panel in self.panels:
            counts[panel.status] += 1
        return counts

    def panel(self, channel: str) -> Optional[ChannelPanel]:
        for candidate in self.panels:
            if candidate.channel == channel:
                return candidate
        return None


def build_dashboard(
    projection: RollupProjection,
    specs: Sequence[QualitySpec],
) -> Dashboard:
    """Grade a projection against channel specs.

    Flows are matched by each spec's pattern and merged per channel (a
    channel may cover several flows — e.g. sharded runs of one
    pipeline); flows no spec claims are reported, not silently dropped.
    """
    channels = [spec.channel for spec in specs]
    if len(channels) != len(set(channels)):
        raise OpsError(f"duplicate dashboard channels: {channels}")
    matched: set = set()
    panels: List[ChannelPanel] = []
    flow_names = sorted(projection.flows)
    for spec in specs:
        covered = tuple(name for name in flow_names if spec.matches(name))
        matched.update(covered)
        quality = FlowQuality()
        for name in covered:
            quality.merge(projection.flows[name])
        values = quality.totals.metrics()
        cells = tuple(
            MetricCell(
                metric=metric_spec.metric,
                label=metric_spec.label,
                value=values.get(metric_spec.metric),
                display=metric_spec.format(values.get(metric_spec.metric)),
                status=metric_spec.grade(values.get(metric_spec.metric)),
            )
            for metric_spec in spec.metrics
        )
        panels.append(
            ChannelPanel(
                channel=spec.channel,
                spec=spec,
                flows=covered,
                quality=quality,
                cells=cells,
            )
        )
    unmatched = tuple(name for name in flow_names if name not in matched)
    return Dashboard(
        panels=tuple(panels),
        max_sim_time=projection.max_sim_time,
        truncated_lines=projection.truncated_lines,
        unmatched_flows=unmatched,
    )


def dashboard_snapshot(dashboard: Dashboard) -> Dict[str, object]:
    """JSON-stable snapshot: the trend baseline the next report diffs
    against, and the ``--snapshot`` CLI output."""
    return {
        "status": dashboard.status,
        "max_sim_time": dashboard.max_sim_time,
        "truncated_lines": dashboard.truncated_lines,
        "unmatched_flows": list(dashboard.unmatched_flows),
        "panels": {
            panel.channel: {
                "status": panel.status,
                "flows": list(panel.flows),
                "events": panel.events,
                "last_sim_time": panel.last_sim_time,
                "cells": {
                    cell.metric: {
                        "label": cell.label,
                        "value": cell.value,
                        "display": cell.display,
                        "status": cell.status,
                    }
                    for cell in panel.cells
                },
            }
            for panel in dashboard.panels
        },
    }


__all__ = (
    "STATUS_ORDER",
    "ChannelPanel",
    "Dashboard",
    "MetricCell",
    "MetricSpec",
    "QualitySpec",
    "build_dashboard",
    "dashboard_snapshot",
    "status_rank",
    "worst_status",
)
