"""Operations console: rollups, quality dashboard, reports, alerting.

The read side of the telemetry substrate.  Pipelines append typed JSONL
event logs; this package turns them into an operations surface:

* :mod:`repro.ops.rollup` — fold raw events into cached, content-digested,
  incrementally-updatable quality projections;
* :mod:`repro.ops.dashboard` — grade projections against per-channel
  green/yellow/red threshold specs;
* :mod:`repro.ops.report` — render the byte-reproducible nightly HTML
  report with trend deltas against the previous night;
* :mod:`repro.ops.alerts` — deterministic threshold / rate-of-change /
  staleness alerting with exact dedup and flap accounting;
* ``python -m repro.ops`` — the ``report`` / ``status`` / ``alerts`` CLI.
"""

from typing import Tuple

from repro.ops.alerts import (
    Alert,
    AlertEvaluator,
    AlertRule,
    AlertTransition,
    default_alert_rules,
)
from repro.ops.dashboard import (
    STATUS_ORDER,
    ChannelPanel,
    Dashboard,
    MetricCell,
    MetricSpec,
    QualitySpec,
    build_dashboard,
    dashboard_snapshot,
    status_rank,
    worst_status,
)
from repro.ops.report import load_snapshot, render_report, write_report
from repro.ops.rollup import (
    DEFAULT_WINDOW_S,
    PROJECTION_SCHEMA,
    UNATTRIBUTED,
    FlowQuality,
    QualityCounts,
    RollupProjection,
    build_rollup,
    flow_of,
    fold_events,
    merge_projections,
    scan_log,
)


def default_quality_specs() -> Tuple[QualitySpec, ...]:
    """The stock per-pipeline channel specs, in dashboard order.

    Imported lazily from the pipeline packages so ``repro.ops`` never
    drags all three pipelines in at import time (and so a pipeline
    package can import ``repro.ops`` types without a cycle).
    """
    from repro.arecibo.quality import quality_spec as arecibo_spec
    from repro.cleo.quality import quality_spec as cleo_spec
    from repro.weblab.quality import quality_spec as weblab_spec

    return (arecibo_spec(), cleo_spec(), weblab_spec())


__all__ = [
    "Alert",
    "AlertEvaluator",
    "AlertRule",
    "AlertTransition",
    "default_alert_rules",
    "STATUS_ORDER",
    "ChannelPanel",
    "Dashboard",
    "MetricCell",
    "MetricSpec",
    "QualitySpec",
    "build_dashboard",
    "dashboard_snapshot",
    "status_rank",
    "worst_status",
    "load_snapshot",
    "render_report",
    "write_report",
    "DEFAULT_WINDOW_S",
    "PROJECTION_SCHEMA",
    "UNATTRIBUTED",
    "FlowQuality",
    "QualityCounts",
    "RollupProjection",
    "build_rollup",
    "default_quality_specs",
    "flow_of",
    "fold_events",
    "merge_projections",
    "scan_log",
]
