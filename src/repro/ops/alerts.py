"""Deterministic alerting over the quality dashboard.

Alerts here are *evaluated*, never sampled: the evaluator walks rules in
declaration order against panels in spec order, so the same projection
sequence always yields the same alert sequence — which is what lets the
C22 benchmark pin "two runs over the same log emit identical
``alert.raised``/``alert.cleared`` streams".

Three rule kinds cover the paper's operational failure modes:

* ``threshold`` — a graded status crossed the line (a red completeness
  cell; a whole panel going red);
* ``rate_of_change`` — a metric moved too fast between adjacent rollup
  windows (completeness falling 5 points in an hour is an incident even
  while the absolute value is still green);
* ``staleness`` — a channel stopped reporting (the failure nobody's
  threshold catches, because there is no value left to grade).

State is explicit: an alert raises once, stays active with exact dedup
accounting while the condition holds, clears when it stops, and counts a
**flap** when it re-raises after clearing — so a flapping channel is
visible as a number, not as log spam.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import OpsError
from repro.core.telemetry import MetricsRegistry, Telemetry
from repro.ops.dashboard import (
    ChannelPanel,
    QualitySpec,
    build_dashboard,
    status_rank,
)
from repro.ops.rollup import RollupProjection

RULE_KINDS = ("threshold", "rate_of_change", "staleness")


@dataclass(frozen=True)
class AlertRule:
    """One alert condition.

    ``channel`` is an ``fnmatch`` pattern over panel channels.  For
    ``threshold`` rules, an empty ``metric`` watches the whole panel's
    status; a named metric watches that cell.  ``fire_on`` is the least
    severe status that fires (``"red"`` or ``"yellow"``).
    ``rate_of_change`` rules fire when ``metric`` moves by more than
    ``max_delta`` between the panel's two most recent windows with data;
    ``staleness`` rules fire when a panel has been silent longer than
    ``max_idle_s`` of simulated time (or has no data at all).
    """

    name: str
    kind: str
    channel: str = "*"
    metric: str = ""
    fire_on: str = "red"
    max_delta: float = 0.0
    max_idle_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise OpsError("alert rule needs a non-empty name")
        if self.kind not in RULE_KINDS:
            raise OpsError(
                f"alert rule {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {RULE_KINDS}"
            )
        if self.kind == "threshold" and self.fire_on not in ("yellow", "red"):
            raise OpsError(
                f"alert rule {self.name!r}: fire_on must be 'yellow' or "
                f"'red', got {self.fire_on!r}"
            )
        if self.kind == "rate_of_change":
            if not self.metric:
                raise OpsError(
                    f"alert rule {self.name!r}: rate_of_change needs a metric"
                )
            if self.max_delta <= 0:
                raise OpsError(
                    f"alert rule {self.name!r}: max_delta must be positive, "
                    f"got {self.max_delta}"
                )
        if self.kind == "staleness" and self.max_idle_s <= 0:
            raise OpsError(
                f"alert rule {self.name!r}: max_idle_s must be positive, "
                f"got {self.max_idle_s}"
            )

    def matches(self, channel: str) -> bool:
        return fnmatchcase(channel, self.channel)


@dataclass(frozen=True)
class Alert:
    """One active (or just-transitioned) alert instance."""

    rule: str
    channel: str
    metric: str
    value: Optional[float]
    detail: str
    raised_at: float
    flap: int


@dataclass(frozen=True)
class AlertTransition:
    """A state change from one evaluation: ``raised`` or ``cleared``."""

    action: str
    alert: Alert


def _fire_detail(rule: AlertRule, panel: ChannelPanel) -> Optional[Tuple[Optional[float], str]]:
    """``(value, detail)`` when the rule fires against the panel, else None."""
    if rule.kind == "threshold":
        if rule.metric:
            cell = panel.cell(rule.metric)
            if cell is None:
                return None
            if status_rank(cell.status) >= status_rank(rule.fire_on):
                return (
                    cell.value,
                    f"{cell.label} is {cell.status} at {cell.display}",
                )
            return None
        if status_rank(panel.status) >= status_rank(rule.fire_on):
            return (None, f"channel status is {panel.status}")
        return None
    # rate_of_change (staleness is routed to _stale by the evaluator)
    series = panel.quality.window_metric_series(rule.metric)
    if len(series) < 2:
        return None
    (_, previous), (window, current) = series[-2], series[-1]
    delta = current - previous
    if abs(delta) > rule.max_delta:
        return (
            current,
            f"{rule.metric} moved {delta:+.4f} into window {window} "
            f"(limit ±{rule.max_delta:.4f})",
        )
    return None


def _stale(rule: AlertRule, panel: ChannelPanel, now_s: float) -> Optional[Tuple[Optional[float], str]]:
    last = panel.last_sim_time
    if last is None:
        return (None, "channel has reported no data")
    idle = now_s - last
    if idle > rule.max_idle_s:
        return (
            idle,
            f"channel silent for {idle:.0f} s (limit {rule.max_idle_s:.0f} s)",
        )
    return None


class AlertEvaluator:
    """Stateful, deterministic rule evaluation across projections.

    Feed it successive projections of a growing log; it emits
    ``alert.raised``/``alert.cleared`` telemetry on transitions only and
    keeps exact counters for dedup (condition still firing, no new
    event) and flaps (re-raise after a clear).
    """

    def __init__(
        self,
        rules: Sequence[AlertRule],
        specs: Sequence[QualitySpec],
        telemetry: Optional[Telemetry] = None,
    ):
        names = [rule.name for rule in rules]
        if len(names) != len(set(names)):
            raise OpsError(f"duplicate alert rule names: {names}")
        self.rules = tuple(rules)
        self.specs = tuple(specs)
        self.telemetry = telemetry
        self.metrics = MetricsRegistry()
        self._active: Dict[str, Alert] = {}
        self._raise_counts: Dict[str, int] = {}

    def active(self) -> List[Alert]:
        """Currently-active alerts, in stable (rule, channel) key order."""
        return [self._active[key] for key in sorted(self._active)]

    def evaluate(
        self,
        projection: RollupProjection,
        now_s: Optional[float] = None,
    ) -> List[AlertTransition]:
        """Evaluate every rule; return only state-changing transitions."""
        dashboard = build_dashboard(projection, self.specs)
        if now_s is None:
            now_s = dashboard.max_sim_time
        transitions: List[AlertTransition] = []
        firing: Dict[str, Tuple[AlertRule, ChannelPanel, Optional[float], str]] = {}
        for rule in self.rules:
            for panel in dashboard.panels:
                if not rule.matches(panel.channel):
                    continue
                if rule.kind == "staleness":
                    hit = _stale(rule, panel, now_s)
                else:
                    hit = _fire_detail(rule, panel)
                if hit is not None:
                    value, detail = hit
                    firing[f"{rule.name}:{panel.channel}"] = (
                        rule, panel, value, detail,
                    )
        for key in sorted(firing):
            rule, panel, value, detail = firing[key]
            if key in self._active:
                self.metrics.counter("ops.alerts.deduped").inc()
                continue
            flap = self._raise_counts.get(key, 0)
            alert = Alert(
                rule=rule.name,
                channel=panel.channel,
                metric=rule.metric,
                value=value,
                detail=detail,
                raised_at=now_s,
                flap=flap,
            )
            self._active[key] = alert
            self._raise_counts[key] = flap + 1
            self.metrics.counter("ops.alerts.raised").inc()
            if flap:
                self.metrics.counter("ops.alerts.flapped").inc()
            transitions.append(AlertTransition(action="raised", alert=alert))
            if self.telemetry is not None:
                self.telemetry.emit(
                    "alert.raised",
                    rule.name,
                    channel=panel.channel,
                    metric=rule.metric,
                    value=value,
                    detail=detail,
                    flap=flap,
                )
        for key in sorted(self._active):
            if key in firing:
                continue
            alert = self._active.pop(key)
            self.metrics.counter("ops.alerts.cleared").inc()
            transitions.append(AlertTransition(action="cleared", alert=alert))
            if self.telemetry is not None:
                self.telemetry.emit(
                    "alert.cleared",
                    alert.rule,
                    channel=alert.channel,
                    metric=alert.metric,
                    raised_at=alert.raised_at,
                    flap=alert.flap,
                )
        return transitions


def default_alert_rules() -> Tuple[AlertRule, ...]:
    """The stock rule set the CLI and examples run with."""
    return (
        AlertRule(name="quality-red", kind="threshold", fire_on="red"),
        AlertRule(
            name="completeness-drop",
            kind="rate_of_change",
            metric="completeness",
            max_delta=0.05,
        ),
        AlertRule(name="stale-channel", kind="staleness", max_idle_s=24 * 3600.0),
    )


__all__ = (
    "RULE_KINDS",
    "Alert",
    "AlertEvaluator",
    "AlertRule",
    "AlertTransition",
    "default_alert_rules",
)
