"""Rollup/projection layer: fold raw telemetry into quality metrics.

The telemetry substrate is write-optimised — an append-only JSONL stream
of typed events — which makes it exactly the wrong shape to serve an
operations dashboard hammered by many concurrent readers.  This module
is the read side (StreamingHub's argument in PAPERS.md: serve live
workflow metrics from reusable projections, never from raw log scans):

* :class:`QualityCounts` — the associative fold.  One mutable record of
  per-flow operational counters (stages expected/finished, degraded and
  dead-lettered stages, retries, injected faults, serve requests and
  rejections, read-cache traffic, upload/recall/transfer lag high-water
  marks, bytes and CPU), with :meth:`~QualityCounts.fold` consuming one
  event and :meth:`~QualityCounts.merge` combining two folds — so
  per-window counts, per-flow totals, and multi-log merges are all the
  same operation.
* :class:`RollupProjection` — the reusable projection: per-flow
  :class:`FlowQuality` (totals + fixed-width sim-time windows) plus
  consumption accounting (bytes, events, truncated trailing lines, a
  SHA-256 content digest of the consumed prefix).
* :func:`build_rollup` — the cached build path.  Projections are
  **content-digested**: the cache key is the digest of the log bytes, so
  an unchanged log is served without parsing a single line, and a grown
  log resumes folding from the cached prefix (the event-sourcing
  "rebuildable projection" pattern, SNIPPETS.md snippet 2).  Entries
  live in the existing :class:`~repro.core.cachestore.DiskCacheStore`,
  whose atomic write-then-rename guarantees a concurrent reader never
  observes a partially-built projection — it sees the previous
  projection, the new one, or a miss that rebuilds.

Determinism contract: a projection is a pure function of the consumed
log bytes and ``window_s`` — cold builds, cache hits, and incremental
resumes all yield identical projections, which is what makes the nightly
report byte-reproducible.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.cachestore import DiskCacheStore
from repro.core.errors import OpsError
from repro.core.telemetry import Telemetry, TelemetryEvent

#: Bumped whenever the projection layout or fold semantics change, so a
#: store shared across versions can never serve a stale-schema entry.
PROJECTION_SCHEMA = 1

#: Default rollup window width in simulated seconds (one "hour" of the
#: flows' simulated operations — the nightly report's trend resolution).
DEFAULT_WINDOW_S = 3600.0

#: Channel for events that carry no span and belong to no flow: bus-level
#: emissions from subsystems that were not run under a named span.
UNATTRIBUTED = "(unattributed)"


def flow_of(event: TelemetryEvent) -> str:
    """The flow/channel an event belongs to.

    The engine emits everything inside ``span(flow.name)``, so the root
    of the span path is the flow; serving traffic is attributed by
    running the replay under ``bus.span("<channel>")`` the same way.
    """
    if event.span:
        return event.span[0]
    if event.kind in ("flow.start", "flow.finish"):
        return event.name
    return UNATTRIBUTED


@dataclass
class QualityCounts:
    """One associative fold of operational telemetry.

    Sums accumulate, ``*_lag_s`` fields keep the maximum observed value,
    and the sim-time bounds keep min/max — so two folds merge into the
    fold of the concatenated streams exactly.
    """

    events: int = 0
    stages_expected: int = 0
    stages_finished: int = 0
    degraded: int = 0
    retries: int = 0
    dead_letters: int = 0
    faults: int = 0
    requests: int = 0
    rejected: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    writes: int = 0
    upload_lag_s: float = 0.0
    recalls: int = 0
    recall_lag_s: float = 0.0
    transfers: int = 0
    transfer_lag_s: float = 0.0
    bytes_produced: float = 0.0
    cpu_seconds: float = 0.0
    first_sim_time: Optional[float] = None
    last_sim_time: Optional[float] = None

    def fold(self, event: TelemetryEvent) -> None:
        """Consume one event into this fold."""
        self.events += 1
        if self.first_sim_time is None or event.sim_time < self.first_sim_time:
            self.first_sim_time = event.sim_time
        if self.last_sim_time is None or event.sim_time > self.last_sim_time:
            self.last_sim_time = event.sim_time
        kind = event.kind
        if kind == "flow.start":
            self.stages_expected += int(event.attr("stages", 0))  # type: ignore[arg-type]
        elif kind == "stage.finish":
            self.stages_finished += 1
            if event.attr("degraded", False):
                self.degraded += 1
            self.cpu_seconds += float(event.attr("cpu_seconds", 0.0))  # type: ignore[arg-type]
        elif kind == "stage.retry":
            self.retries += int(event.attr("retries", 0))  # type: ignore[arg-type]
        elif kind == "stage.dead_letter":
            self.dead_letters += 1
        elif kind == "fault.injected":
            self.faults += 1
        elif kind == "bytes.produced":
            self.bytes_produced += float(event.attr("bytes", 0.0))  # type: ignore[arg-type]
        elif kind == "workload.request":
            self.requests += 1
        elif kind == "serve.rejected":
            self.rejected += 1
        elif kind == "readcache.hit":
            self.cache_hits += 1
        elif kind == "readcache.miss":
            self.cache_misses += 1
        elif kind == "storage.write":
            self.writes += 1
            self.upload_lag_s = max(
                self.upload_lag_s, float(event.attr("elapsed_s", 0.0))  # type: ignore[arg-type]
            )
        elif kind == "storage.recall":
            self.recalls += 1
            self.recall_lag_s = max(
                self.recall_lag_s, float(event.attr("elapsed_s", 0.0))  # type: ignore[arg-type]
            )
        elif kind == "transfer.finish":
            self.transfers += 1
            self.transfer_lag_s = max(
                self.transfer_lag_s, float(event.attr("elapsed_s", 0.0))  # type: ignore[arg-type]
            )

    _SUM_FIELDS = (
        "events",
        "stages_expected",
        "stages_finished",
        "degraded",
        "retries",
        "dead_letters",
        "faults",
        "requests",
        "rejected",
        "cache_hits",
        "cache_misses",
        "writes",
        "recalls",
        "transfers",
        "bytes_produced",
        "cpu_seconds",
    )
    _MAX_FIELDS = ("upload_lag_s", "recall_lag_s", "transfer_lag_s")

    def merge(self, other: "QualityCounts") -> None:
        """Combine another fold into this one (sums sum, lags max)."""
        for name in self._SUM_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in self._MAX_FIELDS:
            setattr(self, name, max(getattr(self, name), getattr(other, name)))
        if other.first_sim_time is not None:
            if self.first_sim_time is None:
                self.first_sim_time = other.first_sim_time
            else:
                self.first_sim_time = min(self.first_sim_time, other.first_sim_time)
        if other.last_sim_time is not None:
            if self.last_sim_time is None:
                self.last_sim_time = other.last_sim_time
            else:
                self.last_sim_time = max(self.last_sim_time, other.last_sim_time)

    def metrics(self) -> Dict[str, Optional[float]]:
        """Derived quality metrics; ``None`` marks "no data to judge".

        Rates are gated on their denominator (a flow that served no
        requests has no rejection *rate*), counts on having seen any
        event at all — so an idle channel grades "no data", not green.
        """
        lookups = self.cache_hits + self.cache_misses
        return {
            "completeness": (
                self.stages_finished / self.stages_expected
                if self.stages_expected
                else None
            ),
            "degraded_rate": (
                self.degraded / self.stages_finished if self.stages_finished else None
            ),
            "rejected_rate": (
                self.rejected / self.requests if self.requests else None
            ),
            "cache_hit_rate": (self.cache_hits / lookups if lookups else None),
            "dead_letters": float(self.dead_letters) if self.events else None,
            "retries": float(self.retries) if self.events else None,
            "faults": float(self.faults) if self.events else None,
            "upload_lag_s": self.upload_lag_s if self.writes else None,
            "recall_lag_s": self.recall_lag_s if self.recalls else None,
            "transfer_lag_s": self.transfer_lag_s if self.transfers else None,
        }


@dataclass
class FlowQuality:
    """One flow's fold: lifetime totals plus fixed-width sim-time windows."""

    totals: QualityCounts = field(default_factory=QualityCounts)
    windows: Dict[int, QualityCounts] = field(default_factory=dict)

    def fold(self, event: TelemetryEvent, window_s: float) -> None:
        self.totals.fold(event)
        index = int(event.sim_time // window_s)
        window = self.windows.get(index)
        if window is None:
            window = self.windows[index] = QualityCounts()
        window.fold(event)

    def merge(self, other: "FlowQuality") -> None:
        self.totals.merge(other.totals)
        for index in sorted(other.windows):
            window = self.windows.get(index)
            if window is None:
                window = self.windows[index] = QualityCounts()
            window.merge(other.windows[index])

    def window_metric_series(self, metric: str) -> List[Tuple[int, float]]:
        """``(window index, value)`` for every window where the metric
        has data, in window order — the rate-of-change alert's input."""
        series: List[Tuple[int, float]] = []
        for index in sorted(self.windows):
            value = self.windows[index].metrics().get(metric)
            if value is not None:
                series.append((index, value))
        return series


@dataclass
class RollupProjection:
    """The cached, incrementally-updatable read model over one log."""

    schema: int = PROJECTION_SCHEMA
    window_s: float = DEFAULT_WINDOW_S
    consumed_bytes: int = 0
    consumed_events: int = 0
    truncated_lines: int = 0
    content_digest: str = ""
    consumed_digest: str = ""
    source: str = "cold"
    flows: Dict[str, FlowQuality] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def max_sim_time(self) -> float:
        latest = 0.0
        for name in sorted(self.flows):
            last = self.flows[name].totals.last_sim_time
            if last is not None:
                latest = max(latest, last)
        return latest

    def fold_event(self, event: TelemetryEvent) -> None:
        flow = flow_of(event)
        quality = self.flows.get(flow)
        if quality is None:
            quality = self.flows[flow] = FlowQuality()
        quality.fold(event, self.window_s)
        self.consumed_events += 1

    def metrics_by_flow(self) -> Dict[str, Dict[str, Optional[float]]]:
        return {
            name: self.flows[name].totals.metrics() for name in sorted(self.flows)
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable rendering (sorted keys, windows as strings)."""
        return {
            "schema": self.schema,
            "window_s": self.window_s,
            "consumed_bytes": self.consumed_bytes,
            "consumed_events": self.consumed_events,
            "truncated_lines": self.truncated_lines,
            "content_digest": self.content_digest,
            "max_sim_time": self.max_sim_time,
            "flows": {
                name: {
                    "totals": asdict(self.flows[name].totals),
                    "windows": {
                        str(index): asdict(self.flows[name].windows[index])
                        for index in sorted(self.flows[name].windows)
                    },
                }
                for name in sorted(self.flows)
            },
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
        }


# -- folding raw log bytes -------------------------------------------------
def _fold_data(projection: RollupProjection, data: bytes, start: int) -> None:
    """Fold ``data[start:]`` into the projection, line by line.

    Consumption stops at the last complete, parseable line: a torn
    trailing line (no newline, or newline but invalid JSON at EOF) is
    counted in ``truncated_lines`` and *not* consumed, so a later build
    over the grown log re-reads it from the same boundary.  Invalid JSON
    with more data behind it is corruption and raises.
    """
    offset = start
    projection.truncated_lines = 0
    end = len(data)
    while offset < end:
        newline = data.find(b"\n", offset)
        if newline < 0:
            # Partial trailing line: a writer is (or died) mid-append.
            projection.truncated_lines += 1
            break
        line = data[offset:newline].strip()
        if line:
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if newline == end - 1 and not data[newline + 1 :].strip():
                    projection.truncated_lines += 1
                    break
                raise OpsError(
                    f"corrupt interior log line at byte {offset}: {exc}"
                ) from exc
            projection.fold_event(TelemetryEvent.from_dict(record))
        offset = newline + 1
    projection.consumed_bytes = offset
    projection.consumed_digest = hashlib.sha256(data[:offset]).hexdigest()


def scan_log(
    path: Union[str, Path],
    window_s: float = DEFAULT_WINDOW_S,
) -> RollupProjection:
    """Cold build: fold the whole log with no store in sight.

    This is the raw-JSONL-scan baseline the C22 benchmark measures the
    cached path against.
    """
    data = Path(path).read_bytes()
    projection = RollupProjection(window_s=float(window_s))
    _fold_data(projection, data, 0)
    projection.content_digest = hashlib.sha256(data).hexdigest()
    projection.source = "cold"
    return projection


# -- the cached build path -------------------------------------------------
def _entry_key(window_s: float, content_digest: str) -> str:
    return hashlib.sha256(
        "\x1f".join(
            ("ops.rollup", str(PROJECTION_SCHEMA), repr(float(window_s)), content_digest)
        ).encode("utf-8")
    ).hexdigest()


def _head_key(window_s: float, identity: str) -> str:
    return hashlib.sha256(
        "\x1f".join(
            ("ops.rollup.head", str(PROJECTION_SCHEMA), repr(float(window_s)), identity)
        ).encode("utf-8")
    ).hexdigest()


def _valid_projection(entry: object, window_s: float) -> Optional[RollupProjection]:
    if (
        isinstance(entry, RollupProjection)
        and entry.schema == PROJECTION_SCHEMA
        and entry.window_s == float(window_s)
    ):
        return entry
    return None


def build_rollup(
    path: Union[str, Path],
    window_s: float = DEFAULT_WINDOW_S,
    store: Optional[DiskCacheStore] = None,
    counters: Optional[Mapping[str, float]] = None,
    telemetry: Optional[Telemetry] = None,
) -> RollupProjection:
    """The serving path: a projection over ``path``, via the store.

    Resolution order (each step falls through to the next on a miss):

    1. **content hit** — the store holds a projection keyed by the
       digest of exactly these log bytes: return it, zero lines parsed;
    2. **incremental resume** — a head pointer records the last build
       for this log path; if its consumed prefix is still a byte-exact
       prefix of the current content, fold only the tail;
    3. **cold build** — fold everything.

    The result is written back under its content digest and the head
    pointer is advanced, both via the store's atomic writes, so
    concurrent readers of a growing log each serve *some* complete
    prefix and never a torn projection.  ``counters`` (a
    ``MetricsRegistry.as_dict()`` snapshot) is merged into the returned
    projection only — never into the stored entry, which stays a pure
    function of the log bytes.
    """
    path = Path(path)
    data = path.read_bytes()
    digest = hashlib.sha256(data).hexdigest()
    projection: Optional[RollupProjection] = None
    if store is not None:
        hit = _valid_projection(store.read(_entry_key(window_s, digest)), window_s)
        if hit is not None:
            hit.source = "cache"
            projection = hit
    head_key = _head_key(window_s, str(path.resolve()))
    if projection is None and store is not None:
        head = store.read(head_key)
        if (
            isinstance(head, dict)
            and head.get("schema") == PROJECTION_SCHEMA
            and isinstance(head.get("consumed_bytes"), int)
            and 0 < head["consumed_bytes"] <= len(data)
        ):
            prefix_digest = hashlib.sha256(data[: head["consumed_bytes"]]).hexdigest()
            if prefix_digest == head.get("consumed_digest"):
                base = _valid_projection(
                    store.read(_entry_key(window_s, head.get("content_digest", ""))),
                    window_s,
                )
                if base is not None and base.consumed_bytes == head["consumed_bytes"]:
                    _fold_data(base, data, base.consumed_bytes)
                    base.content_digest = digest
                    base.source = "incremental"
                    projection = base
    if projection is None:
        projection = RollupProjection(window_s=float(window_s))
        _fold_data(projection, data, 0)
        projection.content_digest = digest
        projection.source = "cold"
    if store is not None and projection.source != "cache":
        store.write(_entry_key(window_s, digest), projection)
        store.write(
            head_key,
            {
                "schema": PROJECTION_SCHEMA,
                "content_digest": digest,
                "consumed_bytes": projection.consumed_bytes,
                "consumed_digest": projection.consumed_digest,
            },
        )
    if counters:
        for name in sorted(counters):
            projection.counters[name] = float(counters[name])
    projection.counters["log.truncated_lines"] = float(projection.truncated_lines)
    if telemetry is not None:
        telemetry.emit(
            "ops.rollup",
            path.name,
            events=projection.consumed_events,
            bytes=projection.consumed_bytes,
            truncated_lines=projection.truncated_lines,
            flows=len(projection.flows),
            source=projection.source,
        )
    return projection


def merge_projections(
    projections: Sequence[RollupProjection],
) -> RollupProjection:
    """Fold several projections (e.g. one per pipeline log) into one.

    All inputs must share ``window_s``; consumption accounting sums and
    the digest chains the input digests in order.
    """
    if not projections:
        raise OpsError("cannot merge zero projections")
    widths = {projection.window_s for projection in projections}
    if len(widths) > 1:
        raise OpsError(f"cannot merge projections with window_s {sorted(widths)}")
    merged = RollupProjection(window_s=projections[0].window_s)
    chain = hashlib.sha256()
    for projection in projections:
        merged.consumed_bytes += projection.consumed_bytes
        merged.consumed_events += projection.consumed_events
        merged.truncated_lines += projection.truncated_lines
        chain.update(projection.content_digest.encode("utf-8"))
        for name in sorted(projection.flows):
            quality = merged.flows.get(name)
            if quality is None:
                quality = merged.flows[name] = FlowQuality()
            quality.merge(projection.flows[name])
        for name in sorted(projection.counters):
            merged.counters[name] = (
                merged.counters.get(name, 0.0) + projection.counters[name]
            )
    merged.content_digest = chain.hexdigest()
    merged.consumed_digest = merged.content_digest
    merged.source = "merged"
    return merged


def fold_events(
    events: Iterable[TelemetryEvent],
    window_s: float = DEFAULT_WINDOW_S,
) -> RollupProjection:
    """In-memory fold over already-loaded events (tests, live buses)."""
    projection = RollupProjection(window_s=float(window_s))
    for event in events:
        projection.fold_event(event)
    projection.source = "memory"
    return projection


__all__ = (
    "DEFAULT_WINDOW_S",
    "PROJECTION_SCHEMA",
    "UNATTRIBUTED",
    "FlowQuality",
    "QualityCounts",
    "RollupProjection",
    "build_rollup",
    "flow_of",
    "fold_events",
    "merge_projections",
    "scan_log",
)
