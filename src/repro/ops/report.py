"""Nightly report: a self-contained HTML page over the dashboard.

The operational cadence in all three case studies was the *nightly
digest*: one page a human scans in thirty seconds — overall colour,
per-channel panels, what moved since yesterday, what's alerting.  This
module renders exactly that from a :class:`~repro.ops.dashboard.Dashboard`,
with two hard properties:

* **byte-reproducible** — the page is a pure function of (dashboard,
  previous snapshot, alerts, title).  No wall clock, no random ids, no
  environment leakage: the report is stamped with the telemetry
  horizon (max simulated time) instead of "generated at".  Two runs
  over the same log produce identical bytes, which is what makes the
  report diffable and the C22 check possible.
* **self-contained** — one file, inline CSS, no scripts, no fetches;
  it archives and attaches to CI artifacts as-is.

Trend deltas come from the *previous* report's JSON snapshot
(:func:`~repro.ops.dashboard.dashboard_snapshot`), so "what moved" is
computed against whatever the operator last looked at, not against an
arbitrary window.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.ops.alerts import Alert
from repro.ops.dashboard import (
    STATUS_ORDER,
    ChannelPanel,
    Dashboard,
    MetricCell,
    dashboard_snapshot,
)

_STATUS_COLOR = {
    "green": "#1a7f37",
    "yellow": "#9a6700",
    "red": "#cf222e",
    "no-data": "#57606a",
}

_CSS = """
body { font-family: Georgia, serif; margin: 2rem auto; max-width: 60rem;
       color: #1f2328; }
h1 { font-size: 1.6rem; border-bottom: 2px solid #d0d7de; }
h2 { font-size: 1.2rem; margin-top: 1.6rem; }
table { border-collapse: collapse; width: 100%; margin: 0.6rem 0; }
th, td { border: 1px solid #d0d7de; padding: 0.3rem 0.6rem;
         text-align: left; font-size: 0.95rem; }
th { background: #f6f8fa; }
.badge { display: inline-block; padding: 0.1rem 0.5rem; border-radius: 0.6rem;
         color: #fff; font-size: 0.85rem; }
.delta { color: #57606a; font-size: 0.85rem; }
.meta { color: #57606a; font-size: 0.9rem; }
""".strip()


def _badge(status: str) -> str:
    color = _STATUS_COLOR.get(status, "#57606a")
    return (
        f'<span class="badge" style="background:{color}">'
        f"{html.escape(status)}</span>"
    )


def _format_delta(current: Optional[float], previous: Optional[float]) -> str:
    """The trend annotation for a cell, ``""`` when there is no story."""
    if current is None or previous is None:
        return ""
    delta = current - previous
    if delta == 0:
        return "(=)"
    return f"({delta:+.4g})"


def _previous_cells(
    previous: Optional[Mapping[str, object]], channel: str
) -> Dict[str, Mapping[str, object]]:
    if not previous:
        return {}
    panels = previous.get("panels")
    if not isinstance(panels, Mapping):
        return {}
    panel = panels.get(channel)
    if not isinstance(panel, Mapping):
        return {}
    cells = panel.get("cells")
    if not isinstance(cells, Mapping):
        return {}
    return {
        name: cell for name, cell in cells.items() if isinstance(cell, Mapping)
    }


def _cell_row(
    cell: MetricCell, previous_cell: Optional[Mapping[str, object]]
) -> str:
    previous_value = None
    if previous_cell is not None:
        raw = previous_cell.get("value")
        if isinstance(raw, (int, float)):
            previous_value = float(raw)
    delta = _format_delta(cell.value, previous_value)
    delta_html = f' <span class="delta">{html.escape(delta)}</span>' if delta else ""
    return (
        "<tr>"
        f"<td>{html.escape(cell.label)}</td>"
        f"<td>{html.escape(cell.display)}{delta_html}</td>"
        f"<td>{_badge(cell.status)}</td>"
        "</tr>"
    )


def _panel_section(
    panel: ChannelPanel, previous: Optional[Mapping[str, object]]
) -> List[str]:
    previous_cells = _previous_cells(previous, panel.channel)
    lines = [
        f"<h2>{html.escape(panel.channel)} {_badge(panel.status)}</h2>",
        '<p class="meta">'
        + html.escape(
            f"flows: {', '.join(panel.flows) if panel.flows else '(none)'}"
            f" · events: {panel.events}"
            + (
                f" · last activity at t={panel.last_sim_time:.0f} s"
                if panel.last_sim_time is not None
                else ""
            )
        )
        + "</p>",
        "<table><tr><th>metric</th><th>value</th><th>status</th></tr>",
    ]
    for cell in panel.cells:
        lines.append(_cell_row(cell, previous_cells.get(cell.metric)))
    lines.append("</table>")
    return lines


def _alerts_section(alerts: Sequence[Alert]) -> List[str]:
    lines = ["<h2>Active alerts</h2>"]
    if not alerts:
        lines.append('<p class="meta">none</p>')
        return lines
    lines.append(
        "<table><tr><th>rule</th><th>channel</th><th>detail</th>"
        "<th>raised at</th><th>flaps</th></tr>"
    )
    for alert in alerts:
        lines.append(
            "<tr>"
            f"<td>{html.escape(alert.rule)}</td>"
            f"<td>{html.escape(alert.channel)}</td>"
            f"<td>{html.escape(alert.detail)}</td>"
            f"<td>t={alert.raised_at:.0f} s</td>"
            f"<td>{alert.flap}</td>"
            "</tr>"
        )
    lines.append("</table>")
    return lines


def render_report(
    dashboard: Dashboard,
    *,
    title: str = "Operations report",
    previous: Optional[Mapping[str, object]] = None,
    alerts: Sequence[Alert] = (),
) -> str:
    """Render the dashboard to one self-contained HTML page.

    ``previous`` is a prior :func:`dashboard_snapshot` dict; when given,
    every cell that also existed last time carries a ``(+0.02)``-style
    trend delta.  ``alerts`` is the evaluator's currently-active list.
    """
    counts = dashboard.status_counts()
    count_text = " · ".join(
        f"{counts[name]} {name}" for name in STATUS_ORDER if counts[name]
    )
    lines = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{html.escape(title)} {_badge(dashboard.status)}</h1>",
        '<p class="meta">'
        + html.escape(
            f"telemetry horizon: t={dashboard.max_sim_time:.0f} s"
            f" · channels: {count_text or 'none'}"
            + (
                f" · truncated trailing lines skipped: {dashboard.truncated_lines}"
                if dashboard.truncated_lines
                else ""
            )
            + (
                f" · unmatched flows: {', '.join(dashboard.unmatched_flows)}"
                if dashboard.unmatched_flows
                else ""
            )
        )
        + "</p>",
    ]
    for panel in dashboard.panels:
        lines.extend(_panel_section(panel, previous))
    lines.extend(_alerts_section(alerts))
    lines.append("</body></html>")
    return "\n".join(lines) + "\n"


def write_report(
    dashboard: Dashboard,
    out: Union[str, Path],
    *,
    title: str = "Operations report",
    previous: Optional[Mapping[str, object]] = None,
    alerts: Sequence[Alert] = (),
    snapshot: Optional[Union[str, Path]] = None,
) -> Path:
    """Write the HTML report (and optionally its JSON snapshot) to disk.

    The snapshot is what a later run passes back as ``previous`` to get
    trend deltas — the report's own memory between nights.
    """
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        render_report(dashboard, title=title, previous=previous, alerts=alerts),
        encoding="utf-8",
    )
    if snapshot is not None:
        snapshot = Path(snapshot)
        snapshot.parent.mkdir(parents=True, exist_ok=True)
        snapshot.write_text(
            json.dumps(dashboard_snapshot(dashboard), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
    return out


def load_snapshot(path: Union[str, Path]) -> Dict[str, object]:
    """Load a previous report's JSON snapshot for trend deltas."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


__all__ = (
    "load_snapshot",
    "render_report",
    "write_report",
)
