"""Operations-console CLI: ``python -m repro.ops <command> LOG [LOG ...]``.

Three subcommands over persisted telemetry logs:

* ``report`` — build the rollup, grade the dashboard, evaluate alerts,
  and write the nightly HTML report (optionally a JSON snapshot for the
  next night's trend deltas);
* ``status`` — one line per channel on stdout; exit 1 when any channel
  is red, so a cron wrapper can page without parsing anything;
* ``alerts`` — evaluate the stock (or threshold-only) rules and print
  raised alerts; exit 1 while any alert is active.

Several LOG paths build one merged projection — the "whole-site" view
over per-pipeline logs.  Pass ``--cache-root`` to serve repeat reads
from cached projections instead of re-scanning JSONL.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.cachestore import DiskCacheStore
from repro.core.errors import ReproError
from repro.ops import default_quality_specs
from repro.ops.alerts import AlertEvaluator, default_alert_rules
from repro.ops.dashboard import build_dashboard
from repro.ops.report import load_snapshot, write_report
from repro.ops.rollup import (
    DEFAULT_WINDOW_S,
    RollupProjection,
    build_rollup,
    merge_projections,
)


def _emit(text: str) -> None:
    sys.stdout.write(text + "\n")


def _load_projection(
    logs: Sequence[str], window_s: float, cache_root: Optional[str]
) -> RollupProjection:
    store = DiskCacheStore(Path(cache_root)) if cache_root else None
    projections = [
        build_rollup(path, window_s=window_s, store=store) for path in logs
    ]
    if len(projections) == 1:
        return projections[0]
    return merge_projections(projections)


def _cmd_report(args: argparse.Namespace) -> int:
    projection = _load_projection(args.logs, args.window, args.cache_root)
    specs = default_quality_specs()
    dashboard = build_dashboard(projection, specs)
    evaluator = AlertEvaluator(default_alert_rules(), specs)
    evaluator.evaluate(projection)
    previous = load_snapshot(args.previous) if args.previous else None
    out = write_report(
        dashboard,
        args.out,
        title=args.title,
        previous=previous,
        alerts=evaluator.active(),
        snapshot=args.snapshot,
    )
    _emit(f"report: {out}")
    if args.snapshot:
        _emit(f"snapshot: {args.snapshot}")
    _emit(f"status: {dashboard.status}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    projection = _load_projection(args.logs, args.window, args.cache_root)
    dashboard = build_dashboard(projection, default_quality_specs())
    for panel in dashboard.panels:
        _emit(f"{panel.channel}: {panel.status} ({panel.events} events)")
    _emit(f"overall: {dashboard.status}")
    return 1 if dashboard.status == "red" else 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    projection = _load_projection(args.logs, args.window, args.cache_root)
    evaluator = AlertEvaluator(default_alert_rules(), default_quality_specs())
    evaluator.evaluate(projection)
    active = evaluator.active()
    for alert in active:
        _emit(f"{alert.rule} [{alert.channel}]: {alert.detail}")
    if not active:
        _emit("no active alerts")
    return 1 if active else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ops",
        description="Operations console over persisted telemetry logs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("logs", nargs="+", metavar="LOG",
                         help="telemetry JSONL log path(s)")
        sub.add_argument("--window", type=float, default=DEFAULT_WINDOW_S,
                         help="rollup window width in simulated seconds")
        sub.add_argument("--cache-root", default=None,
                         help="DiskCacheStore root for cached projections")

    report = subparsers.add_parser(
        "report", help="write the nightly HTML report")
    common(report)
    report.add_argument("--out", default="ops_report.html",
                        help="HTML output path")
    report.add_argument("--snapshot", default=None,
                        help="also write a JSON snapshot for trend deltas")
    report.add_argument("--previous", default=None,
                        help="previous snapshot JSON to diff against")
    report.add_argument("--title", default="Operations report")
    report.set_defaults(func=_cmd_report)

    status = subparsers.add_parser(
        "status", help="one line per channel; exit 1 when red")
    common(status)
    status.set_defaults(func=_cmd_status)

    alerts = subparsers.add_parser(
        "alerts", help="evaluate alert rules; exit 1 while any is active")
    common(alerts)
    alerts.set_defaults(func=_cmd_alerts)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2
    except ReproError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
