"""Trace-driven traffic against the WebLab serving layer (ROADMAP item 5).

Builds a small WebLab, generates a seeded multi-tenant trace — Zipfian
key popularity, a mid-trace burst storm — saves and reloads it
(byte-identical), then replays it three ways against the retro-browser
facade: uncached, cold cache, and warm cache.  Finishes with the same
storm pushed through an admission-control valve, showing exact
backpressure accounting (served + rejected == offered, no silent drops).

Run:  python examples/weblab_traffic.py
"""

import tempfile
from pathlib import Path

from repro.core import ReadCache
from repro.core.telemetry import Telemetry
from repro.core.workload import (
    AdmissionController,
    BurstStorm,
    OpSpec,
    TenantSpec,
    Trace,
    TraceReplayer,
    WorkloadSpec,
    generate_trace,
)
from repro.weblab import SyntheticWebConfig, WebLabServices, build_weblab


def traffic_spec(urls, duration_s=20.0):
    """Two tenants, browse-heavy, with a flash crowd mid-trace."""
    return WorkloadSpec(
        name="weblab-traffic",
        seed=5,
        duration_s=duration_s,
        tenants=(
            TenantSpec(
                name="researchers",
                rate_per_s=12.0,
                ops=(
                    OpSpec(op="browse", weight=4.0, keys=tuple(urls), zipf_s=1.3),
                    OpSpec(op="history", weight=1.0, keys=tuple(urls[:20]), zipf_s=1.0),
                ),
                storms=(
                    BurstStorm(
                        start_s=duration_s * 0.5,
                        end_s=duration_s * 0.75,
                        multiplier=5.0,
                    ),
                ),
            ),
            TenantSpec(
                name="crawler-qa",
                rate_per_s=3.0,
                ops=(
                    OpSpec(op="browse", weight=1.0, keys=tuple(urls[:10]), zipf_s=0.0),
                ),
            ),
        ),
    )


def print_rows(title, rows):
    print(f"\n{title}")
    headers = list(rows[0])
    widths = [
        max(len(str(header)), *(len(str(row[header])) for row in rows))
        for header in headers
    ]
    print("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  " + "-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        print("  " + "  ".join(str(row[h]).ljust(w) for h, w in zip(headers, widths)))


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        print("Building a small WebLab (3 crawls) ...")
        weblab, build, _ = build_weblab(
            Path(workdir) / "weblab", SyntheticWebConfig(seed=5), n_crawls=3
        )
        urls = [
            row["url"]
            for row in weblab.database.db.query(
                "SELECT DISTINCT url FROM pages ORDER BY url"
            )
        ]
        as_of = float(
            weblab.database.db.query_value("SELECT max(fetched_at) FROM pages")
        ) + 1.0
        print(f"  {build.pages_loaded} pages over {len(urls)} urls preloaded")

        # -- generate, save, reload: the trace is the experiment's identity.
        trace = generate_trace(traffic_spec(urls))
        trace_path = Path(workdir) / "traffic.jsonl"
        trace.save(trace_path)
        replayed = Trace.load(trace_path)
        assert replayed.digest() == trace.digest()
        print(
            f"\nTrace: {len(trace)} requests over {trace.duration_s:.0f} simulated "
            f"seconds (digest {trace.digest()[:12]}, survives save/load)"
        )

        def handlers(services):
            return {
                "browse": lambda req: services.browse(req.key, as_of),
                "history": lambda req: services.capture_history(req.key),
            }

        # -- uncached vs cold-cache vs warm-cache replays of the same trace.
        plain = WebLabServices(weblab, telemetry=Telemetry())
        uncached = TraceReplayer(handlers(plain), telemetry=Telemetry()).replay(
            replayed
        )
        cached = WebLabServices(
            weblab, telemetry=Telemetry(), cache=ReadCache(capacity=2048)
        )
        cold = TraceReplayer(handlers(cached), telemetry=Telemetry()).replay(replayed)
        warm = TraceReplayer(handlers(cached), telemetry=Telemetry()).replay(replayed)

        rows = []
        for label, report in (
            ("uncached", uncached),
            ("cold cache", cold),
            ("warm cache", warm),
        ):
            for op in replayed.ops():
                rows.append({"cache": label, **report.latency_summary(op).row()})
        print_rows("Latency percentiles per path (same trace, three facades):", rows)
        stats = cached.cache.stats
        print(
            f"\n  read cache: {stats.hits} hits / {stats.misses} misses "
            f"(hit rate {stats.hit_rate:.3f}), "
            f"{stats.admission_rejected} admissions rejected by the frequency filter"
        )

        # -- the same storm through an admission-control valve.
        valve = AdmissionController(rate_per_s=10.0, burst=15.0)
        shed = TraceReplayer(
            handlers(cached), telemetry=Telemetry(), admission=valve
        ).replay(replayed)
        print_rows(
            "Admission control under the burst storm:",
            [
                {
                    "offered": len(replayed),
                    "served": shed.served,
                    "rejected": shed.rejected,
                    "rejected %": f"{100.0 * shed.rejected / len(replayed):.1f}",
                }
            ],
        )
        assert shed.served + shed.rejected + shed.failed == len(replayed)
        print(
            "\n  accounting closes exactly: served + rejected == offered "
            "(every shed request is a serve.rejected event, never a silent drop)"
        )
        weblab.close()


if __name__ == "__main__":
    main()
