"""Transport planning: when does the truck beat the wire?  (Sections 2.2, 5)

Evaluates the paper's three transport situations through one planner —
Arecibo's weekly 14 TB against its thin island uplink, CLEO's offsite
Monte Carlo on USB disks, and WebLab's 250 GB/day over dedicated
Internet2 — and sweeps the volume/bandwidth space to find the crossover
where networks start to win.

Run:  python examples/transport_planning.py
"""

from repro.core.units import DataSize, Duration
from repro.storage.media import USB_DISK_2005
from repro.transport import (
    ARECIBO_TO_CTC,
    ARECIBO_UPLINK,
    INTERNET2_100,
    INTERNET2_500,
    TERAGRID,
    ShipmentSpec,
    ShippingLane,
    TransportPlanner,
    crossover_bandwidth,
)


def main() -> None:
    planner = TransportPlanner(
        links=[ARECIBO_UPLINK, INTERNET2_100, INTERNET2_500, TERAGRID],
        lanes=[ARECIBO_TO_CTC],
    )

    print("One week of Arecibo raw data (14 TB) — every option, fastest first:")
    for option in planner.evaluate(DataSize.terabytes(14)):
        print(f"  {option.summary()}")
    print()

    print("Crossover bandwidth (network beats shipping disks above this):")
    for volume_tb in (1, 5, 14, 50, 100):
        crossover = crossover_bandwidth(
            DataSize.terabytes(volume_tb), ARECIBO_TO_CTC
        )
        print(f"  {volume_tb:5.0f} TB -> {crossover.mbps:7.0f} Mb/s nominal")
    print("  (the Arecibo uplink is ~10 Mb/s: the truck wins for years to come)")
    print()

    print("Executing one 14 TB shipment with integrity verification:")
    lane = ShippingLane(ARECIBO_TO_CTC)
    result = lane.ship(DataSize.terabytes(14))
    print(f"  {result.media_used} ATA disks, {result.attempts} attempt(s)")
    print(f"  elapsed {result.elapsed}, personnel {result.personnel_time}, "
          f"cost ${result.cost:,.0f}")
    print(f"  manifest verified clean: {result.report.clean}")
    print()

    print("CLEO's offsite Monte Carlo (USB disks, per the paper):")
    usb_lane = ShipmentSpec(
        name="offsite -> Cornell (USB)",
        media_type=USB_DISK_2005,
        transit_time=Duration.days(4),
        copy_stations=2,
    )
    monthly_mc = DataSize.terabytes(1.5)
    print(f"  {monthly_mc} per month by disk: "
          f"{usb_lane.effective_throughput(monthly_mc).gb_per_day:.0f} GB/day "
          f"effective")
    print()

    print("WebLab's intake target (250 GB/day):")
    for link in (INTERNET2_100, INTERNET2_500):
        daily = link.daily_volume()
        print(f"  {link.name:32s}: {daily.gb:6.0f} GB/day "
              f"({daily.gb / 250:.1f}x the target)")


if __name__ == "__main__":
    main()
