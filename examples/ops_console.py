"""The operations console over live pipeline telemetry (ROADMAP item 3).

Runs a small Arecibo pipeline, attributes synthetic serving traffic to
the ``weblab-serving`` channel, then works the whole console surface:

1. build a cached rollup projection over the persisted JSONL log
   (cold, then a content hit, then an incremental resume after the log
   grows);
2. grade the quality dashboard against the stock per-pipeline
   green/yellow/red specs;
3. evaluate the stock alert rules twice — a degraded night raises, a
   healthy re-read deduplicates — with exact accounting;
4. render the nightly HTML report twice and show it is byte-identical.

Run:  python examples/ops_console.py
"""

import json
import tempfile
from pathlib import Path

from repro.arecibo.pipeline import AreciboPipelineConfig, run_arecibo_pipeline
from repro.arecibo.sky import SkyModel
from repro.arecibo.telescope import ObservationConfig
from repro.core.cachestore import DiskCacheStore
from repro.core.telemetry import Telemetry
from repro.ops import (
    AlertEvaluator,
    build_dashboard,
    build_rollup,
    default_alert_rules,
    default_quality_specs,
    render_report,
)


def run_pipeline(workdir):
    config = AreciboPipelineConfig(
        n_pointings=2,
        observation=ObservationConfig(n_channels=64, n_samples=4096),
        sky=SkyModel(seed=9, pulsar_fraction=0.5, binary_fraction=0.0,
                     transient_rate=0.5, period_range_s=(0.03, 0.12),
                     snr_range=(15.0, 30.0)),
        seed=9,
    )
    run_arecibo_pipeline(workdir, config)
    return workdir / "telemetry.jsonl"


def append_serving_traffic(log, n_requests=300):
    """A slice of serving-tier traffic, attributed to its channel."""
    bus = Telemetry()
    with bus.span("weblab-serving"):
        for index in range(n_requests):
            bus.clock.advance(1.0)
            bus.emit("workload.request", f"r{index}", tenant="alpha")
            kind = "readcache.hit" if index % 4 else "readcache.miss"
            bus.emit(kind, f"r{index}")
    with open(log, "a", encoding="utf-8") as handle:
        for event in bus.events():
            handle.write(json.dumps(event.canonical(), sort_keys=True) + "\n")


def main():
    with tempfile.TemporaryDirectory() as raw:
        workdir = Path(raw)
        log = run_pipeline(workdir / "run")
        store = DiskCacheStore(workdir / "cache")
        specs = default_quality_specs()

        print("== rollup projections ==")
        cold = build_rollup(log, store=store)
        print(f"cold build:   {cold.consumed_events} events, "
              f"{len(cold.flows)} flows ({cold.source})")
        hit = build_rollup(log, store=store)
        print(f"repeat read:  {hit.consumed_events} events ({hit.source})")
        append_serving_traffic(log)
        grown = build_rollup(log, store=store)
        print(f"after growth: {grown.consumed_events} events ({grown.source})")

        print("\n== quality dashboard ==")
        dashboard = build_dashboard(grown, specs)
        for panel in dashboard.panels:
            cells = ", ".join(
                f"{cell.metric}={cell.display} [{cell.status}]"
                for cell in panel.cells
            )
            print(f"{panel.channel:8s} {panel.status:8s} {cells}")
        print(f"overall: {dashboard.status}")

        print("\n== alerts ==")
        evaluator = AlertEvaluator(default_alert_rules(), specs)
        for transition in evaluator.evaluate(grown):
            alert = transition.alert
            print(f"{transition.action}: {alert.rule} [{alert.channel}] "
                  f"- {alert.detail}")
        evaluator.evaluate(grown)  # same state: dedup, no new events
        print(f"active={len(evaluator.active())} "
              f"raised={evaluator.metrics.value('ops.alerts.raised'):.0f} "
              f"deduped={evaluator.metrics.value('ops.alerts.deduped'):.0f}")

        print("\n== nightly report ==")
        first = render_report(dashboard, alerts=evaluator.active())
        second = render_report(dashboard, alerts=evaluator.active())
        out = workdir / "ops_report.html"
        out.write_text(first, encoding="utf-8")
        print(f"wrote {len(first)} bytes; "
              f"re-render byte-identical: {first == second}")


if __name__ == "__main__":
    main()
