"""The Arecibo ALFA pulsar survey, end to end (paper Figure 1).

Generates a synthetic sky with known pulsars and terrestrial interference,
observes it with the 7-beam receiver simulator, ships the raw disks to the
"CTC", archives to tape, runs the search pipeline (RFI excision,
dedispersion, Fourier search with harmonic summing, sifting, multibeam
coincidence), loads candidates into the SQL database, and performs the
cross-pointing meta-analysis — then scores the discoveries against the
injected ground truth.

Run:  python examples/arecibo_survey.py
"""

import tempfile
from pathlib import Path

from repro.arecibo import (
    AreciboPipelineConfig,
    ObservationConfig,
    SkyModel,
    run_arecibo_pipeline,
)


def main() -> None:
    config = AreciboPipelineConfig(
        n_pointings=4,
        observation=ObservationConfig(n_channels=48, n_samples=4096),
        sky=SkyModel(
            seed=41,
            pulsar_fraction=0.6,
            binary_fraction=0.0,
            period_range_s=(0.03, 0.12),
            snr_range=(15.0, 30.0),
        ),
    )

    print("Observing, shipping, archiving, searching ... (about 10 s)\n")
    with tempfile.TemporaryDirectory() as workdir:
        report = run_arecibo_pipeline(Path(workdir), config)

    print("Figure-1 data flow:")
    for row in report.flow_report.summary_rows():
        print(f"  {row['stage']:14s} [{row['site']:12s}] "
              f"in={row['in']:>10s}  out={row['out']:>10s}")
    print()

    print("Volume accounting (the paper's storage argument):")
    print(f"  raw dynamic spectra : {report.raw_size}")
    print(f"  DM-trial block      : {report.dedispersed_size} "
          f"({report.dedispersed_size.bytes / report.raw_size.bytes:.1f}x raw)")
    print(f"  candidate products  : {report.products_fraction * 100:.3f} % of raw")
    print(f"  tape cartridges used: {report.tape_cartridges}")
    print()

    print("Transport (physical ATA disks, per the paper):")
    shipment = report.shipment
    print(f"  {shipment.media_used} disks, {shipment.attempts} attempt(s), "
          f"door-to-verified in {shipment.elapsed}")
    print(f"  delivery clean: {shipment.report.clean}")
    print()

    print("Candidate flow:")
    print(f"  raw detections      : {report.candidate_count_presift}")
    print(f"  after sifting       : {report.candidate_count_sifted}")
    print(f"  multibeam rejected  : {report.multibeam_rejected}")
    print(f"  meta-analysis cull  : {report.meta_report.terrestrial} terrestrial "
          f"of {report.meta_report.total}")
    print()

    print("Discoveries vs ground truth:")
    injected = [p for pointing in report.pointings for p in pointing.all_pulsars()]
    for pulsar in injected:
        status = "MISSED" if pulsar.name in report.score.missed else "recovered"
        print(f"  {pulsar.name}: P={pulsar.period_s * 1000:.1f} ms, "
              f"DM={pulsar.dm:.1f}, S/N={pulsar.snr:.0f}  -> {status}")
    print(f"  recall: {report.score.recall * 100:.0f} %, "
          f"false candidates surviving: {report.score.false_candidates}")
    print()

    print("Confirmed candidate list (the survey's output product):")
    for row in report.confirmed[:8]:
        print(f"  f={row['freq_hz']:8.2f} Hz  DM={row['dm']:5.1f}  "
              f"S/N={row['snr']:5.1f}  fold S/N={row['fold_snr']:5.1f}  "
              f"pointing {row['pointing_id']} beam {row['beam']}")


if __name__ == "__main__":
    main()
