"""The Arecibo survey as a stream: pointings arrive night by night.

The batch example (arecibo_survey.py) processes the whole survey in one
go.  In production the telescope observes continuously — so this example
runs the same Figure-1 pipeline *incrementally*: each window a few new
pointings arrive and the flow re-runs against a shared stage cache,
recomputing only the never-seen pointings' shards.  One window receives
nothing at all (a cloudy night) and replays entirely from cache.

The final window's report is byte-identical to a cold batch run over the
full survey; the windows only change when the compute happened.

Run:  python examples/arecibo_streaming.py
"""

import tempfile
from pathlib import Path

from repro.arecibo import (
    AreciboPipelineConfig,
    ObservationConfig,
    SkyModel,
    run_arecibo_incremental,
)

ARRIVALS = [2, 1, 0, 1]  # pointings landing per nightly window


def main() -> None:
    config = AreciboPipelineConfig(
        n_pointings=sum(ARRIVALS),
        observation=ObservationConfig(n_channels=48, n_samples=4096),
        sky=SkyModel(
            seed=41,
            pulsar_fraction=0.6,
            binary_fraction=0.0,
            period_range_s=(0.03, 0.12),
            snr_range=(15.0, 30.0),
        ),
    )

    print("Observing night by night ... (about 10 s)\n")
    with tempfile.TemporaryDirectory() as workdir:
        result = run_arecibo_incremental(
            Path(workdir), config, arrivals=ARRIVALS
        )

    print("Nightly windows (shard misses = pointings actually computed):")
    for window in result.windows:
        report = window.report
        note = "cloudy night, replayed from cache" if window.new_pointings == 0 \
            else f"{window.new_pointings} new pointing(s) observed"
        print(f"  window {window.index}: {note}")
        print(f"    pointings seen      : {window.pointings_seen}")
        print(f"    stage cache         : {window.stage_hits} hits / "
              f"{window.stage_misses} misses")
        print(f"    shard cache         : {window.shard_hits} hits / "
              f"{window.shard_misses} misses")
        print(f"    candidates sifted   : {report.candidate_count_sifted}")
        print(f"    confirmed           : {len(report.confirmed)}")

    print()
    print("Window ledger (window.open / window.close accounting):")
    closes = [e for e in result.telemetry.events() if e.kind == "window.close"]
    for event in closes:
        attrs = dict(event.attrs)
        print(f"  window {attrs['window']}: arrivals={attrs['arrivals']} "
              f"cpu={attrs['cpu_seconds']:.0f} s  bytes={attrs['bytes']:.3e}")

    final = result.final
    print()
    print("Final survey result (identical to one batch run):")
    print(f"  recall: {final.score.recall * 100:.0f} %, "
          f"false candidates surviving: {final.score.false_candidates}")
    for row in final.confirmed[:8]:
        print(f"  f={row['freq_hz']:8.2f} Hz  DM={row['dm']:5.1f}  "
              f"S/N={row['snr']:5.1f}  pointing {row['pointing_id']} "
              f"beam {row['beam']}")


if __name__ == "__main__":
    main()
